//! Crash-recovery integration: after an abrupt host crash (engine state
//! lost; device state — including its power-protected buffer — survives),
//! the engine must recover the last checkpoint plus the journal tail.

use checkin_core::{EngineError, KvEngine, Layout, Strategy};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
use checkin_ftl::{Ftl, FtlConfig};
use checkin_sim::SimTime;
use checkin_ssd::{Ssd, SsdTiming};

const RECORDS: u64 = 48;

fn build(strategy: Strategy) -> (Ssd, KvEngine, Layout) {
    let unit = strategy.default_unit_bytes();
    let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: unit,
            write_points: 2,
            gc_threshold_blocks: 4,
            gc_soft_threshold_blocks: 8,
            ..FtlConfig::default()
        },
    )
    .unwrap();
    let ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(RECORDS, 4096 + 16, unit, 1 << 11);
    let engine = KvEngine::new(strategy, layout, 0.7);
    (ssd, engine, layout)
}

fn load_and_update(
    ssd: &mut Ssd,
    engine: &mut KvEngine,
    updates_per_key: u64,
    checkpoint_every: u64,
) -> SimTime {
    let records: Vec<(u64, u32)> = (0..RECORDS)
        .map(|k| (k, 300 + (k as u32 % 8) * 250))
        .collect();
    let mut t = engine.load(ssd, &records, SimTime::ZERO).unwrap();
    for round in 1..=updates_per_key {
        for k in 0..RECORDS {
            let bytes = 150 + ((k + round) as u32 % 10) * 300;
            t = engine.update(ssd, k, bytes, t).unwrap();
        }
        if round % checkpoint_every == 0 {
            t = engine.checkpoint(ssd, t).unwrap().finish;
        }
    }
    t
}

fn recover_for(strategy: Strategy, mut pre_crash: impl FnMut(&mut Ssd, &mut KvEngine) -> SimTime) {
    let (mut ssd, mut engine, layout) = build(strategy);
    let t = pre_crash(&mut ssd, &mut engine);
    let expected: Vec<u64> = (0..RECORDS)
        .map(|k| engine.version_of(k).unwrap())
        .collect();

    // Crash: host memory (engine, JMT) vanishes; the device persists.
    drop(engine);

    let (mut recovered, t) =
        KvEngine::recover(strategy, layout, 0.7, &mut ssd, RECORDS, t).unwrap();
    let mut t = t;
    for k in 0..RECORDS {
        assert_eq!(
            recovered.version_of(k),
            Some(expected[k as usize]),
            "{strategy}: key {k} lost its committed version"
        );
        let r = recovered.get(&mut ssd, k, t).unwrap();
        assert_eq!(
            r.version, expected[k as usize],
            "{strategy}: readback of key {k}"
        );
        t = r.finish;
    }
    ssd.ftl().check_invariants().unwrap();
}

#[test]
fn recovery_with_clean_checkpoint_only() {
    for strategy in Strategy::all() {
        recover_for(strategy, |ssd, engine| {
            let t = load_and_update(ssd, engine, 4, 2);
            engine.checkpoint(ssd, t).unwrap().finish
        });
    }
}

#[test]
fn recovery_with_journal_tail_after_last_checkpoint() {
    for strategy in Strategy::all() {
        recover_for(strategy, |ssd, engine| {
            // 5 rounds, checkpoint every 2: round 5's logs stay in the
            // journal and must be replayed.
            load_and_update(ssd, engine, 5, 2)
        });
    }
}

#[test]
fn recovery_without_any_checkpoint() {
    for strategy in [Strategy::Baseline, Strategy::CheckIn] {
        recover_for(strategy, |ssd, engine| load_and_update(ssd, engine, 1, 10));
    }
}

#[test]
fn recovered_engine_accepts_new_work() {
    let (mut ssd, mut engine, layout) = build(Strategy::CheckIn);
    let t = load_and_update(&mut ssd, &mut engine, 3, 2);
    drop(engine);
    let (mut recovered, t) =
        KvEngine::recover(Strategy::CheckIn, layout, 0.7, &mut ssd, RECORDS, t).unwrap();
    // New updates and a checkpoint on the recovered engine.
    let mut t = t;
    for k in 0..RECORDS {
        t = recovered.update(&mut ssd, k, 400, t).unwrap();
    }
    let out = recovered.checkpoint(&mut ssd, t).unwrap();
    let r = recovered.get(&mut ssd, 0, out.finish).unwrap();
    assert!(
        !r.from_journal,
        "post-checkpoint reads come from the data area"
    );
    ssd.ftl().check_invariants().unwrap();
}

#[test]
fn double_crash_recovers_twice() {
    let (mut ssd, mut engine, layout) = build(Strategy::CheckIn);
    let mut t = load_and_update(&mut ssd, &mut engine, 3, 2);
    let expected: Vec<u64> = (0..RECORDS)
        .map(|k| engine.version_of(k).unwrap())
        .collect();
    drop(engine);
    for _ in 0..2 {
        let (recovered, done) =
            KvEngine::recover(Strategy::CheckIn, layout, 0.7, &mut ssd, RECORDS, t).unwrap();
        t = done;
        for k in 0..RECORDS {
            assert_eq!(recovered.version_of(k), Some(expected[k as usize]));
        }
    }
}

#[test]
fn unknown_key_still_errors_after_recovery() {
    let (mut ssd, mut engine, layout) = build(Strategy::CheckIn);
    let t = load_and_update(&mut ssd, &mut engine, 1, 10);
    drop(engine);
    let (mut recovered, t) =
        KvEngine::recover(Strategy::CheckIn, layout, 0.7, &mut ssd, RECORDS, t).unwrap();
    assert_eq!(
        recovered.get(&mut ssd, RECORDS + 5, t),
        Err(EngineError::UnknownKey(RECORDS + 5))
    );
}
