//! Data-consistency integration against a shadow model: drive the engine
//! with an adversarial hand-built schedule, mirror every mutation in a
//! plain `HashMap`, and verify the storage stack agrees at every step —
//! including across checkpoints, zone wraps, trims and GC.

use std::collections::HashMap;

use checkin_core::{EngineError, KvEngine, Layout, Strategy};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
use checkin_ftl::{Ftl, FtlConfig};
use checkin_sim::{SimRng, SimTime};
use checkin_ssd::{Ssd, SsdTiming};

const RECORDS: u64 = 80;

fn build(strategy: Strategy) -> (Ssd, KvEngine) {
    let unit = strategy.default_unit_bytes();
    let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: unit,
            write_points: 2,
            gc_threshold_blocks: 4,
            gc_soft_threshold_blocks: 8,
            ..FtlConfig::default()
        },
    )
    .unwrap();
    let ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(RECORDS, 4096 + 16, unit, 1 << 10);
    (ssd, KvEngine::new(strategy, layout, 0.7))
}

/// Random op soup, mirrored into a shadow model, verified continuously.
fn churn(strategy: Strategy, seed: u64, ops: usize) {
    let (mut ssd, mut engine) = build(strategy);
    let mut rng = SimRng::seed_from(seed);
    let mut shadow: HashMap<u64, u64> = HashMap::new();

    let records: Vec<(u64, u32)> = (0..RECORDS)
        .map(|k| (k, 128 + (rng.gen_range(8) * 500) as u32))
        .collect();
    let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
    for &(k, _) in &records {
        shadow.insert(k, 1);
    }

    for i in 0..ops {
        let key = rng.gen_range(RECORDS);
        match rng.gen_range(10) {
            // 40%: update with a random size across all classes.
            0..=3 => {
                let bytes = 1 + rng.gen_range(4096) as u32;
                match engine.update(&mut ssd, key, bytes, t) {
                    Ok(done) => {
                        t = done;
                        *shadow.get_mut(&key).unwrap() += 1;
                    }
                    Err(EngineError::JournalFull) => {
                        t = engine.checkpoint(&mut ssd, t).unwrap().finish;
                        t = engine.update(&mut ssd, key, bytes, t).unwrap();
                        *shadow.get_mut(&key).unwrap() += 1;
                    }
                    Err(e) => panic!("update failed: {e}"),
                }
            }
            // 40%: read and compare against the shadow.
            4..=7 => {
                let r = engine.get(&mut ssd, key, t).unwrap();
                t = r.finish;
                assert_eq!(r.version, shadow[&key], "op {i}: key {key} ({strategy})");
            }
            // 10%: checkpoint now.
            8 => {
                t = engine.checkpoint(&mut ssd, t).unwrap().finish;
            }
            // 10%: background GC opportunity.
            _ => {
                let (_, done) = ssd.background_gc(t, 4).unwrap();
                t = done;
            }
        }
    }
    // Full sweep at the end.
    for (&key, &version) in &shadow {
        let r = engine.get(&mut ssd, key, t).unwrap();
        t = r.finish;
        assert_eq!(r.version, version, "final sweep key {key} ({strategy})");
    }
    ssd.ftl().check_invariants().unwrap();
}

#[test]
fn baseline_matches_shadow_model() {
    churn(Strategy::Baseline, 1, 3_000);
}

#[test]
fn isca_matches_shadow_model() {
    churn(Strategy::IscA, 2, 3_000);
}

#[test]
fn iscb_matches_shadow_model() {
    churn(Strategy::IscB, 3, 3_000);
}

#[test]
fn iscc_matches_shadow_model() {
    churn(Strategy::IscC, 4, 3_000);
}

#[test]
fn checkin_matches_shadow_model() {
    churn(Strategy::CheckIn, 5, 3_000);
}

#[test]
fn checkin_matches_shadow_model_across_seeds() {
    for seed in 10..14 {
        churn(Strategy::CheckIn, seed, 1_200);
    }
}

#[test]
fn consistency_holds_with_crash_recovery_interleaved() {
    let strategy = Strategy::CheckIn;
    let (mut ssd, mut engine) = build(strategy);
    let layout = *engine.layout();
    let mut rng = SimRng::seed_from(77);
    let mut shadow: HashMap<u64, u64> = HashMap::new();

    let records: Vec<(u64, u32)> = (0..RECORDS).map(|k| (k, 400)).collect();
    let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
    for &(k, _) in &records {
        shadow.insert(k, 1);
    }

    for _round in 0..4 {
        for _ in 0..300 {
            let key = rng.gen_range(RECORDS);
            let bytes = 1 + rng.gen_range(2048) as u32;
            match engine.update(&mut ssd, key, bytes, t) {
                Ok(done) => t = done,
                Err(EngineError::JournalFull) => {
                    t = engine.checkpoint(&mut ssd, t).unwrap().finish;
                    t = engine.update(&mut ssd, key, bytes, t).unwrap();
                }
                Err(e) => panic!("{e}"),
            }
            *shadow.get_mut(&key).unwrap() += 1;
        }
        // Crash and recover; committed state must be intact.
        drop(engine);
        let (rec, done) = KvEngine::recover(strategy, layout, 0.7, &mut ssd, RECORDS, t).unwrap();
        engine = rec;
        t = done;
        for (&key, &version) in &shadow {
            assert_eq!(
                engine.version_of(key),
                Some(version),
                "key {key} after crash"
            );
        }
    }
}
