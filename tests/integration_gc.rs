//! Garbage-collection integration under sustained churn: data survives GC,
//! shared (remapped) units keep their aliases, and the paper's GC-count
//! ordering holds.

use checkin_core::{KvSystem, Strategy, SystemConfig};
use checkin_flash::FlashGeometry;
use checkin_sim::SimTime;

/// A deliberately small device so GC runs constantly.
fn pressured(strategy: Strategy) -> SystemConfig {
    let mut c = SystemConfig::for_strategy(strategy);
    c.total_queries = 30_000;
    c.threads = 8;
    c.workload.record_count = 300;
    c.workload.mix = checkin_workload::OpMix::WRITE_ONLY;
    c.journal_trigger_sectors = 2_048;
    c.geometry = FlashGeometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 1,
        blocks_per_plane: 40,
        pages_per_block: 64,
        page_bytes: 4096,
    }; // 20 MiB
    c.gc_threshold_blocks = 4;
    c.gc_soft_threshold_blocks = 12;
    c
}

#[test]
fn data_survives_sustained_gc_churn() {
    for strategy in [Strategy::Baseline, Strategy::IscC, Strategy::CheckIn] {
        let mut system = KvSystem::new(pressured(strategy)).unwrap();
        let report = system.run().unwrap();
        assert!(
            report.flash.gc_invocations > 0,
            "{strategy}: config must force GC (got {:?})",
            report.flash
        );
        // Every record still readable at its committed version.
        let mut t = SimTime::from_nanos(u64::MAX / 2);
        for key in 0..300u64 {
            let (engine, ssd) = system.verify_parts();
            let r = engine.get(ssd, key, t).unwrap();
            t = r.finish;
        }
        system.ssd().ftl().check_invariants().unwrap();
    }
}

#[test]
fn checkin_invokes_less_gc_than_baseline() {
    let base = KvSystem::new(pressured(Strategy::Baseline))
        .unwrap()
        .run()
        .unwrap();
    let checkin = KvSystem::new(pressured(Strategy::CheckIn))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        checkin.flash.gc_invocations < base.flash.gc_invocations,
        "Check-In GC {} !< baseline GC {}",
        checkin.flash.gc_invocations,
        base.flash.gc_invocations
    );
    // Fewer erases -> longer lifetime (Equation 1).
    assert!(checkin.lifetime_vs(&base) > 1.0);
}

#[test]
fn gc_preserves_remapped_aliases_end_to_end() {
    // Check-In remaps journal units into the data area; GC must migrate
    // those shared units without breaking either reference. The engine's
    // internal version check (debug_assert in get) plus invariants cover
    // this; run long enough that remapped units get relocated.
    let mut c = pressured(Strategy::CheckIn);
    c.total_queries = 50_000;
    let mut system = KvSystem::new(c).unwrap();
    let report = system.run().unwrap();
    assert!(report.remapped_entries > 0);
    assert!(
        report.flash.gc_units_moved > 0,
        "GC must have relocated units"
    );
    system.ssd().ftl().check_invariants().unwrap();
}

#[test]
fn erase_counts_stay_balanced_under_gc() {
    // Wear levelling: no block should absorb wildly more erases than the
    // mean (greedy victim selection tie-breaks on erase count).
    let mut system = KvSystem::new(pressured(Strategy::Baseline)).unwrap();
    system.run().unwrap();
    let flash = system.ssd().ftl().flash();
    let mean = flash.mean_erase_count();
    let max = flash.max_erase_count() as f64;
    assert!(mean > 0.0, "GC ran");
    assert!(
        max <= (mean * 8.0).max(8.0),
        "wear imbalance: max {max} vs mean {mean:.2}"
    );
}

#[test]
fn waf_ordering_matches_paper() {
    // Redundant checkpoint copies inflate flash programs per host byte:
    // baseline's WAF must exceed Check-In's.
    let base = KvSystem::new(pressured(Strategy::Baseline))
        .unwrap()
        .run()
        .unwrap();
    let checkin = KvSystem::new(pressured(Strategy::CheckIn))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        base.waf > checkin.waf,
        "baseline waf {:.2} !> Check-In waf {:.2}",
        base.waf,
        checkin.waf
    );
}
