//! Cross-crate integration: all five checkpoint strategies must produce
//! the same logical key-value contents, while exhibiting the paper's
//! cost ordering.

use checkin_core::{KvSystem, Strategy, SystemConfig};
use checkin_flash::FlashGeometry;
use checkin_sim::SimTime;

fn config(strategy: Strategy, queries: u64) -> SystemConfig {
    let mut c = SystemConfig::for_strategy(strategy);
    c.total_queries = queries;
    c.threads = 16;
    c.workload.record_count = 600;
    c.journal_trigger_sectors = 2_048;
    c.geometry = FlashGeometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_bytes: 4096,
    };
    c.gc_threshold_blocks = 4;
    c.gc_soft_threshold_blocks = 16;
    c
}

/// Runs a system and returns `(final key versions, report)`.
fn run_and_snapshot(strategy: Strategy) -> (Vec<u64>, checkin_core::RunReport) {
    let mut system = KvSystem::new(config(strategy, 6_000)).unwrap();
    let report = system.run().unwrap();
    let versions = (0..600)
        .map(|k| system.engine().version_of(k).unwrap())
        .collect();
    (versions, report)
}

#[test]
fn all_strategies_reach_identical_logical_state() {
    // Same workload seed -> same operation stream -> same final versions,
    // whatever the checkpointing mechanism.
    let (base_versions, _) = run_and_snapshot(Strategy::Baseline);
    for strategy in [
        Strategy::IscA,
        Strategy::IscB,
        Strategy::IscC,
        Strategy::CheckIn,
    ] {
        let (versions, _) = run_and_snapshot(strategy);
        assert_eq!(versions, base_versions, "{strategy} diverged");
    }
}

#[test]
fn every_key_readable_at_committed_version_after_run() {
    for strategy in Strategy::all() {
        let mut system = KvSystem::new(config(strategy, 6_000)).unwrap();
        system.run().unwrap();
        // The engine debug-asserts that each read returns the committed
        // version; drive every key through a real device read.
        let mut t = SimTime::from_nanos(u64::MAX / 2);
        for key in 0..600u64 {
            let (engine, ssd) = system.verify_parts();
            let r = engine.get(ssd, key, t).unwrap();
            t = r.finish;
            assert!(r.version >= 1, "{strategy} key {key}");
        }
        system.ssd().ftl().check_invariants().unwrap();
    }
}

#[test]
fn in_storage_strategies_beat_baseline_tail_latency() {
    let (_, base) = run_and_snapshot(Strategy::Baseline);
    let (_, checkin) = run_and_snapshot(Strategy::CheckIn);
    assert!(
        checkin.latency.p999 < base.latency.p999,
        "Check-In p99.9 {} !< baseline {}",
        checkin.latency.p999,
        base.latency.p999
    );
    assert!(checkin.checkpoint_mean < base.checkpoint_mean);
}

#[test]
fn checkin_minimizes_redundant_checkpoint_writes() {
    let (_, base) = run_and_snapshot(Strategy::Baseline);
    let (_, iscb) = run_and_snapshot(Strategy::IscB);
    let (_, checkin) = run_and_snapshot(Strategy::CheckIn);
    assert!(checkin.redundant_write_units < base.redundant_write_units);
    assert!(checkin.redundant_write_units < iscb.redundant_write_units);
    assert!(checkin.remapped_entries > 0);
    assert_eq!(base.remapped_entries, 0);
}

#[test]
fn baseline_moves_checkpoint_data_over_host_interface_others_do_not() {
    let (_, base) = run_and_snapshot(Strategy::Baseline);
    let (_, iscb) = run_and_snapshot(Strategy::IscB);
    // Baseline's host I/O includes checkpoint read-back + rewrite, so its
    // amplification is strictly higher.
    assert!(
        base.io_amplification > iscb.io_amplification,
        "baseline io x{} !> ISC-B x{}",
        base.io_amplification,
        iscb.io_amplification
    );
}

#[test]
fn reports_are_deterministic_per_seed_and_differ_across_seeds() {
    let r1 = KvSystem::new(config(Strategy::CheckIn, 3_000))
        .unwrap()
        .run()
        .unwrap();
    let r2 = KvSystem::new(config(Strategy::CheckIn, 3_000))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(r1.elapsed, r2.elapsed);
    assert_eq!(r1.flash.programs, r2.flash.programs);

    let mut alt = config(Strategy::CheckIn, 3_000);
    alt.workload.seed = 999;
    let r3 = KvSystem::new(alt).unwrap().run().unwrap();
    assert_ne!(r1.elapsed, r3.elapsed, "different seed, different run");
}
