//! Property-based tests over the full stack and its core invariants.

use std::collections::HashMap;

use checkin_core::{align_log, EngineError, KvEngine, Layout, LogClass, Strategy};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
use checkin_ftl::{Ftl, FtlConfig, Lpn, MappingTable, Location, Pun};
use checkin_sim::SimTime;
use checkin_ssd::{Ssd, SsdTiming, SECTOR_BYTES};
use proptest::prelude::*;
// `checkin_core::Strategy` shadows proptest's `Strategy` trait name; bring
// the trait into scope under an alias so its methods resolve.
use proptest::strategy::Strategy as PropStrategy;

// ---------------------------------------------------------------------
// Algorithm 2 (sector alignment) invariants
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn aligned_logs_never_shrink_below_payload(bytes in 1u32..=4096, ratio in 0.3f64..=1.0) {
        let log = align_log(bytes, ratio);
        let effective = if bytes > SECTOR_BYTES {
            (bytes as f64 * ratio).ceil() as u32
        } else {
            bytes
        };
        prop_assert!(log.stored_bytes >= effective.min(log.sectors * SECTOR_BYTES));
        prop_assert!(log.stored_bytes >= effective || bytes > SECTOR_BYTES);
    }

    #[test]
    fn aligned_full_logs_are_sector_multiples(bytes in 1u32..=4096, ratio in 0.3f64..=1.0) {
        let log = align_log(bytes, ratio);
        match log.class {
            LogClass::Full => {
                prop_assert_eq!(log.stored_bytes % SECTOR_BYTES, 0);
                prop_assert_eq!(log.stored_bytes / SECTOR_BYTES, log.sectors);
            }
            LogClass::Partial => {
                prop_assert!(log.stored_bytes < SECTOR_BYTES);
                prop_assert_eq!(log.stored_bytes % 128, 0);
                prop_assert_eq!(log.sectors, 1);
            }
        }
    }

    #[test]
    fn alignment_is_monotone_in_value_size(a in 1u32..=512, b in 1u32..=512) {
        // Within the sub-sector classes, a bigger value never stores fewer
        // bytes.
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(align_log(small, 1.0).stored_bytes <= align_log(large, 1.0).stored_bytes);
    }
}

// ---------------------------------------------------------------------
// Mapping-table invariants
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MapOp {
    Map(u8, u8),
    Alias(u8, u8),
    Unmap(u8),
    Relocate(u8, u8),
}

fn map_op() -> impl PropStrategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(l, p)| MapOp::Map(l, p)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| MapOp::Alias(d, s)),
        any::<u8>().prop_map(MapOp::Unmap),
        (any::<u8>(), any::<u8>()).prop_map(|(f, t)| MapOp::Relocate(f, t)),
    ]
}

proptest! {
    #[test]
    fn mapping_table_stays_consistent(ops in proptest::collection::vec(map_op(), 1..200)) {
        let mut table = MappingTable::new();
        for op in ops {
            match op {
                MapOp::Map(l, p) => {
                    table.map(Lpn(l as u64), Location::Flash(Pun(p as u64)));
                }
                MapOp::Alias(d, s) => {
                    let _ = table.alias(Lpn(d as u64), Lpn(s as u64));
                }
                MapOp::Unmap(l) => {
                    table.unmap(Lpn(l as u64));
                }
                MapOp::Relocate(f, t) => {
                    table.relocate(
                        Location::Flash(Pun(f as u64)),
                        Location::Flash(Pun(t as u64)),
                    );
                }
            }
            prop_assert!(table.check_consistency().is_ok());
        }
    }
}

// ---------------------------------------------------------------------
// Whole-stack property: random update/read/checkpoint sequences preserve
// the shadow model for every strategy.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum StackOp {
    Update { key: u8, bytes: u16 },
    Read { key: u8 },
    Checkpoint,
}

fn stack_op() -> impl PropStrategy<Value = StackOp> {
    prop_oneof![
        4 => (any::<u8>(), 1u16..=4096).prop_map(|(key, bytes)| StackOp::Update { key, bytes }),
        4 => any::<u8>().prop_map(|key| StackOp::Read { key }),
        1 => Just(StackOp::Checkpoint),
    ]
}

const RECORDS: u64 = 64;

fn build(strategy: Strategy) -> (Ssd, KvEngine) {
    let unit = strategy.default_unit_bytes();
    let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: unit,
            write_points: 2,
            gc_threshold_blocks: 4,
            gc_soft_threshold_blocks: 8,
            ..FtlConfig::default()
        },
    )
    .unwrap();
    let ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(RECORDS, 4096 + 16, unit, 1 << 10);
    (ssd, KvEngine::new(strategy, layout, 0.7))
}

fn run_stack_ops(strategy: Strategy, ops: &[StackOp]) -> Result<(), TestCaseError> {
    let (mut ssd, mut engine) = build(strategy);
    let records: Vec<(u64, u32)> = (0..RECORDS).map(|k| (k, 256)).collect();
    let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
    let mut shadow: HashMap<u64, u64> = records.iter().map(|&(k, _)| (k, 1)).collect();

    for op in ops {
        match op {
            StackOp::Update { key, bytes } => {
                let key = *key as u64 % RECORDS;
                match engine.update(&mut ssd, key, *bytes as u32, t) {
                    Ok(done) => t = done,
                    Err(EngineError::JournalFull) => {
                        t = engine.checkpoint(&mut ssd, t).unwrap().finish;
                        t = engine.update(&mut ssd, key, *bytes as u32, t).unwrap();
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
                *shadow.get_mut(&key).unwrap() += 1;
            }
            StackOp::Read { key } => {
                let key = *key as u64 % RECORDS;
                let r = engine.get(&mut ssd, key, t).unwrap();
                t = r.finish;
                prop_assert_eq!(r.version, shadow[&key]);
            }
            StackOp::Checkpoint => {
                t = engine.checkpoint(&mut ssd, t).unwrap().finish;
            }
        }
    }
    for (&key, &version) in &shadow {
        let r = engine.get(&mut ssd, key, t).unwrap();
        t = r.finish;
        prop_assert_eq!(r.version, version, "final sweep key {}", key);
    }
    prop_assert!(ssd.ftl().check_invariants().is_ok());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn baseline_stack_preserves_shadow(ops in proptest::collection::vec(stack_op(), 1..120)) {
        run_stack_ops(Strategy::Baseline, &ops)?;
    }

    #[test]
    fn iscb_stack_preserves_shadow(ops in proptest::collection::vec(stack_op(), 1..120)) {
        run_stack_ops(Strategy::IscB, &ops)?;
    }

    #[test]
    fn iscc_stack_preserves_shadow(ops in proptest::collection::vec(stack_op(), 1..120)) {
        run_stack_ops(Strategy::IscC, &ops)?;
    }

    #[test]
    fn checkin_stack_preserves_shadow(ops in proptest::collection::vec(stack_op(), 1..120)) {
        run_stack_ops(Strategy::CheckIn, &ops)?;
    }
}
