//! Property-based tests over the full stack and its core invariants.
//! Randomized via `checkin-testkit` (deterministic seeds, offline-safe).

use std::collections::HashMap;

use checkin_core::{align_log, EngineError, KvEngine, Layout, LogClass, Strategy};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
use checkin_ftl::{Ftl, FtlConfig, Location, Lpn, MappingTable, Pun};
use checkin_sim::SimTime;
use checkin_ssd::{Ssd, SsdTiming, SECTOR_BYTES};
use checkin_testkit::{check, soup, TestRng};

// ---------------------------------------------------------------------
// Algorithm 2 (sector alignment) invariants
// ---------------------------------------------------------------------

#[test]
fn aligned_logs_never_shrink_below_payload() {
    check("aligned_logs_never_shrink_below_payload", 256, |rng| {
        let bytes = rng.range_u32(1, 4096);
        let ratio = rng.range_f64(0.3, 1.0);
        let log = align_log(bytes, ratio);
        let effective = if bytes > SECTOR_BYTES {
            (bytes as f64 * ratio).ceil() as u32
        } else {
            bytes
        };
        assert!(log.stored_bytes >= effective.min(log.sectors * SECTOR_BYTES));
        assert!(log.stored_bytes >= effective || bytes > SECTOR_BYTES);
    });
}

#[test]
fn aligned_full_logs_are_sector_multiples() {
    check("aligned_full_logs_are_sector_multiples", 256, |rng| {
        let bytes = rng.range_u32(1, 4096);
        let ratio = rng.range_f64(0.3, 1.0);
        let log = align_log(bytes, ratio);
        match log.class {
            LogClass::Full => {
                assert_eq!(log.stored_bytes % SECTOR_BYTES, 0);
                assert_eq!(log.stored_bytes / SECTOR_BYTES, log.sectors);
            }
            LogClass::Partial => {
                assert!(log.stored_bytes < SECTOR_BYTES);
                assert_eq!(log.stored_bytes % 128, 0);
                assert_eq!(log.sectors, 1);
            }
        }
    });
}

#[test]
fn alignment_is_monotone_in_value_size() {
    check("alignment_is_monotone_in_value_size", 256, |rng| {
        // Within the sub-sector classes, a bigger value never stores fewer
        // bytes.
        let a = rng.range_u32(1, 512);
        let b = rng.range_u32(1, 512);
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        assert!(align_log(small, 1.0).stored_bytes <= align_log(large, 1.0).stored_bytes);
    });
}

// ---------------------------------------------------------------------
// Mapping-table invariants
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MapOp {
    Map(u8, u8),
    Alias(u8, u8),
    Unmap(u8),
    Relocate(u8, u8),
}

fn map_op(rng: &mut TestRng) -> MapOp {
    match rng.weighted(&[1, 1, 1, 1]) {
        0 => MapOp::Map(rng.any_u8(), rng.any_u8()),
        1 => MapOp::Alias(rng.any_u8(), rng.any_u8()),
        2 => MapOp::Unmap(rng.any_u8()),
        _ => MapOp::Relocate(rng.any_u8(), rng.any_u8()),
    }
}

#[test]
fn mapping_table_stays_consistent() {
    check("mapping_table_stays_consistent", 64, |rng| {
        let len = rng.range_usize(1, 199);
        let ops = soup(rng, len, map_op);
        let mut table = MappingTable::new();
        for op in ops {
            match op {
                MapOp::Map(l, p) => {
                    table.map(Lpn(l as u64), Location::Flash(Pun(p as u64)));
                }
                MapOp::Alias(d, s) => {
                    let _ = table.alias(Lpn(d as u64), Lpn(s as u64));
                }
                MapOp::Unmap(l) => {
                    table.unmap(Lpn(l as u64));
                }
                MapOp::Relocate(f, t) => {
                    table.relocate(
                        Location::Flash(Pun(f as u64)),
                        Location::Flash(Pun(t as u64)),
                    );
                }
            }
            assert!(table.check_consistency().is_ok());
        }
    });
}

// ---------------------------------------------------------------------
// Whole-stack property: random update/read/checkpoint sequences preserve
// the shadow model for every strategy.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum StackOp {
    Update { key: u8, bytes: u16 },
    Read { key: u8 },
    Checkpoint,
}

fn stack_op(rng: &mut TestRng) -> StackOp {
    match rng.weighted(&[4, 4, 1]) {
        0 => StackOp::Update {
            key: rng.any_u8(),
            bytes: rng.range_u32(1, 4096) as u16,
        },
        1 => StackOp::Read { key: rng.any_u8() },
        _ => StackOp::Checkpoint,
    }
}

const RECORDS: u64 = 64;

fn build(strategy: Strategy) -> (Ssd, KvEngine) {
    let unit = strategy.default_unit_bytes();
    let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: unit,
            write_points: 2,
            gc_threshold_blocks: 4,
            gc_soft_threshold_blocks: 8,
            ..FtlConfig::default()
        },
    )
    .unwrap();
    let ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(RECORDS, 4096 + 16, unit, 1 << 10);
    (ssd, KvEngine::new(strategy, layout, 0.7))
}

fn run_stack_ops(strategy: Strategy, ops: &[StackOp]) {
    let (mut ssd, mut engine) = build(strategy);
    let records: Vec<(u64, u32)> = (0..RECORDS).map(|k| (k, 256)).collect();
    let mut t = engine.load(&mut ssd, &records, SimTime::ZERO).unwrap();
    let mut shadow: HashMap<u64, u64> = records.iter().map(|&(k, _)| (k, 1)).collect();

    for op in ops {
        match op {
            StackOp::Update { key, bytes } => {
                let key = *key as u64 % RECORDS;
                match engine.update(&mut ssd, key, *bytes as u32, t) {
                    Ok(done) => t = done,
                    Err(EngineError::JournalFull) => {
                        t = engine.checkpoint(&mut ssd, t).unwrap().finish;
                        t = engine.update(&mut ssd, key, *bytes as u32, t).unwrap();
                    }
                    Err(e) => panic!("{e}"),
                }
                *shadow.get_mut(&key).unwrap() += 1;
            }
            StackOp::Read { key } => {
                let key = *key as u64 % RECORDS;
                let r = engine.get(&mut ssd, key, t).unwrap();
                t = r.finish;
                assert_eq!(r.version, shadow[&key]);
            }
            StackOp::Checkpoint => {
                t = engine.checkpoint(&mut ssd, t).unwrap().finish;
            }
        }
    }
    for (&key, &version) in &shadow {
        let r = engine.get(&mut ssd, key, t).unwrap();
        t = r.finish;
        assert_eq!(r.version, version, "final sweep key {key}");
    }
    assert!(ssd.ftl().check_invariants().is_ok());
}

fn stack_soup(rng: &mut TestRng) -> Vec<StackOp> {
    let len = rng.range_usize(1, 119);
    soup(rng, len, stack_op)
}

#[test]
fn baseline_stack_preserves_shadow() {
    check("baseline_stack_preserves_shadow", 16, |rng| {
        let ops = stack_soup(rng);
        run_stack_ops(Strategy::Baseline, &ops);
    });
}

#[test]
fn iscb_stack_preserves_shadow() {
    check("iscb_stack_preserves_shadow", 16, |rng| {
        let ops = stack_soup(rng);
        run_stack_ops(Strategy::IscB, &ops);
    });
}

#[test]
fn iscc_stack_preserves_shadow() {
    check("iscc_stack_preserves_shadow", 16, |rng| {
        let ops = stack_soup(rng);
        run_stack_ops(Strategy::IscC, &ops);
    });
}

#[test]
fn checkin_stack_preserves_shadow() {
    check("checkin_stack_preserves_shadow", 16, |rng| {
        let ops = stack_soup(rng);
        run_stack_ops(Strategy::CheckIn, &ops);
    });
}
