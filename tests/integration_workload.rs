//! Workload-facing integration: the YCSB mixes and skews interact with
//! the whole stack the way the paper's motivation section describes.

use checkin_core::{KvSystem, Strategy, SystemConfig};
use checkin_flash::FlashGeometry;
use checkin_workload::{AccessPattern, OpMix, RecordSizes};

fn config(mix: OpMix, pattern: AccessPattern) -> SystemConfig {
    let mut c = SystemConfig::for_strategy(Strategy::Baseline);
    c.total_queries = 8_000;
    c.threads = 16;
    c.workload.record_count = 1_000;
    c.workload.mix = mix;
    c.workload.pattern = pattern;
    c.journal_trigger_sectors = 2_048;
    c.geometry = FlashGeometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 96,
        pages_per_block: 64,
        page_bytes: 4096,
    };
    c
}

#[test]
fn all_paper_workloads_run_end_to_end() {
    for mix in [OpMix::A, OpMix::F, OpMix::WRITE_ONLY] {
        for pattern in [AccessPattern::Uniform, AccessPattern::Zipfian] {
            let report = KvSystem::new(config(mix, pattern)).unwrap().run().unwrap();
            assert_eq!(report.ops, 8_000, "{}/{}", mix.label(), pattern.label());
            assert!(report.throughput > 0.0);
        }
    }
}

#[test]
fn zipfian_supersedes_more_journal_logs_than_uniform() {
    // Fig. 3(b)'s mechanism: under zipfian skew the same hot keys are
    // rewritten, so a larger share of journal logs is already stale
    // ("OLD") by checkpoint time than under uniform access.
    let uni = KvSystem::new(config(OpMix::WRITE_ONLY, AccessPattern::Uniform))
        .unwrap()
        .run()
        .unwrap();
    let zipf = KvSystem::new(config(OpMix::WRITE_ONLY, AccessPattern::Zipfian))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        zipf.superseded_logs as f64 > uni.superseded_logs as f64 * 1.5,
        "zipfian {} !>> uniform {}",
        zipf.superseded_logs,
        uni.superseded_logs
    );
}

#[test]
fn uniform_checkpoints_move_more_data_than_zipfian() {
    // More distinct latest versions under uniform access -> more
    // checkpoint work (Fig. 3(b): steeper checkpoint-time growth).
    let uni = KvSystem::new(config(OpMix::WRITE_ONLY, AccessPattern::Uniform))
        .unwrap()
        .run()
        .unwrap();
    let zipf = KvSystem::new(config(OpMix::WRITE_ONLY, AccessPattern::Zipfian))
        .unwrap()
        .run()
        .unwrap();
    let uni_entries = uni.remapped_entries + uni.copied_entries + uni.checkpoint_flash_programs;
    let zipf_entries = zipf.remapped_entries + zipf.copied_entries + zipf.checkpoint_flash_programs;
    assert!(
        uni_entries > zipf_entries,
        "uniform cp work {uni_entries} !> zipfian {zipf_entries}"
    );
}

#[test]
fn write_only_amplifies_io_more_than_read_heavy() {
    let wo = KvSystem::new(config(OpMix::WRITE_ONLY, AccessPattern::Zipfian))
        .unwrap()
        .run()
        .unwrap();
    let b = KvSystem::new(config(OpMix::B, AccessPattern::Zipfian))
        .unwrap()
        .run()
        .unwrap();
    // Workload B is 95% reads: journal + checkpoint traffic is a sliver of
    // total time; write-only stresses it maximally.
    assert!(wo.checkpoints >= b.checkpoints);
    assert!(wo.write_query_bytes > b.write_query_bytes);
}

#[test]
fn rmw_workload_reads_from_journal() {
    // Workload F's read-modify-writes read the freshest copy, which sits
    // in the journal between checkpoints.
    let mut c = config(OpMix::F, AccessPattern::Zipfian);
    c.strategy = Strategy::CheckIn;
    c.unit_bytes = None;
    let report = KvSystem::new(c).unwrap().run().unwrap();
    assert_eq!(report.ops, 8_000);
    assert!(report.latency_read.count > 0);
    assert!(report.latency_write.count > 0);
}

#[test]
fn mixed_record_patterns_run_under_checkin() {
    for sizes in [
        RecordSizes::pattern1(),
        RecordSizes::pattern2(),
        RecordSizes::pattern3(),
        RecordSizes::pattern4(),
    ] {
        let mut c = config(OpMix::WRITE_ONLY, AccessPattern::Zipfian);
        c.strategy = Strategy::CheckIn;
        c.workload.sizes = sizes;
        c.total_queries = 4_000;
        let report = KvSystem::new(c).unwrap().run().unwrap();
        assert_eq!(report.ops, 4_000);
        assert!(report.journal_space_overhead > 0.0);
    }
}

#[test]
fn thread_scaling_increases_throughput_until_saturation() {
    let mut last = 0.0;
    let mut grew = 0;
    for threads in [2u32, 8, 32] {
        let mut c = config(OpMix::A, AccessPattern::Zipfian);
        c.threads = threads;
        let report = KvSystem::new(c).unwrap().run().unwrap();
        if report.throughput > last {
            grew += 1;
        }
        last = report.throughput;
    }
    assert!(grew >= 2, "throughput should scale with threads initially");
}
