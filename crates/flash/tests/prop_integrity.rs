//! Property tests of the integrity layer: the CRC sealed over the
//! canonical encodings detects **every** single-bit flip — in the encoded
//! byte stream and in any struct field an injector can reach — with no
//! false accepts across a seeded corpus. This is the contract the SPOR
//! scan and every verified read path rely on.

use checkin_flash::{
    crc32, encode_oob_into, encode_unit_into, oob_checksum, unit_checksum, FragVec, Fragment,
    OobEntry, OobKind, UnitPayload,
};
use checkin_testkit::{check, TestRng};

fn any_unit(rng: &mut TestRng) -> UnitPayload {
    let n = rng.range_usize(1, 6);
    let mut fragments = FragVec::new();
    for _ in 0..n {
        fragments.push(Fragment {
            key: rng.next_u64(),
            version: rng.next_u64(),
            bytes: rng.range_u32(1, 4096),
        });
    }
    UnitPayload { fragments }
}

fn any_oob(rng: &mut TestRng) -> OobEntry {
    let kinds = [
        OobKind::Journal,
        OobKind::Data,
        OobKind::Meta,
        OobKind::GcCopy,
    ];
    OobEntry {
        lpn: rng.next_u64(),
        sequence: rng.next_u64(),
        kind: kinds[rng.below(4) as usize],
    }
}

/// Flipping any single bit of an encoded record changes its CRC.
#[test]
fn single_bit_flip_in_encoding_always_detected() {
    check("single_bit_flip_in_encoding_always_detected", 128, |rng| {
        let mut buf = Vec::new();
        if rng.chance(0.5) {
            encode_unit_into(&any_unit(rng), &mut buf);
        } else {
            encode_oob_into(&any_oob(rng), &mut buf);
        }
        let sealed = crc32(&buf);
        // Exhaustive over every bit of this record, not just a sample:
        // CRCs detect all 1-bit errors by construction, so one surviving
        // flip anywhere would be an implementation bug.
        for byte in 0..buf.len() {
            for bit in 0..8 {
                buf[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&buf),
                    sealed,
                    "flip at byte {byte} bit {bit} went undetected"
                );
                buf[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&buf), sealed, "restored record must verify again");
    });
}

/// Flipping a single bit of any field the bit-rot injector targets
/// changes the streaming checksum (which must agree with the encoded
/// one-shot CRC).
#[test]
fn single_bit_field_flips_break_streaming_checksums() {
    check(
        "single_bit_field_flips_break_streaming_checksums",
        128,
        |rng| {
            let unit = any_unit(rng);
            let mut buf = Vec::new();
            encode_unit_into(&unit, &mut buf);
            assert_eq!(unit_checksum(&unit), crc32(&buf), "streaming == one-shot");

            let sealed = unit_checksum(&unit);
            let victim = rng.below(unit.fragments.len() as u64) as usize;
            let bit = rng.below(64);
            for field in 0..3 {
                let mut m = unit.clone();
                let f = &mut m.fragments.as_mut_slice()[victim];
                match field {
                    0 => f.key ^= 1 << bit,
                    1 => f.version ^= 1 << bit,
                    _ => f.bytes ^= 1 << (bit % 32),
                }
                assert_ne!(unit_checksum(&m), sealed, "field {field} flip undetected");
            }

            let oob = any_oob(rng);
            let mut obuf = Vec::new();
            encode_oob_into(&oob, &mut obuf);
            assert_eq!(oob_checksum(&oob), crc32(&obuf), "streaming == one-shot");
            let sealed = oob_checksum(&oob);
            let mut m = oob;
            m.lpn ^= 1 << bit;
            assert_ne!(oob_checksum(&m), sealed, "lpn flip undetected");
            let mut m = oob;
            m.sequence ^= 1 << bit;
            assert_ne!(oob_checksum(&m), sealed, "sequence flip undetected");
        },
    );
}
