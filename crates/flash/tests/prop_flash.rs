//! Property tests of the NAND rules: out-of-place updates, in-order
//! programming, erase-before-reuse, and timing monotonicity. Randomized
//! via `checkin-testkit` (deterministic seeds, offline-safe).

use checkin_flash::{
    BlockId, FlashArray, FlashError, FlashGeometry, FlashTiming, PageContent, UnitPayload,
};
use checkin_sim::SimTime;
use checkin_testkit::{check, soup, TestRng};

fn array() -> FlashArray {
    FlashArray::new(
        FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 8,
            page_bytes: 4096,
        },
        FlashTiming::mlc(),
    )
}

fn content(tag: u64) -> PageContent {
    let mut c = PageContent::empty(8);
    c.units[0] = Some(UnitPayload::single(tag, 1, 512));
    c
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Program { block: u8, page: u8 },
    Erase { block: u8 },
    Read { block: u8, page: u8 },
}

fn op(rng: &mut TestRng) -> Op {
    match rng.weighted(&[5, 2, 3]) {
        0 => Op::Program {
            block: rng.any_u8(),
            page: rng.any_u8(),
        },
        1 => Op::Erase {
            block: rng.any_u8(),
        },
        _ => Op::Read {
            block: rng.any_u8(),
            page: rng.any_u8(),
        },
    }
}

/// Whatever the op soup, the array enforces NAND rules and its own
/// bookkeeping never diverges from a shadow page-state model.
#[test]
fn nand_rules_hold_under_random_ops() {
    check("nand_rules_hold_under_random_ops", 64, |rng| {
        let len = rng.range_usize(1, 299);
        let ops = soup(rng, len, op);
        let mut flash = array();
        let g = *flash.geometry();
        let blocks = g.total_blocks();
        let ppb = g.pages_per_block;
        // Shadow: per block, number of programmed pages (prefix property).
        let mut programmed = vec![0u32; blocks as usize];
        let mut tag = 0u64;

        for op in ops {
            match op {
                Op::Program { block, page } => {
                    let b = block as u64 % blocks;
                    let p = page as u32 % ppb;
                    let ppn = g.ppn_in_block(BlockId(b), p);
                    tag += 1;
                    let result = flash.program(ppn, content(tag), SimTime::ZERO);
                    if p == programmed[b as usize] {
                        assert!(result.is_ok(), "in-order program must succeed");
                        programmed[b as usize] += 1;
                    } else if p < programmed[b as usize] {
                        assert!(
                            matches!(result, Err(FlashError::ProgramDirtyPage(_))),
                            "reprogram must fail"
                        );
                    } else {
                        assert!(
                            matches!(result, Err(FlashError::ProgramOutOfOrder { .. })),
                            "skip-ahead program must fail"
                        );
                    }
                }
                Op::Erase { block } => {
                    let b = block as u64 % blocks;
                    flash.erase(BlockId(b), SimTime::ZERO).unwrap();
                    programmed[b as usize] = 0;
                }
                Op::Read { block, page } => {
                    let b = block as u64 % blocks;
                    let p = page as u32 % ppb;
                    let ppn = g.ppn_in_block(BlockId(b), p);
                    let stored = flash.read(ppn).is_some();
                    assert_eq!(stored, p < programmed[b as usize]);
                }
            }
        }
        // Erase accounting matches the flash's own counters.
        let total: u64 = (0..blocks).map(|b| flash.erase_count(BlockId(b))).sum();
        assert_eq!(total, flash.total_erases());
    });
}

/// Operation windows never run backwards on a die, and every program's
/// finish is strictly after its start.
#[test]
fn timing_is_monotone_per_die() {
    check("timing_is_monotone_per_die", 64, |rng| {
        let len = rng.range_usize(1, 59);
        let pages = soup(rng, len, |r| r.any_u8());
        let mut flash = array();
        let g = *flash.geometry();
        let mut last_finish_per_die = std::collections::HashMap::new();
        let mut cursor = vec![0u32; g.total_blocks() as usize];
        for raw in pages {
            let b = raw as u64 % g.total_blocks();
            let p = cursor[b as usize];
            if p >= g.pages_per_block {
                continue;
            }
            cursor[b as usize] += 1;
            let ppn = g.ppn_in_block(BlockId(b), p);
            let w = flash.program(ppn, content(1), SimTime::ZERO).unwrap();
            let die = g.die_of_block(BlockId(b));
            if let Some(prev) = last_finish_per_die.insert(die, w.finish) {
                assert!(w.finish > prev, "die timeline must advance");
            }
            assert!(w.finish > w.start);
        }
    });
}

#[test]
fn full_device_program_cycle() {
    // Program every page of the device in order, erase everything, repeat:
    // the array must accept exactly total_pages programs each cycle.
    let mut flash = array();
    let g = *flash.geometry();
    for cycle in 1..=3u64 {
        for b in 0..g.total_blocks() {
            for p in 0..g.pages_per_block {
                flash
                    .program(g.ppn_in_block(BlockId(b), p), content(cycle), SimTime::ZERO)
                    .unwrap();
            }
        }
        for b in 0..g.total_blocks() {
            flash.erase(BlockId(b), SimTime::ZERO).unwrap();
            assert_eq!(flash.erase_count(BlockId(b)), cycle);
        }
    }
    assert_eq!(flash.counters().get("flash.program"), 3 * g.total_pages());
}
