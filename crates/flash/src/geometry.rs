//! Physical layout of the NAND array and address arithmetic.

use std::fmt;

/// A physical page number: a dense index over every page in the array.
///
/// `Ppn` is the currency between the FTL and the flash array; use
/// [`FlashGeometry::decompose`] to recover the structural address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

impl fmt::Display for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppn:{}", self.0)
    }
}

/// A dense index over every block in the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{}", self.0)
    }
}

/// Structural (channel/die/plane/block/page) form of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ppa {
    /// Channel index within the device.
    pub channel: u32,
    /// Die index within the channel.
    pub die: u32,
    /// Plane index within the die.
    pub plane: u32,
    /// Block index within the plane.
    pub block: u32,
    /// Page index within the block.
    pub page: u32,
}

/// Shape of the NAND array.
///
/// Blocks are numbered plane-major so that consecutive [`BlockId`]s rotate
/// across channels, giving the log-structured allocator free channel
/// parallelism when it stripes writes.
///
/// # Examples
///
/// ```
/// use checkin_flash::FlashGeometry;
///
/// let g = FlashGeometry::small(); // test-sized array
/// assert_eq!(g.total_pages(), g.total_blocks() * g.pages_per_block as u64);
/// let ppn = g.compose(g.decompose(checkin_flash::Ppn(1234)));
/// assert_eq!(ppn.0, 1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Independent channels (buses).
    pub channels: u32,
    /// Dies per channel; a die serves one array operation at a time.
    pub dies_per_channel: u32,
    /// Planes per die (multi-plane operations are not modelled; planes
    /// multiply capacity).
    pub planes_per_die: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Pages per block; pages must be programmed in order within a block.
    pub pages_per_block: u32,
    /// Bytes per physical page (data area, excluding OOB).
    pub page_bytes: u32,
}

impl FlashGeometry {
    /// Geometry mirroring the paper's SimpleSSD-style configuration scaled
    /// for simulation speed: 4 channels x 2 dies x 2 planes x 192 blocks x
    /// 256 pages x 4 KiB = 1.5 GiB.
    pub fn paper_default() -> Self {
        FlashGeometry {
            channels: 4,
            dies_per_channel: 2,
            planes_per_die: 2,
            blocks_per_plane: 192,
            pages_per_block: 256,
            page_bytes: 4096,
        }
    }

    /// A tiny array (2 ch x 1 die x 1 plane x 32 blk x 32 pages x 4 KiB =
    /// 4 MiB) for unit tests that need GC pressure quickly.
    pub fn small() -> Self {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 32,
            page_bytes: 4096,
        }
    }

    /// Validates that every dimension is non-zero.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending dimension.
    pub fn validate(&self) -> Result<(), String> {
        let dims = [
            ("channels", self.channels),
            ("dies_per_channel", self.dies_per_channel),
            ("planes_per_die", self.planes_per_die),
            ("blocks_per_plane", self.blocks_per_plane),
            ("pages_per_block", self.pages_per_block),
            ("page_bytes", self.page_bytes),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(format!("geometry dimension {name} must be non-zero"));
            }
        }
        if !self.page_bytes.is_power_of_two() {
            return Err("page_bytes must be a power of two".to_string());
        }
        Ok(())
    }

    /// Total dies in the device.
    pub fn total_dies(&self) -> u64 {
        self.channels as u64 * self.dies_per_channel as u64
    }

    /// Total planes in the device.
    pub fn total_planes(&self) -> u64 {
        self.total_dies() * self.planes_per_die as u64
    }

    /// Total blocks in the device.
    pub fn total_blocks(&self) -> u64 {
        self.total_planes() * self.blocks_per_plane as u64
    }

    /// Total pages in the device.
    pub fn total_pages(&self) -> u64 {
        self.total_blocks() * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Bytes in one block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Maps a block id to its structural position. Blocks are striped:
    /// consecutive ids land on consecutive channels, then dies, then
    /// planes, then advance within the plane.
    pub fn block_position(&self, block: BlockId) -> Ppa {
        let b = block.0;
        debug_assert!(b < self.total_blocks(), "block id out of range: {block}");
        let channel = (b % self.channels as u64) as u32;
        let rest = b / self.channels as u64;
        let die = (rest % self.dies_per_channel as u64) as u32;
        let rest = rest / self.dies_per_channel as u64;
        let plane = (rest % self.planes_per_die as u64) as u32;
        let block_in_plane = (rest / self.planes_per_die as u64) as u32;
        Ppa {
            channel,
            die,
            plane,
            block: block_in_plane,
            page: 0,
        }
    }

    /// The dense die index `(channel, die)` of a block — the contention
    /// domain for array operations.
    pub fn die_of_block(&self, block: BlockId) -> u64 {
        let pos = self.block_position(block);
        pos.channel as u64 * self.dies_per_channel as u64 + pos.die as u64
    }

    /// First PPN of `block`.
    pub fn first_ppn(&self, block: BlockId) -> Ppn {
        Ppn(block.0 * self.pages_per_block as u64)
    }

    /// PPN of `page` within `block`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `page` exceeds the block size.
    pub fn ppn_in_block(&self, block: BlockId, page: u32) -> Ppn {
        debug_assert!(page < self.pages_per_block, "page index out of range");
        Ppn(block.0 * self.pages_per_block as u64 + page as u64)
    }

    /// Block containing `ppn`.
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        BlockId(ppn.0 / self.pages_per_block as u64)
    }

    /// Page offset of `ppn` within its block.
    pub fn page_in_block(&self, ppn: Ppn) -> u32 {
        (ppn.0 % self.pages_per_block as u64) as u32
    }

    /// Structural address of a PPN.
    pub fn decompose(&self, ppn: Ppn) -> Ppa {
        let block = self.block_of(ppn);
        let mut pos = self.block_position(block);
        pos.page = self.page_in_block(ppn);
        pos
    }

    /// Dense PPN of a structural address.
    pub fn compose(&self, ppa: Ppa) -> Ppn {
        let block_in_plane = ppa.block as u64;
        let b = ((block_in_plane * self.planes_per_die as u64 + ppa.plane as u64)
            * self.dies_per_channel as u64
            + ppa.die as u64)
            * self.channels as u64
            + ppa.channel as u64;
        Ppn(b * self.pages_per_block as u64 + ppa.page as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply_out() {
        let g = FlashGeometry::paper_default();
        assert_eq!(g.total_dies(), 8);
        assert_eq!(g.total_planes(), 16);
        assert_eq!(g.total_blocks(), 16 * 192);
        assert_eq!(g.capacity_bytes(), 16 * 192 * 256 * 4096);
    }

    #[test]
    fn validate_catches_zero_dims() {
        let mut g = FlashGeometry::small();
        g.channels = 0;
        assert!(g.validate().unwrap_err().contains("channels"));
        let mut g = FlashGeometry::small();
        g.page_bytes = 3000;
        assert!(g.validate().unwrap_err().contains("power of two"));
        assert!(FlashGeometry::paper_default().validate().is_ok());
    }

    #[test]
    fn ppn_roundtrip_all_small() {
        let g = FlashGeometry::small();
        for raw in 0..g.total_pages() {
            let ppa = g.decompose(Ppn(raw));
            assert_eq!(g.compose(ppa), Ppn(raw));
        }
    }

    #[test]
    fn blocks_stripe_channels_first() {
        let g = FlashGeometry::paper_default();
        let p0 = g.block_position(BlockId(0));
        let p1 = g.block_position(BlockId(1));
        let p4 = g.block_position(BlockId(4));
        assert_eq!(p0.channel, 0);
        assert_eq!(p1.channel, 1);
        assert_eq!(p4.channel, 0);
        assert_eq!(p4.die, 1, "after all channels, advance die");
    }

    #[test]
    fn block_and_page_of_ppn() {
        let g = FlashGeometry::small();
        let ppn = g.ppn_in_block(BlockId(3), 7);
        assert_eq!(g.block_of(ppn), BlockId(3));
        assert_eq!(g.page_in_block(ppn), 7);
        assert_eq!(g.first_ppn(BlockId(3)), Ppn(3 * 32));
    }

    #[test]
    fn die_of_block_is_stable_per_block() {
        let g = FlashGeometry::paper_default();
        for b in 0..64 {
            let die = g.die_of_block(BlockId(b));
            assert!(die < g.total_dies());
            let pos = g.block_position(BlockId(b));
            assert_eq!(die, pos.channel as u64 * 2 + pos.die as u64);
        }
    }
}
