//! Error type for flash array misuse and injected media failures.
//!
//! # Fatal vs. transient — the retry policy
//!
//! [`FlashError`] covers two very different families, distinguished by
//! [`FlashError::classification`]:
//!
//! * **Fatal** ([`ErrorClass::Fatal`]) — NAND *rule violations*
//!   (dirty-page program, out-of-order program, out-of-range addresses).
//!   These indicate FTL bugs, not environmental failures, and retrying
//!   them would repeat the bug; upper layers must treat them as fatal.
//!   Also fatal are *permanent media conditions*: a grown bad block, an
//!   exhausted P/E budget, and a power loss — none of which can succeed
//!   on retry. The FTL answers a fatal program/erase media failure with
//!   block retirement (see `checkin-ftl`), and a power loss with
//!   sudden-power-off recovery.
//! * **Transient** ([`ErrorClass::Transient`]) — injected one-shot media
//!   failures (read/program/erase). The *device firmware* (the FTL layer)
//!   retries these with exponential backoff, bounded by the per-op-class
//!   budgets in `FtlConfig` (`retry_read` / `retry_program` /
//!   `retry_erase`); each attempt draws independently, so
//!   bounded retries almost surely succeed. State is never mutated by a
//!   failed attempt.

use std::error::Error;
use std::fmt;

use crate::geometry::{BlockId, Ppn};

/// Retry classification of a [`FlashError`] — see the module docs for
/// the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Worth retrying (injected one-shot media failure).
    Transient,
    /// Retrying cannot help: rule violation, permanent media condition,
    /// or power loss.
    Fatal,
}

/// Violations of NAND programming rules and injected media failures.
///
/// Rule violations indicate FTL bugs, not environmental failures, so
/// upper layers generally treat them as fatal; media failures carry a
/// [`FlashError::classification`] that tells the firmware whether a
/// bounded retry is worthwhile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Attempt to program a page that is not in the erased state
    /// (out-of-place update violation).
    ProgramDirtyPage(Ppn),
    /// Attempt to program pages of a block out of order.
    ProgramOutOfOrder {
        /// Page that was requested.
        requested: Ppn,
        /// Page index the block expects next.
        expected_page: u32,
    },
    /// Address beyond the configured geometry.
    OutOfRange(Ppn),
    /// Block id beyond the configured geometry.
    BlockOutOfRange(BlockId),
    /// Erase of a block whose P/E budget is exhausted.
    WornOut(BlockId),
    /// Injected transient read failure (retryable).
    TransientRead(Ppn),
    /// Injected transient program failure (retryable; the page stays
    /// erased).
    TransientProgram(Ppn),
    /// Injected transient erase failure (retryable; the block keeps its
    /// content).
    TransientErase(BlockId),
    /// The block developed a permanent (grown) defect during a program or
    /// erase. Every later program/erase of the block fails the same way;
    /// the FTL must retire it.
    GrownBadBlock(BlockId),
    /// Power was cut before the operation touched any state. The device
    /// stays frozen until `FlashArray::power_on`.
    PowerLoss,
}

impl FlashError {
    /// Whether this failure is worth retrying. See the module docs for
    /// the full policy.
    pub fn classification(&self) -> ErrorClass {
        match self {
            FlashError::TransientRead(_)
            | FlashError::TransientProgram(_)
            | FlashError::TransientErase(_) => ErrorClass::Transient,
            FlashError::ProgramDirtyPage(_)
            | FlashError::ProgramOutOfOrder { .. }
            | FlashError::OutOfRange(_)
            | FlashError::BlockOutOfRange(_)
            | FlashError::WornOut(_)
            | FlashError::GrownBadBlock(_)
            | FlashError::PowerLoss => ErrorClass::Fatal,
        }
    }

    /// True for [`FlashError::PowerLoss`] — the one fatal error that is
    /// *expected* under fault injection and answered by recovery instead
    /// of by failing the run.
    pub fn is_power_loss(&self) -> bool {
        matches!(self, FlashError::PowerLoss)
    }
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::ProgramDirtyPage(ppn) => {
                write!(f, "program of non-erased page {ppn}")
            }
            FlashError::ProgramOutOfOrder {
                requested,
                expected_page,
            } => write!(
                f,
                "out-of-order program of {requested}, block expects page {expected_page}"
            ),
            FlashError::OutOfRange(ppn) => write!(f, "physical page {ppn} out of range"),
            FlashError::BlockOutOfRange(b) => write!(f, "block {b} out of range"),
            FlashError::WornOut(b) => write!(f, "block {b} exceeded its P/E cycle budget"),
            FlashError::TransientRead(ppn) => write!(f, "transient read failure at {ppn}"),
            FlashError::TransientProgram(ppn) => {
                write!(f, "transient program failure at {ppn}")
            }
            FlashError::TransientErase(b) => write!(f, "transient erase failure on block {b}"),
            FlashError::GrownBadBlock(b) => write!(f, "block {b} grew a permanent defect"),
            FlashError::PowerLoss => write!(f, "power lost before the operation completed"),
        }
    }
}

impl Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FlashError::ProgramDirtyPage(Ppn(5))
            .to_string()
            .contains("non-erased"));
        assert!(FlashError::ProgramOutOfOrder {
            requested: Ppn(9),
            expected_page: 2
        }
        .to_string()
        .contains("expects page 2"));
        assert!(FlashError::WornOut(BlockId(1)).to_string().contains("P/E"));
        assert!(FlashError::PowerLoss.to_string().contains("power"));
        assert!(FlashError::GrownBadBlock(BlockId(3))
            .to_string()
            .contains("permanent"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(FlashError::OutOfRange(Ppn(0)));
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn classification_splits_rule_violations_from_media_failures() {
        assert_eq!(
            FlashError::TransientRead(Ppn(0)).classification(),
            ErrorClass::Transient
        );
        assert_eq!(
            FlashError::TransientProgram(Ppn(0)).classification(),
            ErrorClass::Transient
        );
        assert_eq!(
            FlashError::TransientErase(BlockId(0)).classification(),
            ErrorClass::Transient
        );
        for fatal in [
            FlashError::ProgramDirtyPage(Ppn(0)),
            FlashError::OutOfRange(Ppn(0)),
            FlashError::BlockOutOfRange(BlockId(0)),
            FlashError::WornOut(BlockId(0)),
            FlashError::GrownBadBlock(BlockId(0)),
            FlashError::PowerLoss,
        ] {
            assert_eq!(fatal.classification(), ErrorClass::Fatal, "{fatal}");
        }
        assert!(FlashError::PowerLoss.is_power_loss());
        assert!(!FlashError::TransientRead(Ppn(0)).is_power_loss());
    }
}
