//! Error type for flash array misuse.

use std::error::Error;
use std::fmt;

use crate::geometry::{BlockId, Ppn};

/// Violations of NAND programming rules.
///
/// These indicate FTL bugs, not environmental failures, so upper layers
/// generally treat them as fatal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlashError {
    /// Attempt to program a page that is not in the erased state
    /// (out-of-place update violation).
    ProgramDirtyPage(Ppn),
    /// Attempt to program pages of a block out of order.
    ProgramOutOfOrder {
        /// Page that was requested.
        requested: Ppn,
        /// Page index the block expects next.
        expected_page: u32,
    },
    /// Address beyond the configured geometry.
    OutOfRange(Ppn),
    /// Block id beyond the configured geometry.
    BlockOutOfRange(BlockId),
    /// Erase of a block whose P/E budget is exhausted.
    WornOut(BlockId),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::ProgramDirtyPage(ppn) => {
                write!(f, "program of non-erased page {ppn}")
            }
            FlashError::ProgramOutOfOrder {
                requested,
                expected_page,
            } => write!(
                f,
                "out-of-order program of {requested}, block expects page {expected_page}"
            ),
            FlashError::OutOfRange(ppn) => write!(f, "physical page {ppn} out of range"),
            FlashError::BlockOutOfRange(b) => write!(f, "block {b} out of range"),
            FlashError::WornOut(b) => write!(f, "block {b} exceeded its P/E cycle budget"),
        }
    }
}

impl Error for FlashError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(FlashError::ProgramDirtyPage(Ppn(5))
            .to_string()
            .contains("non-erased"));
        assert!(FlashError::ProgramOutOfOrder {
            requested: Ppn(9),
            expected_page: 2
        }
        .to_string()
        .contains("expects page 2"));
        assert!(FlashError::WornOut(BlockId(1)).to_string().contains("P/E"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(FlashError::OutOfRange(Ppn(0)));
        assert!(e.to_string().contains("out of range"));
    }
}
