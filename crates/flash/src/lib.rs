//! NAND flash array model for the Check-In reproduction.
//!
//! This crate is the lowest substrate of the simulated SSD: a
//! channel/die/plane/block/page array ([`FlashArray`]) that
//!
//! * enforces NAND programming rules (out-of-place updates, in-order page
//!   programming within a block, erase-before-reuse);
//! * accounts P/E cycles per block, which feeds the paper's lifetime
//!   analysis (Equation 1);
//! * models operation timing (tR / tPROG / tBER and channel bus transfers)
//!   through per-die and per-channel FIFO resources, so that channel
//!   parallelism and die contention emerge naturally;
//! * stores page *content tags* ([`PageContent`]) plus OOB recovery
//!   metadata ([`OobEntry`]) instead of raw bytes, which lets the test
//!   suite verify end-to-end data consistency cheaply.
//!
//! # Examples
//!
//! ```
//! use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, PageContent, UnitPayload, Ppn};
//! use checkin_sim::SimTime;
//!
//! let mut flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
//! let mut page = PageContent::empty(8);
//! page.units[0] = Some(UnitPayload::single(/*key*/ 1, /*version*/ 1, /*bytes*/ 512));
//! let window = flash.program(Ppn(0), page, SimTime::ZERO)?;
//! assert_eq!(flash.read(Ppn(0)).unwrap().occupied_units(), 1);
//! assert!(window.finish > window.start);
//! # Ok::<(), checkin_flash::FlashError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod content;
mod error;
mod fault;
mod geometry;
mod integrity;
mod phase;
mod timing;

pub use array::FlashArray;
pub use content::{FragVec, Fragment, OobEntry, OobKind, PageContent, UnitPayload};
pub use error::{ErrorClass, FlashError};
pub use fault::{FaultConfig, FaultOp, FaultPhase, FaultPlan};
pub use geometry::{BlockId, FlashGeometry, Ppa, Ppn};
pub use integrity::{crc32, encode_oob_into, encode_unit_into, oob_checksum, unit_checksum, Crc32};
pub use phase::OpPhase;
pub use timing::FlashTiming;
