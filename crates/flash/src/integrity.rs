//! End-to-end integrity primitives: CRC32 over canonical encodings of
//! page content.
//!
//! The simulator stores content *tags* instead of raw bytes, so checksums
//! are computed over a **canonical little-endian encoding** of each
//! mapping-unit payload and each OOB record. A checksum sealed at program
//! time detects any later mutation of the tags — the corruption injectors
//! flip tag bits without resealing, exactly like retention bit-rot flips
//! cells under a stale ECC word.
//!
//! The CRC is the reflected CRC-32 (polynomial `0xEDB8_8320`), computed
//! bytewise through a literal 256-entry table: checksum sealing rides
//! every flash program and verification rides every read, so the table
//! form matters (~8x over the bit-at-a-time loop on the query hot loop).
//! This file is recovery-critical (analyzer rule A1), so lookups go
//! through `get` + `unwrap_or` — no indexing, no `unwrap`, and no panic
//! path at all. A single-bit flip anywhere in an encoded record is
//! always detected — CRCs catch every 1-bit error by construction — and
//! the property suite in `tests/prop_flash.rs` pins that end to end.

use crate::content::{OobEntry, OobKind, UnitPayload};

/// Reflected CRC-32 polynomial (IEEE 802.3). Outside of tests the
/// polynomial lives on only through [`CRC_TABLE`]; the
/// `table_is_the_polynomial_recurrence` test re-derives the table from
/// it entry by entry.
#[cfg_attr(not(test), allow(dead_code))]
const POLY: u32 = 0xEDB8_8320;

/// Bytewise lookup table for [`POLY`]: entry `i` is the CRC step of the
/// single byte `i`. Spelled out as literals (rather than built by a
/// `const fn`) so this recovery-critical file stays free of array
/// indexing even at construction; `table_is_the_polynomial_recurrence`
/// below re-derives every entry from `POLY`.
const CRC_TABLE: [u32; 256] = [
    0x00000000, 0x77073096, 0xEE0E612C, 0x990951BA, 0x076DC419, 0x706AF48F, 0xE963A535, 0x9E6495A3,
    0x0EDB8832, 0x79DCB8A4, 0xE0D5E91E, 0x97D2D988, 0x09B64C2B, 0x7EB17CBD, 0xE7B82D07, 0x90BF1D91,
    0x1DB71064, 0x6AB020F2, 0xF3B97148, 0x84BE41DE, 0x1ADAD47D, 0x6DDDE4EB, 0xF4D4B551, 0x83D385C7,
    0x136C9856, 0x646BA8C0, 0xFD62F97A, 0x8A65C9EC, 0x14015C4F, 0x63066CD9, 0xFA0F3D63, 0x8D080DF5,
    0x3B6E20C8, 0x4C69105E, 0xD56041E4, 0xA2677172, 0x3C03E4D1, 0x4B04D447, 0xD20D85FD, 0xA50AB56B,
    0x35B5A8FA, 0x42B2986C, 0xDBBBC9D6, 0xACBCF940, 0x32D86CE3, 0x45DF5C75, 0xDCD60DCF, 0xABD13D59,
    0x26D930AC, 0x51DE003A, 0xC8D75180, 0xBFD06116, 0x21B4F4B5, 0x56B3C423, 0xCFBA9599, 0xB8BDA50F,
    0x2802B89E, 0x5F058808, 0xC60CD9B2, 0xB10BE924, 0x2F6F7C87, 0x58684C11, 0xC1611DAB, 0xB6662D3D,
    0x76DC4190, 0x01DB7106, 0x98D220BC, 0xEFD5102A, 0x71B18589, 0x06B6B51F, 0x9FBFE4A5, 0xE8B8D433,
    0x7807C9A2, 0x0F00F934, 0x9609A88E, 0xE10E9818, 0x7F6A0DBB, 0x086D3D2D, 0x91646C97, 0xE6635C01,
    0x6B6B51F4, 0x1C6C6162, 0x856530D8, 0xF262004E, 0x6C0695ED, 0x1B01A57B, 0x8208F4C1, 0xF50FC457,
    0x65B0D9C6, 0x12B7E950, 0x8BBEB8EA, 0xFCB9887C, 0x62DD1DDF, 0x15DA2D49, 0x8CD37CF3, 0xFBD44C65,
    0x4DB26158, 0x3AB551CE, 0xA3BC0074, 0xD4BB30E2, 0x4ADFA541, 0x3DD895D7, 0xA4D1C46D, 0xD3D6F4FB,
    0x4369E96A, 0x346ED9FC, 0xAD678846, 0xDA60B8D0, 0x44042D73, 0x33031DE5, 0xAA0A4C5F, 0xDD0D7CC9,
    0x5005713C, 0x270241AA, 0xBE0B1010, 0xC90C2086, 0x5768B525, 0x206F85B3, 0xB966D409, 0xCE61E49F,
    0x5EDEF90E, 0x29D9C998, 0xB0D09822, 0xC7D7A8B4, 0x59B33D17, 0x2EB40D81, 0xB7BD5C3B, 0xC0BA6CAD,
    0xEDB88320, 0x9ABFB3B6, 0x03B6E20C, 0x74B1D29A, 0xEAD54739, 0x9DD277AF, 0x04DB2615, 0x73DC1683,
    0xE3630B12, 0x94643B84, 0x0D6D6A3E, 0x7A6A5AA8, 0xE40ECF0B, 0x9309FF9D, 0x0A00AE27, 0x7D079EB1,
    0xF00F9344, 0x8708A3D2, 0x1E01F268, 0x6906C2FE, 0xF762575D, 0x806567CB, 0x196C3671, 0x6E6B06E7,
    0xFED41B76, 0x89D32BE0, 0x10DA7A5A, 0x67DD4ACC, 0xF9B9DF6F, 0x8EBEEFF9, 0x17B7BE43, 0x60B08ED5,
    0xD6D6A3E8, 0xA1D1937E, 0x38D8C2C4, 0x4FDFF252, 0xD1BB67F1, 0xA6BC5767, 0x3FB506DD, 0x48B2364B,
    0xD80D2BDA, 0xAF0A1B4C, 0x36034AF6, 0x41047A60, 0xDF60EFC3, 0xA867DF55, 0x316E8EEF, 0x4669BE79,
    0xCB61B38C, 0xBC66831A, 0x256FD2A0, 0x5268E236, 0xCC0C7795, 0xBB0B4703, 0x220216B9, 0x5505262F,
    0xC5BA3BBE, 0xB2BD0B28, 0x2BB45A92, 0x5CB36A04, 0xC2D7FFA7, 0xB5D0CF31, 0x2CD99E8B, 0x5BDEAE1D,
    0x9B64C2B0, 0xEC63F226, 0x756AA39C, 0x026D930A, 0x9C0906A9, 0xEB0E363F, 0x72076785, 0x05005713,
    0x95BF4A82, 0xE2B87A14, 0x7BB12BAE, 0x0CB61B38, 0x92D28E9B, 0xE5D5BE0D, 0x7CDCEFB7, 0x0BDBDF21,
    0x86D3D2D4, 0xF1D4E242, 0x68DDB3F8, 0x1FDA836E, 0x81BE16CD, 0xF6B9265B, 0x6FB077E1, 0x18B74777,
    0x88085AE6, 0xFF0F6A70, 0x66063BCA, 0x11010B5C, 0x8F659EFF, 0xF862AE69, 0x616BFFD3, 0x166CCF45,
    0xA00AE278, 0xD70DD2EE, 0x4E048354, 0x3903B3C2, 0xA7672661, 0xD06016F7, 0x4969474D, 0x3E6E77DB,
    0xAED16A4A, 0xD9D65ADC, 0x40DF0B66, 0x37D83BF0, 0xA9BCAE53, 0xDEBB9EC5, 0x47B2CF7F, 0x30B5FFE9,
    0xBDBDF21C, 0xCABAC28A, 0x53B39330, 0x24B4A3A6, 0xBAD03605, 0xCDD70693, 0x54DE5729, 0x23D967BF,
    0xB3667A2E, 0xC4614AB8, 0x5D681B02, 0x2A6F2B94, 0xB40BBE37, 0xC30C8EA1, 0x5A05DF1B, 0x2D02EF8D,
];

/// One table step. The mask keeps the index in `0..256`, so the `get`
/// always hits; `unwrap_or` (rather than indexing or `unwrap`) keeps the
/// A1 no-panic guarantee visible in the code itself.
#[inline(always)]
fn crc_step(crc: u32, byte: u8) -> u32 {
    let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
    (crc >> 8) ^ CRC_TABLE.get(idx).copied().unwrap_or(0)
}

/// Incremental CRC-32 state.
///
/// # Examples
///
/// ```
/// use checkin_flash::Crc32;
///
/// let mut c = Crc32::new();
/// c.update(b"check-in");
/// let a = c.finish();
/// assert_eq!(a, checkin_flash::crc32(b"check-in"));
/// assert_ne!(a, checkin_flash::crc32(b"check-im"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (all-ones preset, per the standard).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = crc_step(crc, b);
        }
        self.state = crc;
    }

    /// Folds a little-endian `u32` into the state.
    pub fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    /// Folds a little-endian `u64` into the state.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Final checksum (state complemented, per the standard).
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Stable one-byte code for an [`OobKind`] in the canonical encoding.
fn oob_kind_code(kind: OobKind) -> u8 {
    match kind {
        OobKind::Journal => 0,
        OobKind::Data => 1,
        OobKind::Meta => 2,
        OobKind::GcCopy => 3,
    }
}

/// Appends the canonical encoding of a unit payload to `out`: fragment
/// count, then `(key, version, bytes)` per fragment, all little-endian.
pub fn encode_unit_into(unit: &UnitPayload, out: &mut Vec<u8>) {
    out.extend_from_slice(&(unit.fragments.len() as u32).to_le_bytes());
    for f in unit.fragments.iter() {
        out.extend_from_slice(&f.key.to_le_bytes());
        out.extend_from_slice(&f.version.to_le_bytes());
        out.extend_from_slice(&f.bytes.to_le_bytes());
    }
}

/// Appends the canonical encoding of an OOB record to `out`:
/// `(lpn, sequence, kind)`, little-endian.
pub fn encode_oob_into(entry: &OobEntry, out: &mut Vec<u8>) {
    out.extend_from_slice(&entry.lpn.to_le_bytes());
    out.extend_from_slice(&entry.sequence.to_le_bytes());
    out.push(oob_kind_code(entry.kind));
}

/// Checksum of a unit payload — streams the canonical encoding through
/// the CRC without allocating (the program/read hot path).
pub fn unit_checksum(unit: &UnitPayload) -> u32 {
    let mut c = Crc32::new();
    c.update_u32(unit.fragments.len() as u32);
    for f in unit.fragments.iter() {
        c.update_u64(f.key);
        c.update_u64(f.version);
        c.update_u32(f.bytes);
    }
    c.finish()
}

/// Checksum of an OOB record (allocation-free).
pub fn oob_checksum(entry: &OobEntry) -> u32 {
    let mut c = Crc32::new();
    c.update_u64(entry.lpn);
    c.update_u64(entry.sequence);
    c.update(&[oob_kind_code(entry.kind)]);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn table_is_the_polynomial_recurrence() {
        // Every literal entry must equal the bit-at-a-time CRC of its
        // index byte — the table is a cache of POLY, not a second truth.
        for (i, &entry) in CRC_TABLE.iter().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (POLY & mask);
            }
            assert_eq!(entry, crc, "CRC_TABLE[{i}]");
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let mut c = Crc32::new();
        c.update(b"12345");
        c.update(b"6789");
        assert_eq!(c.finish(), crc32(b"123456789"));
    }

    #[test]
    fn unit_checksum_matches_encoding() {
        let u = UnitPayload::single(7, 3, 512);
        let mut buf = Vec::new();
        encode_unit_into(&u, &mut buf);
        assert_eq!(unit_checksum(&u), crc32(&buf));
    }

    #[test]
    fn oob_checksum_matches_encoding() {
        let e = OobEntry {
            lpn: 42,
            sequence: 9,
            kind: OobKind::GcCopy,
        };
        let mut buf = Vec::new();
        encode_oob_into(&e, &mut buf);
        assert_eq!(oob_checksum(&e), crc32(&buf));
    }

    #[test]
    fn kind_codes_are_distinct() {
        let kinds = [
            OobKind::Journal,
            OobKind::Data,
            OobKind::Meta,
            OobKind::GcCopy,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in kinds.iter().skip(i + 1) {
                let (ea, eb) = (
                    OobEntry {
                        lpn: 1,
                        sequence: 1,
                        kind: *a,
                    },
                    OobEntry {
                        lpn: 1,
                        sequence: 1,
                        kind: *b,
                    },
                );
                assert_ne!(oob_checksum(&ea), oob_checksum(&eb));
            }
        }
    }
}
