//! The NAND flash array: state, rule enforcement, and operation timing.

use checkin_sim::{CounterSet, Resource, SimTime, Window};

use crate::content::PageContent;
use crate::error::FlashError;
use crate::geometry::{BlockId, FlashGeometry, Ppn};
use crate::timing::FlashTiming;

/// Lifecycle of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Erased,
    Programmed,
}

/// Per-block bookkeeping.
#[derive(Debug, Clone)]
struct BlockState {
    /// Next page index that may be programmed (NAND requires in-order
    /// programming within a block).
    write_cursor: u32,
    erase_count: u64,
    pages: Vec<PageState>,
}

impl BlockState {
    fn new(pages_per_block: u32) -> Self {
        BlockState {
            write_cursor: 0,
            erase_count: 0,
            pages: vec![PageState::Erased; pages_per_block as usize],
        }
    }
}

/// The simulated NAND array.
///
/// Owns physical page state (erased/programmed + content tags), enforces
/// out-of-place and in-order programming rules, accounts P/E cycles, and
/// models operation timing through per-die and per-channel FIFO resources.
///
/// # Examples
///
/// ```
/// use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, PageContent, Ppn};
/// use checkin_sim::SimTime;
///
/// let mut flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
/// let content = PageContent::empty(8);
/// let w = flash.program(Ppn(0), content, SimTime::ZERO)?;
/// assert!(w.finish > w.start);
/// assert!(flash.read(Ppn(0)).is_some());
/// # Ok::<(), checkin_flash::FlashError>(())
/// ```
#[derive(Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    blocks: Vec<BlockState>,
    store: Vec<Option<PageContent>>,
    dies: Vec<Resource>,
    channels: Vec<Resource>,
    counters: CounterSet,
    /// Maximum erase count across all blocks so far.
    max_erase: u64,
    total_erases: u64,
    /// Optional P/E cycle budget; erases beyond it fail.
    pe_cycle_limit: Option<u64>,
}

impl FlashArray {
    /// Creates an array with every page erased.
    ///
    /// # Panics
    ///
    /// Panics if `geometry` fails validation.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        geometry
            .validate()
            .unwrap_or_else(|e| panic!("invalid flash geometry: {e}"));
        let blocks = (0..geometry.total_blocks())
            .map(|_| BlockState::new(geometry.pages_per_block))
            .collect();
        FlashArray {
            geometry,
            timing,
            blocks,
            store: vec![None; geometry.total_pages() as usize],
            dies: (0..geometry.total_dies())
                .map(|_| Resource::new("die"))
                .collect(),
            channels: (0..geometry.channels as usize)
                .map(|_| Resource::new("channel"))
                .collect(),
            counters: CounterSet::new(),
            max_erase: 0,
            total_erases: 0,
            pe_cycle_limit: None,
        }
    }

    /// Sets an explicit P/E budget per block; further erases return
    /// [`FlashError::WornOut`].
    pub fn set_pe_cycle_limit(&mut self, limit: u64) {
        self.pe_cycle_limit = Some(limit);
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The array's timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    fn die_and_channel(&mut self, ppn: Ppn) -> (usize, usize) {
        let block = self.geometry.block_of(ppn);
        let die = self.geometry.die_of_block(block) as usize;
        let channel = self.geometry.block_position(block).channel as usize;
        (die, channel)
    }

    /// Reads one page: die array read (tR) then bus transfer. Returns the
    /// occupied time window. Content is available via [`FlashArray::read`];
    /// timing and content are split so that firmware can model cached reads.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] for addresses beyond the array.
    pub fn schedule_read(&mut self, ppn: Ppn, at: SimTime) -> Result<Window, FlashError> {
        self.check_range(ppn)?;
        let (die, channel) = self.die_and_channel(ppn);
        let array = self.dies[die].schedule(at, self.timing.t_read);
        let xfer = self.channels[channel].schedule(
            array.finish,
            self.timing.transfer_time(self.geometry.page_bytes as u64),
        );
        self.counters.incr("flash.read");
        Ok(Window {
            start: array.start,
            finish: xfer.finish,
        })
    }

    /// Returns the content of a programmed page, or `None` when erased.
    pub fn read(&self, ppn: Ppn) -> Option<&PageContent> {
        self.store.get(ppn.0 as usize).and_then(|c| c.as_ref())
    }

    /// Compatibility wrapper: content lookup ignoring time (reads are
    /// non-destructive; pass the completion time from
    /// [`FlashArray::schedule_read`] when timing matters).
    pub fn read_at(&self, ppn: Ppn, _at: SimTime) -> Option<&PageContent> {
        self.read(ppn)
    }

    /// Programs one page: bus transfer then array program (tPROG).
    ///
    /// # Errors
    ///
    /// * [`FlashError::ProgramDirtyPage`] if the page is not erased;
    /// * [`FlashError::ProgramOutOfOrder`] if an earlier page of the block
    ///   is still erased;
    /// * [`FlashError::OutOfRange`] for bad addresses.
    pub fn program(
        &mut self,
        ppn: Ppn,
        content: PageContent,
        at: SimTime,
    ) -> Result<Window, FlashError> {
        self.check_range(ppn)?;
        let block = self.geometry.block_of(ppn);
        let page = self.geometry.page_in_block(ppn);
        let state = &mut self.blocks[block.0 as usize];
        match state.pages[page as usize] {
            PageState::Programmed => return Err(FlashError::ProgramDirtyPage(ppn)),
            PageState::Erased => {}
        }
        if page != state.write_cursor {
            return Err(FlashError::ProgramOutOfOrder {
                requested: ppn,
                expected_page: state.write_cursor,
            });
        }
        state.pages[page as usize] = PageState::Programmed;
        state.write_cursor += 1;

        let (die, channel) = self.die_and_channel(ppn);
        let xfer = self.channels[channel].schedule(
            at,
            self.timing.transfer_time(self.geometry.page_bytes as u64),
        );
        let array = self.dies[die].schedule(xfer.finish, self.timing.t_program);
        self.store[ppn.0 as usize] = Some(content);
        self.counters.incr("flash.program");
        Ok(Window {
            start: xfer.start,
            finish: array.finish,
        })
    }

    /// Erases a block, resetting every page to the erased state.
    ///
    /// # Errors
    ///
    /// * [`FlashError::BlockOutOfRange`] for bad block ids;
    /// * [`FlashError::WornOut`] when a P/E budget is set and exhausted.
    pub fn erase(&mut self, block: BlockId, at: SimTime) -> Result<Window, FlashError> {
        if block.0 >= self.geometry.total_blocks() {
            return Err(FlashError::BlockOutOfRange(block));
        }
        let limit = self.pe_cycle_limit;
        let state = &mut self.blocks[block.0 as usize];
        if let Some(limit) = limit {
            if state.erase_count >= limit {
                return Err(FlashError::WornOut(block));
            }
        }
        state.erase_count += 1;
        state.write_cursor = 0;
        for p in &mut state.pages {
            *p = PageState::Erased;
        }
        let erase_count = state.erase_count;
        let first = self.geometry.first_ppn(block);
        for off in 0..self.geometry.pages_per_block as u64 {
            self.store[(first.0 + off) as usize] = None;
        }
        let die = self.geometry.die_of_block(block) as usize;
        let window = self.dies[die].schedule(at, self.timing.t_erase);
        self.counters.incr("flash.erase");
        self.total_erases += 1;
        self.max_erase = self.max_erase.max(erase_count);
        Ok(window)
    }

    /// True when `ppn` holds programmed data.
    pub fn is_programmed(&self, ppn: Ppn) -> bool {
        self.store
            .get(ppn.0 as usize)
            .map(|c| c.is_some())
            .unwrap_or(false)
    }

    /// Erase count of one block.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.blocks
            .get(block.0 as usize)
            .map(|b| b.erase_count)
            .unwrap_or(0)
    }

    /// Sum of erase counts over all blocks.
    pub fn total_erases(&self) -> u64 {
        self.total_erases
    }

    /// Highest per-block erase count (wear ceiling).
    pub fn max_erase_count(&self) -> u64 {
        self.max_erase
    }

    /// Mean erase count across blocks.
    pub fn mean_erase_count(&self) -> f64 {
        self.total_erases as f64 / self.blocks.len() as f64
    }

    /// Operation counters (`flash.read`, `flash.program`, `flash.erase`).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Earliest instant at which the die owning `block` is free — used by
    /// the deallocator to find idle windows for background GC.
    pub fn die_available_at(&self, block: BlockId) -> SimTime {
        let die = self.geometry.die_of_block(block) as usize;
        self.dies[die].available_at()
    }

    /// Total busy time across all dies (for utilization reports).
    pub fn die_busy_time(&self) -> checkin_sim::SimDuration {
        self.dies.iter().map(Resource::busy_time).sum()
    }

    fn check_range(&self, ppn: Ppn) -> Result<(), FlashError> {
        if ppn.0 >= self.geometry.total_pages() {
            Err(FlashError::OutOfRange(ppn))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::UnitPayload;

    fn array() -> FlashArray {
        FlashArray::new(FlashGeometry::small(), FlashTiming::mlc())
    }

    fn page_with(key: u64, version: u64) -> PageContent {
        let mut c = PageContent::empty(8);
        c.units[0] = Some(UnitPayload::single(key, version, 512));
        c
    }

    #[test]
    fn program_then_read_roundtrips_content() {
        let mut f = array();
        f.program(Ppn(0), page_with(7, 1), SimTime::ZERO).unwrap();
        let c = f.read(Ppn(0)).unwrap();
        assert_eq!(c.units[0].as_ref().unwrap().fragments[0].key, 7);
        assert!(f.is_programmed(Ppn(0)));
        assert!(!f.is_programmed(Ppn(1)));
    }

    #[test]
    fn double_program_rejected() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        let err = f
            .program(Ppn(0), page_with(1, 2), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramDirtyPage(Ppn(0)));
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut f = array();
        let err = f
            .program(Ppn(2), page_with(1, 1), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FlashError::ProgramOutOfOrder { .. }));
    }

    #[test]
    fn erase_resets_block_for_reprogramming() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        assert!(f.read(Ppn(0)).is_none());
        assert_eq!(f.erase_count(BlockId(0)), 1);
        // After erase, page 0 can be programmed again.
        f.program(Ppn(0), page_with(1, 2), SimTime::ZERO).unwrap();
    }

    #[test]
    fn counters_track_operations() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        f.schedule_read(Ppn(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        assert_eq!(f.counters().get("flash.program"), 1);
        assert_eq!(f.counters().get("flash.read"), 1);
        assert_eq!(f.counters().get("flash.erase"), 1);
        assert_eq!(f.total_erases(), 1);
    }

    #[test]
    fn program_timing_includes_bus_and_array() {
        let mut f = array();
        let w = f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        let expected = f.timing().transfer_time(4096) + f.timing().t_program;
        assert_eq!(w.finish.duration_since(w.start), expected);
    }

    #[test]
    fn same_die_ops_serialize() {
        let mut f = array();
        // Ppn(0) and Ppn(1) are in block 0: same die.
        let w1 = f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        let w2 = f.program(Ppn(1), page_with(2, 1), SimTime::ZERO).unwrap();
        assert!(w2.finish > w1.finish);
    }

    #[test]
    fn different_channels_overlap() {
        let mut f = array();
        let g = *f.geometry();
        // Block 0 is channel 0; block 1 is channel 1.
        let p0 = g.first_ppn(BlockId(0));
        let p1 = g.first_ppn(BlockId(1));
        let w0 = f.program(p0, page_with(1, 1), SimTime::ZERO).unwrap();
        let w1 = f.program(p1, page_with(2, 1), SimTime::ZERO).unwrap();
        // Fully parallel: both start at zero.
        assert_eq!(w0.start, w1.start);
        assert_eq!(w0.finish, w1.finish);
    }

    #[test]
    fn out_of_range_detected() {
        let mut f = array();
        let total = f.geometry().total_pages();
        assert!(matches!(
            f.schedule_read(Ppn(total), SimTime::ZERO),
            Err(FlashError::OutOfRange(_))
        ));
        assert!(matches!(
            f.erase(BlockId(f.geometry().total_blocks()), SimTime::ZERO),
            Err(FlashError::BlockOutOfRange(_))
        ));
    }

    #[test]
    fn pe_limit_enforced() {
        let mut f = array();
        f.set_pe_cycle_limit(2);
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        assert_eq!(
            f.erase(BlockId(0), SimTime::ZERO).unwrap_err(),
            FlashError::WornOut(BlockId(0))
        );
        assert_eq!(f.max_erase_count(), 2);
    }

    #[test]
    fn wear_statistics() {
        let mut f = array();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(1), SimTime::ZERO).unwrap();
        assert_eq!(f.total_erases(), 3);
        assert_eq!(f.max_erase_count(), 2);
        assert!(f.mean_erase_count() > 0.0);
    }
}
