//! The NAND flash array: state, rule enforcement, and operation timing.

use checkin_sim::{CounterSet, Resource, SimTime, TraceEvent, TraceLayer, Tracer, Window};

use crate::content::PageContent;
use crate::error::FlashError;
use crate::fault::{FaultOp, FaultPhase, FaultPlan, TickOutcome};
use crate::geometry::{BlockId, FlashGeometry, Ppn};
use crate::phase::OpPhase;
use crate::timing::FlashTiming;

/// Lifecycle of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Erased,
    Programmed,
}

/// Per-block bookkeeping.
#[derive(Debug, Clone)]
struct BlockState {
    /// Next page index that may be programmed (NAND requires in-order
    /// programming within a block).
    write_cursor: u32,
    erase_count: u64,
    pages: Vec<PageState>,
}

impl BlockState {
    fn new(pages_per_block: u32) -> Self {
        BlockState {
            write_cursor: 0,
            erase_count: 0,
            pages: vec![PageState::Erased; pages_per_block as usize],
        }
    }
}

/// The simulated NAND array.
///
/// Owns physical page state (erased/programmed + content tags), enforces
/// out-of-place and in-order programming rules, accounts P/E cycles, and
/// models operation timing through per-die and per-channel FIFO resources.
///
/// # Examples
///
/// ```
/// use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, PageContent, Ppn};
/// use checkin_sim::SimTime;
///
/// let mut flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
/// let content = PageContent::empty(8);
/// let w = flash.program(Ppn(0), content, SimTime::ZERO)?;
/// assert!(w.finish > w.start);
/// assert!(flash.read(Ppn(0)).is_some());
/// # Ok::<(), checkin_flash::FlashError>(())
/// ```
#[derive(Debug)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    blocks: Vec<BlockState>,
    store: Vec<Option<PageContent>>,
    dies: Vec<Resource>,
    channels: Vec<Resource>,
    counters: CounterSet,
    /// Maximum erase count across all blocks so far.
    max_erase: u64,
    total_erases: u64,
    /// Optional P/E cycle budget; erases beyond it fail.
    pe_cycle_limit: Option<u64>,
    /// Armed fault-injection schedule, if any.
    faults: Option<FaultPlan>,
    /// Firmware activity label for fault-trace targeting.
    fault_phase: FaultPhase,
    /// Firmware activity label for per-phase op attribution: every
    /// program/read/erase is counted under both the plain total and the
    /// current phase's key at the same site, so phase keys always sum
    /// to the totals.
    op_phase: OpPhase,
    /// Structured trace sink (no-op unless enabled).
    tracer: Tracer,
    /// True after a power cut (scheduled or manual): every timed
    /// operation fails with [`FlashError::PowerLoss`] until
    /// [`FlashArray::power_on`].
    powered_off: bool,
    /// Blocks with grown permanent defects.
    bad_blocks: Vec<bool>,
    /// Cleared [`PageContent`] shells harvested by [`FlashArray::erase`],
    /// handed back out by [`FlashArray::spare_page`] so the firmware's
    /// steady-state program path reuses buffers instead of allocating.
    spare_pages: Vec<PageContent>,
}

impl FlashArray {
    /// Creates an array with every page erased.
    ///
    /// # Panics
    ///
    /// Panics if `geometry` fails validation.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        geometry
            .validate()
            .unwrap_or_else(|e| panic!("invalid flash geometry: {e}"));
        let blocks = (0..geometry.total_blocks())
            .map(|_| BlockState::new(geometry.pages_per_block))
            .collect();
        FlashArray {
            geometry,
            timing,
            blocks,
            store: vec![None; geometry.total_pages() as usize],
            dies: (0..geometry.total_dies())
                .map(|_| Resource::new("die"))
                .collect(),
            channels: (0..geometry.channels as usize)
                .map(|_| Resource::new("channel"))
                .collect(),
            counters: CounterSet::new(),
            max_erase: 0,
            total_erases: 0,
            pe_cycle_limit: None,
            faults: None,
            fault_phase: FaultPhase::Normal,
            op_phase: OpPhase::Run,
            tracer: Tracer::disabled(),
            powered_off: false,
            bad_blocks: vec![false; geometry.total_blocks() as usize],
            spare_pages: Vec::new(),
        }
    }

    /// Number of recycled page-content shells currently pooled (tests
    /// use this to confirm steady state has been reached).
    pub fn spare_page_count(&self) -> usize {
        self.spare_pages.len()
    }

    /// Hands out a cleared page-content shell with `units` empty slots,
    /// reusing a buffer harvested from an earlier erase when one is
    /// available. In steady state (programs balanced by GC erases) this
    /// makes page programming allocation-free.
    pub fn spare_page(&mut self, units: usize) -> PageContent {
        match self.spare_pages.pop() {
            Some(mut c) => {
                c.units.resize(units, None);
                c
            }
            None => PageContent::empty(units),
        }
    }

    /// Arms a fault-injection schedule. Subsequent operations consume
    /// fault-clock ticks and may fail per the plan. Replaces any
    /// previously armed plan.
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// True when a fault plan is armed (layers above use this to gate
    /// crash-consistency bookkeeping that normal runs don't need).
    pub fn faults_armed(&self) -> bool {
        self.faults.is_some()
    }

    /// The armed fault plan, if any (fault clock, recorded trace).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Sets the firmware activity label recorded with each fault-clock
    /// tick and returns the previous one (so callers can nest/restore).
    pub fn set_fault_phase(&mut self, phase: FaultPhase) -> FaultPhase {
        std::mem::replace(&mut self.fault_phase, phase)
    }

    /// Sets the firmware activity label under which subsequent flash
    /// operations are attributed and returns the previous one (so
    /// callers can nest/restore, e.g. GC triggered inside a checkpoint
    /// copy).
    pub fn set_op_phase(&mut self, phase: OpPhase) -> OpPhase {
        std::mem::replace(&mut self.op_phase, phase)
    }

    /// The current op-attribution phase.
    pub fn op_phase(&self) -> OpPhase {
        self.op_phase
    }

    /// Installs a trace sink; pass [`Tracer::disabled`] to turn tracing
    /// off again.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// True after a power cut; timed operations fail until
    /// [`FlashArray::power_on`].
    pub fn powered_off(&self) -> bool {
        self.powered_off
    }

    /// Cuts power immediately (tests and harnesses; scheduled cuts use
    /// [`FaultConfig::power_cut_after`](crate::FaultConfig::power_cut_after)).
    pub fn cut_power(&mut self) {
        if !self.powered_off {
            self.powered_off = true;
            self.counters.incr("flash.power_cuts");
        }
    }

    /// Restores power after a cut so recovery can run. The fault plan
    /// stays armed (a fired cut is one-shot and will not re-fire).
    pub fn power_on(&mut self) {
        self.powered_off = false;
    }

    /// A logical firmware step forwarded from an upper layer (buffered
    /// write admission, remap, deallocate). Consumes one fault-clock tick
    /// so power cuts can land *between* metadata mutations, not only at
    /// media operations.
    ///
    /// # Errors
    ///
    /// [`FlashError::PowerLoss`] when the cut fires on this tick or the
    /// device is already off.
    pub fn logical_tick(&mut self) -> Result<(), FlashError> {
        self.fault_gate(FaultOp::Logical, None, None)
    }

    /// Next in-order page index of `block` (0 = fully erased). Recovery
    /// uses the write cursors to reconstruct block occupancy after a cut.
    pub fn write_cursor(&self, block: BlockId) -> u32 {
        self.blocks
            .get(block.0 as usize)
            .map(|b| b.write_cursor)
            .unwrap_or(0)
    }

    /// True when `block` has a grown permanent defect.
    pub fn is_bad_block(&self, block: BlockId) -> bool {
        self.bad_blocks
            .get(block.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Runs the shared failure checks for one operation attempt: power
    /// state, one fault-clock tick, and the plan's media-failure draws.
    /// Must be called *before* the operation mutates anything.
    fn fault_gate(
        &mut self,
        op: FaultOp,
        ppn: Option<Ppn>,
        block: Option<BlockId>,
    ) -> Result<(), FlashError> {
        if self.powered_off {
            return Err(FlashError::PowerLoss);
        }
        let phase = self.fault_phase;
        let Some(plan) = self.faults.as_mut() else {
            return Ok(());
        };
        let outcome = plan.on_tick(op, phase);
        // Retention decay rides the fault clock: every tick is a chance
        // for a latent bit-flip somewhere in already-programmed data. At
        // the default zero rates these draws consume no RNG state, so
        // benign plans replay byte-identically.
        let (rot_data, rot_oob) = plan.decay_draws();
        if rot_data {
            self.apply_bit_rot(true);
        }
        if rot_oob {
            self.apply_bit_rot(false);
        }
        match outcome {
            TickOutcome::Pass => Ok(()),
            TickOutcome::PowerCut => {
                self.powered_off = true;
                self.counters.incr("flash.power_cuts");
                Err(FlashError::PowerLoss)
            }
            TickOutcome::Transient => {
                // Logical ticks draw no media faults, and a media tick
                // without its address cannot name a victim; both are
                // impossible by construction, and the fault injector
                // must never panic itself — degrade to a clean pass.
                let err = match (op, ppn, block) {
                    (FaultOp::Read, Some(p), _) => FlashError::TransientRead(p),
                    (FaultOp::Program, Some(p), _) => FlashError::TransientProgram(p),
                    (FaultOp::Erase, _, Some(b)) => FlashError::TransientErase(b),
                    _ => return Ok(()),
                };
                self.counters.incr("flash.transient_faults");
                Err(err)
            }
            TickOutcome::GrownBad => {
                // Grown-bad outcomes only occur for program/erase, which
                // always carry a block; same degrade-to-pass policy.
                let Some(b) = block else {
                    return Ok(());
                };
                if let Some(slot) = self.bad_blocks.get_mut(b.0 as usize) {
                    *slot = true;
                }
                self.counters.incr("flash.grown_bad_blocks");
                Err(FlashError::GrownBadBlock(b))
            }
        }
    }

    /// A seeded draw in `[0, n)` from the armed plan (0 without one).
    fn fault_draw(&mut self, n: u64) -> u64 {
        self.faults.as_mut().map_or(0, |p| p.draw_below(n))
    }

    /// Flips one seeded bit in a stored data unit (`data == true`) or OOB
    /// record of some programmed page, *without* resealing its checksums:
    /// the damage stays latent until a verified read or scrub visits it.
    /// The victim is found by probing forward from a drawn start page.
    fn apply_bit_rot(&mut self, data: bool) {
        let total = self.geometry.total_pages();
        let start = self.fault_draw(total);
        let mut victim = None;
        for off in 0..total {
            let idx = ((start + off) % total) as usize;
            if matches!(self.store.get(idx), Some(Some(_))) {
                victim = Some(idx);
                break;
            }
        }
        let Some(idx) = victim else {
            return; // nothing programmed yet; the draw still happened
        };
        let mask = 1u64 << self.fault_draw(48);
        let page = |store: &[Option<PageContent>]| {
            store
                .get(idx)
                .and_then(|p| p.as_ref())
                .map(|c| (c.units.len(), c.oob.len()))
        };
        if data {
            let units_len = page(&self.store).map_or(0, |(u, _)| u);
            if units_len == 0 {
                return;
            }
            let start_u = self.fault_draw(units_len as u64) as usize;
            if let Some(c) = self.store.get_mut(idx).and_then(|p| p.as_mut()) {
                for off in 0..units_len {
                    let i = (start_u + off) % units_len;
                    if c.units.get(i).is_some_and(|u| u.is_some()) {
                        c.flip_unit_bits(i, mask);
                        self.counters.incr("flash.bit_rot_data");
                        return;
                    }
                }
            }
        } else {
            let oob_len = page(&self.store).map_or(0, |(_, o)| o);
            if oob_len == 0 {
                return;
            }
            let i = self.fault_draw(oob_len as u64) as usize;
            if let Some(c) = self.store.get_mut(idx).and_then(|p| p.as_mut()) {
                c.flip_oob_bits(i, mask);
                self.counters.incr("flash.bit_rot_oob");
            }
        }
    }

    /// Sets an explicit P/E budget per block; further erases return
    /// [`FlashError::WornOut`].
    pub fn set_pe_cycle_limit(&mut self, limit: u64) {
        self.pe_cycle_limit = Some(limit);
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The array's timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    fn die_and_channel(&mut self, ppn: Ppn) -> (usize, usize) {
        let block = self.geometry.block_of(ppn);
        let die = self.geometry.die_of_block(block) as usize;
        let channel = self.geometry.block_position(block).channel as usize;
        (die, channel)
    }

    /// Reads one page: die array read (tR) then bus transfer. Returns the
    /// occupied time window. Content is available via [`FlashArray::read`];
    /// timing and content are split so that firmware can model cached reads.
    ///
    /// # Errors
    ///
    /// Returns [`FlashError::OutOfRange`] for addresses beyond the array.
    pub fn schedule_read(&mut self, ppn: Ppn, at: SimTime) -> Result<Window, FlashError> {
        self.check_range(ppn)?;
        self.fault_gate(FaultOp::Read, Some(ppn), None)?;
        let (die, channel) = self.die_and_channel(ppn);
        // check_range guarantees both indices; a geometry that disagrees
        // with the queue vectors surfaces as a typed error, not a panic.
        let t_read = self.timing.t_read;
        let Some(die_queue) = self.dies.get_mut(die) else {
            return Err(FlashError::OutOfRange(ppn));
        };
        let array = die_queue.schedule(at, t_read);
        let xfer_time = self.timing.transfer_time(self.geometry.page_bytes as u64);
        let Some(channel_queue) = self.channels.get_mut(channel) else {
            return Err(FlashError::OutOfRange(ppn));
        };
        let xfer = channel_queue.schedule(array.finish, xfer_time);
        self.counters.incr("flash.read");
        self.counters.incr(self.op_phase.read_key());
        let phase = self.op_phase;
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Flash, "read")
                .tag(phase.label())
                .with("ppn", ppn.0)
        });
        Ok(Window {
            start: array.start,
            finish: xfer.finish,
        })
    }

    /// Returns the content of a programmed page, or `None` when erased.
    pub fn read(&self, ppn: Ppn) -> Option<&PageContent> {
        self.store.get(ppn.0 as usize).and_then(|c| c.as_ref())
    }

    /// Compatibility wrapper: content lookup ignoring time (reads are
    /// non-destructive; pass the completion time from
    /// [`FlashArray::schedule_read`] when timing matters).
    pub fn read_at(&self, ppn: Ppn, _at: SimTime) -> Option<&PageContent> {
        self.read(ppn)
    }

    /// Programs one page: bus transfer then array program (tPROG).
    ///
    /// # Errors
    ///
    /// * [`FlashError::ProgramDirtyPage`] if the page is not erased;
    /// * [`FlashError::ProgramOutOfOrder`] if an earlier page of the block
    ///   is still erased;
    /// * [`FlashError::OutOfRange`] for bad addresses.
    pub fn program(
        &mut self,
        ppn: Ppn,
        mut content: PageContent,
        at: SimTime,
    ) -> Result<Window, FlashError> {
        self.check_range(ppn)?;
        let block = self.geometry.block_of(ppn);
        let page = self.geometry.page_in_block(ppn);
        if self.bad_blocks[block.0 as usize] {
            return Err(FlashError::GrownBadBlock(block));
        }
        {
            let state = &self.blocks[block.0 as usize];
            match state.pages[page as usize] {
                PageState::Programmed => return Err(FlashError::ProgramDirtyPage(ppn)),
                PageState::Erased => {}
            }
            if page != state.write_cursor {
                return Err(FlashError::ProgramOutOfOrder {
                    requested: ppn,
                    expected_page: state.write_cursor,
                });
            }
        }
        // Every failure path must run before any mutation so that a cut
        // or media error leaves the array exactly as it was — except a
        // power cut with torn writes enabled, which deliberately leaves
        // the partially-programmed wreckage on the media.
        let was_on = !self.powered_off;
        if let Err(e) = self.fault_gate(FaultOp::Program, Some(ppn), Some(block)) {
            if was_on
                && matches!(e, FlashError::PowerLoss)
                && self
                    .faults
                    .as_ref()
                    .is_some_and(FaultPlan::torn_writes_enabled)
            {
                self.torn_program(ppn, block, page, content, at);
            }
            return Err(e);
        }
        // Seal per-unit and per-OOB checksums at program time; injectors
        // mutate tags after this point without resealing.
        content.seal();
        if self.faults.as_mut().is_some_and(FaultPlan::misdirect_draw) {
            // Misdirected write: the program "succeeds", but what landed
            // no longer matches the checksums sealed for it.
            let mask = 1u64 << self.fault_draw(48);
            for i in 0..content.units.len() {
                if content.units[i].is_some() {
                    content.flip_unit_bits(i, mask);
                }
            }
            for i in 0..content.oob.len() {
                content.flip_oob_bits(i, mask);
            }
            self.counters.incr("flash.misdirected_programs");
        }
        let state = &mut self.blocks[block.0 as usize];
        state.pages[page as usize] = PageState::Programmed;
        state.write_cursor += 1;

        let (die, channel) = self.die_and_channel(ppn);
        let xfer = self.channels[channel].schedule(
            at,
            self.timing.transfer_time(self.geometry.page_bytes as u64),
        );
        let array = self.dies[die].schedule(xfer.finish, self.timing.t_program);
        self.store[ppn.0 as usize] = Some(content);
        self.counters.incr("flash.program");
        self.counters.incr(self.op_phase.program_key());
        let phase = self.op_phase;
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Flash, "program")
                .tag(phase.label())
                .with("ppn", ppn.0)
                .with("block", block.0)
        });
        Ok(Window {
            start: xfer.start,
            finish: array.finish,
        })
    }

    /// A power cut landed mid-program with torn writes enabled: commit a
    /// *torn page* — checksums sealed for the intended content, then a
    /// seeded boundary drawn and everything past it bit-flipped (plus all
    /// OOB records, which real NAND writes last). The page is marked
    /// programmed and the cursor advances, exactly what a post-crash OOB
    /// scan will find on the media.
    fn torn_program(
        &mut self,
        ppn: Ppn,
        block: BlockId,
        page: u32,
        mut content: PageContent,
        at: SimTime,
    ) {
        content.seal();
        let units = content.units.len() as u64;
        let intact = self.fault_draw(units + 1);
        if intact < units {
            let mask = 1u64 << self.fault_draw(48);
            for i in (intact as usize)..content.units.len() {
                if content.units[i].is_some() {
                    content.flip_unit_bits(i, mask);
                }
            }
            for i in 0..content.oob.len() {
                content.flip_oob_bits(i, mask);
            }
        }
        let state = &mut self.blocks[block.0 as usize];
        state.pages[page as usize] = PageState::Programmed;
        state.write_cursor += 1;
        self.store[ppn.0 as usize] = Some(content);
        self.counters.incr("flash.torn_writes");
        let phase = self.op_phase;
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Flash, "torn_program")
                .tag(phase.label())
                .with("ppn", ppn.0)
                .with("block", block.0)
        });
    }

    /// Erases a block, resetting every page to the erased state.
    ///
    /// # Errors
    ///
    /// * [`FlashError::BlockOutOfRange`] for bad block ids;
    /// * [`FlashError::WornOut`] when a P/E budget is set and exhausted.
    pub fn erase(&mut self, block: BlockId, at: SimTime) -> Result<Window, FlashError> {
        if block.0 >= self.geometry.total_blocks() {
            return Err(FlashError::BlockOutOfRange(block));
        }
        if self.bad_blocks[block.0 as usize] {
            return Err(FlashError::GrownBadBlock(block));
        }
        if let Some(limit) = self.pe_cycle_limit {
            if self.blocks[block.0 as usize].erase_count >= limit {
                return Err(FlashError::WornOut(block));
            }
        }
        // As in `program`, fail before mutating: a cut or injected erase
        // failure must leave the block's pages and counters untouched.
        self.fault_gate(FaultOp::Erase, None, Some(block))?;
        let state = &mut self.blocks[block.0 as usize];
        state.erase_count += 1;
        state.write_cursor = 0;
        for p in &mut state.pages {
            *p = PageState::Erased;
        }
        let erase_count = state.erase_count;
        // Programs outpace erases between checkpoints (journal blocks are
        // only recycled at zone retirement), so keep enough shells to cover
        // a full inter-checkpoint window of page programs.
        let pool_cap = (self.geometry.pages_per_block as usize * 16).min(4096);
        let first = self.geometry.first_ppn(block);
        for off in 0..self.geometry.pages_per_block as u64 {
            if let Some(mut c) = self.store[(first.0 + off) as usize].take() {
                if self.spare_pages.len() < pool_cap {
                    c.units.clear();
                    c.clear_for_reuse();
                    self.spare_pages.push(c);
                }
            }
        }
        let die = self.geometry.die_of_block(block) as usize;
        let window = self.dies[die].schedule(at, self.timing.t_erase);
        self.counters.incr("flash.erase");
        self.counters.incr(self.op_phase.erase_key());
        let phase = self.op_phase;
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Flash, "erase")
                .tag(phase.label())
                .with("block", block.0)
                .with("pe_count", erase_count)
        });
        self.total_erases += 1;
        self.max_erase = self.max_erase.max(erase_count);
        Ok(window)
    }

    /// Test-only sabotage: flips bits in the stored unit at
    /// (`ppn`, `offset`) *without* resealing its checksum — a targeted,
    /// deterministic stand-in for the seeded bit-rot injector. Returns
    /// true when a stored unit was hit. Harnesses use this to place
    /// corruption exactly where a scenario needs it; never call it
    /// anywhere else.
    pub fn sabotage_corrupt_unit(&mut self, ppn: Ppn, offset: u32, mask: u64) -> bool {
        match self.store.get_mut(ppn.0 as usize) {
            Some(Some(c)) if matches!(c.units.get(offset as usize), Some(Some(_))) => {
                c.flip_unit_bits(offset as usize, mask);
                true
            }
            _ => false,
        }
    }

    /// Test-only sabotage: flips bits of the stored OOB record at
    /// (`ppn`, `index`) without resealing (see
    /// [`FlashArray::sabotage_corrupt_unit`]).
    pub fn sabotage_corrupt_oob(&mut self, ppn: Ppn, index: u32, mask: u64) -> bool {
        match self.store.get_mut(ppn.0 as usize) {
            Some(Some(c)) if (index as usize) < c.oob.len() => {
                c.flip_oob_bits(index as usize, mask);
                true
            }
            _ => false,
        }
    }

    /// True when `ppn` holds programmed data.
    pub fn is_programmed(&self, ppn: Ppn) -> bool {
        self.store
            .get(ppn.0 as usize)
            .map(|c| c.is_some())
            .unwrap_or(false)
    }

    /// Erase count of one block.
    pub fn erase_count(&self, block: BlockId) -> u64 {
        self.blocks
            .get(block.0 as usize)
            .map(|b| b.erase_count)
            .unwrap_or(0)
    }

    /// Sum of erase counts over all blocks.
    pub fn total_erases(&self) -> u64 {
        self.total_erases
    }

    /// Highest per-block erase count (wear ceiling).
    pub fn max_erase_count(&self) -> u64 {
        self.max_erase
    }

    /// Mean erase count across **in-service** blocks. Grown-bad (retired)
    /// blocks stop accumulating erases the moment they leave service, so
    /// counting them in the denominator would understate the wear of the
    /// blocks still doing the work. Zero when every block is bad.
    pub fn mean_erase_count(&self) -> f64 {
        let mut erases = 0u64;
        let mut in_service = 0u64;
        for (i, b) in self.blocks.iter().enumerate() {
            if !self.bad_blocks[i] {
                erases += b.erase_count;
                in_service += 1;
            }
        }
        if in_service == 0 {
            return 0.0;
        }
        erases as f64 / in_service as f64
    }

    /// Operation counters (`flash.read`, `flash.program`, `flash.erase`).
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Earliest instant at which the die owning `block` is free — used by
    /// the deallocator to find idle windows for background GC.
    pub fn die_available_at(&self, block: BlockId) -> SimTime {
        let die = self.geometry.die_of_block(block) as usize;
        self.dies[die].available_at()
    }

    /// Total busy time across all dies (for utilization reports).
    pub fn die_busy_time(&self) -> checkin_sim::SimDuration {
        self.dies.iter().map(Resource::busy_time).sum()
    }

    fn check_range(&self, ppn: Ppn) -> Result<(), FlashError> {
        if ppn.0 >= self.geometry.total_pages() {
            Err(FlashError::OutOfRange(ppn))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::UnitPayload;

    fn array() -> FlashArray {
        FlashArray::new(FlashGeometry::small(), FlashTiming::mlc())
    }

    fn page_with(key: u64, version: u64) -> PageContent {
        let mut c = PageContent::empty(8);
        c.units[0] = Some(UnitPayload::single(key, version, 512));
        c
    }

    #[test]
    fn program_then_read_roundtrips_content() {
        let mut f = array();
        f.program(Ppn(0), page_with(7, 1), SimTime::ZERO).unwrap();
        let c = f.read(Ppn(0)).unwrap();
        assert_eq!(c.units[0].as_ref().unwrap().fragments[0].key, 7);
        assert!(f.is_programmed(Ppn(0)));
        assert!(!f.is_programmed(Ppn(1)));
    }

    #[test]
    fn double_program_rejected() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        let err = f
            .program(Ppn(0), page_with(1, 2), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, FlashError::ProgramDirtyPage(Ppn(0)));
    }

    #[test]
    fn out_of_order_program_rejected() {
        let mut f = array();
        let err = f
            .program(Ppn(2), page_with(1, 1), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FlashError::ProgramOutOfOrder { .. }));
    }

    #[test]
    fn erase_resets_block_for_reprogramming() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        assert!(f.read(Ppn(0)).is_none());
        assert_eq!(f.erase_count(BlockId(0)), 1);
        // After erase, page 0 can be programmed again.
        f.program(Ppn(0), page_with(1, 2), SimTime::ZERO).unwrap();
    }

    #[test]
    fn counters_track_operations() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        f.schedule_read(Ppn(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        assert_eq!(f.counters().get("flash.program"), 1);
        assert_eq!(f.counters().get("flash.read"), 1);
        assert_eq!(f.counters().get("flash.erase"), 1);
        assert_eq!(f.total_erases(), 1);
    }

    #[test]
    fn program_timing_includes_bus_and_array() {
        let mut f = array();
        let w = f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        let expected = f.timing().transfer_time(4096) + f.timing().t_program;
        assert_eq!(w.finish.duration_since(w.start), expected);
    }

    #[test]
    fn same_die_ops_serialize() {
        let mut f = array();
        // Ppn(0) and Ppn(1) are in block 0: same die.
        let w1 = f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        let w2 = f.program(Ppn(1), page_with(2, 1), SimTime::ZERO).unwrap();
        assert!(w2.finish > w1.finish);
    }

    #[test]
    fn different_channels_overlap() {
        let mut f = array();
        let g = *f.geometry();
        // Block 0 is channel 0; block 1 is channel 1.
        let p0 = g.first_ppn(BlockId(0));
        let p1 = g.first_ppn(BlockId(1));
        let w0 = f.program(p0, page_with(1, 1), SimTime::ZERO).unwrap();
        let w1 = f.program(p1, page_with(2, 1), SimTime::ZERO).unwrap();
        // Fully parallel: both start at zero.
        assert_eq!(w0.start, w1.start);
        assert_eq!(w0.finish, w1.finish);
    }

    #[test]
    fn out_of_range_detected() {
        let mut f = array();
        let total = f.geometry().total_pages();
        assert!(matches!(
            f.schedule_read(Ppn(total), SimTime::ZERO),
            Err(FlashError::OutOfRange(_))
        ));
        assert!(matches!(
            f.erase(BlockId(f.geometry().total_blocks()), SimTime::ZERO),
            Err(FlashError::BlockOutOfRange(_))
        ));
    }

    #[test]
    fn pe_limit_enforced() {
        let mut f = array();
        f.set_pe_cycle_limit(2);
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        assert_eq!(
            f.erase(BlockId(0), SimTime::ZERO).unwrap_err(),
            FlashError::WornOut(BlockId(0))
        );
        assert_eq!(f.max_erase_count(), 2);
    }

    /// A retired (grown-bad) block stops wearing; the mean must describe
    /// the blocks still in service, not dilute itself over dead ones.
    #[test]
    fn mean_erase_count_excludes_retired_blocks() {
        let mut f = array();
        let total = f.geometry().total_blocks();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(1), SimTime::ZERO).unwrap();
        f.erase(BlockId(1), SimTime::ZERO).unwrap();
        let healthy = f.mean_erase_count();
        assert!((healthy - 4.0 / total as f64).abs() < 1e-12);

        // Block 0 develops a grown defect: its two erases and its slot in
        // the denominator both leave the mean.
        f.bad_blocks[0] = true;
        let after = f.mean_erase_count();
        assert!(
            (after - 2.0 / (total - 1) as f64).abs() < 1e-12,
            "mean {after} must cover only the {} in-service blocks",
            total - 1
        );
        assert!(after > 0.0 && after < healthy * 2.0);

        // Every block bad: no in-service wear to report, not NaN.
        for i in 0..total as usize {
            f.bad_blocks[i] = true;
        }
        assert_eq!(f.mean_erase_count(), 0.0);
    }

    #[test]
    fn scheduled_power_cut_freezes_device_without_mutation() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        // Next fault-clock tick is the cut: the program must fail before
        // touching page state.
        f.arm_faults(FaultPlan::new(FaultConfig::power_cut(3, 1)));
        let err = f
            .program(Ppn(1), page_with(2, 1), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, FlashError::PowerLoss);
        assert!(f.powered_off());
        assert!(!f.is_programmed(Ppn(1)));
        assert_eq!(f.write_cursor(BlockId(0)), 1, "cursor untouched by cut");
        // Everything timed now fails; untimed content reads still work.
        assert_eq!(
            f.schedule_read(Ppn(0), SimTime::ZERO).unwrap_err(),
            FlashError::PowerLoss
        );
        assert_eq!(
            f.erase(BlockId(0), SimTime::ZERO).unwrap_err(),
            FlashError::PowerLoss
        );
        assert_eq!(f.logical_tick().unwrap_err(), FlashError::PowerLoss);
        assert!(f.read(Ppn(0)).is_some(), "recovery scans stay possible");
        // Power back on: the cut was one-shot, operations succeed again.
        f.power_on();
        f.program(Ppn(1), page_with(2, 1), SimTime::ZERO).unwrap();
        assert_eq!(f.counters().get("flash.power_cuts"), 1);
    }

    #[test]
    fn cut_before_erase_preserves_block_content() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        f.program(Ppn(0), page_with(9, 1), SimTime::ZERO).unwrap();
        f.arm_faults(FaultPlan::new(FaultConfig::power_cut(0, 1)));
        assert_eq!(
            f.erase(BlockId(0), SimTime::ZERO).unwrap_err(),
            FlashError::PowerLoss
        );
        assert!(f.read(Ppn(0)).is_some(), "erase must not have started");
        assert_eq!(f.erase_count(BlockId(0)), 0);
    }

    #[test]
    fn grown_bad_block_is_permanent() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        f.arm_faults(FaultPlan::new(FaultConfig {
            seed: 11,
            grown_bad_block: 1.0,
            ..FaultConfig::default()
        }));
        let err = f
            .program(Ppn(0), page_with(1, 1), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, FlashError::GrownBadBlock(BlockId(0)));
        assert!(f.is_bad_block(BlockId(0)));
        assert!(!f.is_programmed(Ppn(0)));
        // Later attempts fail up front without consuming fault ticks.
        let ticks = f.fault_plan().unwrap().ticks();
        assert_eq!(
            f.program(Ppn(0), page_with(1, 1), SimTime::ZERO)
                .unwrap_err(),
            FlashError::GrownBadBlock(BlockId(0))
        );
        assert_eq!(
            f.erase(BlockId(0), SimTime::ZERO).unwrap_err(),
            FlashError::GrownBadBlock(BlockId(0))
        );
        assert_eq!(f.fault_plan().unwrap().ticks(), ticks);
        assert_eq!(f.counters().get("flash.grown_bad_blocks"), 1);
    }

    #[test]
    fn transient_program_leaves_page_erased_and_retry_succeeds() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        f.arm_faults(FaultPlan::new(FaultConfig {
            seed: 5,
            transient_program: 0.5,
            ..FaultConfig::default()
        }));
        // With a 50% rate some attempts fail; a failed attempt must leave
        // the page erased so the retry targets the same address.
        let mut failures = 0;
        let mut page = 0u64;
        while page < 8 {
            match f.program(Ppn(page), page_with(page, 1), SimTime::ZERO) {
                Ok(_) => page += 1,
                Err(FlashError::TransientProgram(p)) => {
                    assert_eq!(p, Ppn(page));
                    assert!(!f.is_programmed(Ppn(page)));
                    failures += 1;
                    assert!(failures < 1000, "rate 0.5 cannot fail forever");
                }
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(failures > 0, "seed 5 should produce at least one failure");
        assert_eq!(f.counters().get("flash.transient_faults"), failures);
        for p in 0..8u64 {
            assert!(f.is_programmed(Ppn(p)));
        }
    }

    #[test]
    fn programs_seal_checksums_that_reads_can_verify() {
        let mut f = array();
        f.program(Ppn(0), page_with(7, 3), SimTime::ZERO).unwrap();
        let c = f.read(Ppn(0)).unwrap();
        assert!(c.is_sealed());
        assert!(c.intact());
    }

    #[test]
    fn torn_write_commits_a_detectably_corrupt_page() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        // Sweep seeds until one tears inside the payload (the drawn
        // boundary may also legitimately land past the last unit).
        let mut saw_corrupt = false;
        for seed in 0..64u64 {
            let mut f2 = array();
            f2.arm_faults(FaultPlan::new(FaultConfig {
                torn_writes: true,
                ..FaultConfig::power_cut(seed, 1)
            }));
            let err = f2
                .program(Ppn(0), page_with(5, 1), SimTime::ZERO)
                .unwrap_err();
            assert_eq!(err, FlashError::PowerLoss);
            assert!(f2.powered_off());
            // Unlike the fail-stop model the page *is* on the media.
            assert!(f2.is_programmed(Ppn(0)));
            assert_eq!(f2.write_cursor(BlockId(0)), 1);
            assert_eq!(f2.counters().get("flash.torn_writes"), 1);
            assert_eq!(f2.counters().get("flash.program"), 0);
            let c = f2.read(Ppn(0)).unwrap();
            assert!(c.is_sealed());
            if !c.intact() {
                saw_corrupt = true;
                f = f2;
                break;
            }
        }
        assert!(saw_corrupt, "some seed must tear inside the payload");
        // The torn page never verifies until the block is erased.
        assert!(!f.read(Ppn(0)).unwrap().intact());
    }

    #[test]
    fn torn_writes_off_keeps_fail_stop_behavior() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        f.arm_faults(FaultPlan::new(FaultConfig::power_cut(3, 1)));
        let err = f
            .program(Ppn(0), page_with(5, 1), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, FlashError::PowerLoss);
        assert!(!f.is_programmed(Ppn(0)));
        assert_eq!(f.write_cursor(BlockId(0)), 0);
        assert_eq!(f.counters().get("flash.torn_writes"), 0);
    }

    #[test]
    fn misdirected_program_lands_with_mismatched_checksums() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        f.arm_faults(FaultPlan::new(FaultConfig {
            seed: 21,
            misdirected_program: 1.0,
            ..FaultConfig::default()
        }));
        // The program reports success...
        f.program(Ppn(0), page_with(9, 2), SimTime::ZERO).unwrap();
        assert_eq!(f.counters().get("flash.misdirected_programs"), 1);
        assert_eq!(f.counters().get("flash.program"), 1);
        // ...but the landed page fails verification.
        let c = f.read(Ppn(0)).unwrap();
        assert!(c.is_sealed());
        assert!(!c.intact());
    }

    #[test]
    fn bit_rot_corrupts_programmed_pages_latently() {
        use crate::content::{OobEntry, OobKind};
        use crate::fault::{FaultConfig, FaultPlan};
        let mut f = array();
        let mut page = page_with(3, 1);
        page.oob.push(OobEntry {
            lpn: 3,
            sequence: 1,
            kind: OobKind::Data,
        });
        f.program(Ppn(0), page, SimTime::ZERO).unwrap();
        f.arm_faults(FaultPlan::new(FaultConfig {
            seed: 17,
            bit_rot_data: 1.0,
            bit_rot_oob: 1.0,
            ..FaultConfig::default()
        }));
        // Any fault-clock tick now decays the stored page.
        f.logical_tick().unwrap();
        assert!(f.counters().get("flash.bit_rot_data") >= 1);
        assert!(f.counters().get("flash.bit_rot_oob") >= 1);
        let c = f.read(Ppn(0)).unwrap();
        assert!(!c.intact(), "rot must break verification");
        // Erasing the block launders the corruption away entirely.
        f.arm_faults(FaultPlan::new(FaultConfig::default()));
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.program(Ppn(0), page_with(3, 2), SimTime::ZERO).unwrap();
        assert!(f.read(Ppn(0)).unwrap().intact());
    }

    #[test]
    fn spare_shells_forget_previous_seals() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        assert!(f.spare_page_count() > 0);
        let shell = f.spare_page(8);
        assert!(shell.oob.is_empty());
        assert!(shell.units.iter().all(Option::is_none));
        assert!(shell.intact(), "recycled shell starts unsealed and clean");
    }

    #[test]
    fn manual_cut_power_works_without_a_plan() {
        let mut f = array();
        f.cut_power();
        assert!(f.powered_off());
        assert_eq!(
            f.program(Ppn(0), page_with(1, 1), SimTime::ZERO)
                .unwrap_err(),
            FlashError::PowerLoss
        );
        f.power_on();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
    }

    #[test]
    fn phase_attribution_sums_to_totals() {
        let mut f = array();
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        let prev = f.set_op_phase(OpPhase::CheckpointCopy);
        assert_eq!(prev, OpPhase::Run);
        f.schedule_read(Ppn(0), SimTime::ZERO).unwrap();
        f.program(Ppn(1), page_with(2, 1), SimTime::ZERO).unwrap();
        // Nested phase change (GC inside a copy) restores cleanly.
        let prev = f.set_op_phase(OpPhase::Gc);
        assert_eq!(prev, OpPhase::CheckpointCopy);
        f.erase(BlockId(1), SimTime::ZERO).unwrap();
        f.set_op_phase(prev);
        f.set_op_phase(OpPhase::Run);
        f.program(Ppn(2), page_with(3, 1), SimTime::ZERO).unwrap();

        let c = f.counters();
        for (total, key_of) in [
            (
                "flash.program",
                OpPhase::program_key as fn(OpPhase) -> &'static str,
            ),
            ("flash.read", OpPhase::read_key),
            ("flash.erase", OpPhase::erase_key),
        ] {
            let by_phase: u64 = OpPhase::ALL.iter().map(|&p| c.get(key_of(p))).sum();
            assert_eq!(by_phase, c.get(total), "{total} attribution mismatch");
        }
        assert_eq!(c.get("flash.program.run"), 2);
        assert_eq!(c.get("flash.program.cp_copy"), 1);
        assert_eq!(c.get("flash.read.cp_copy"), 1);
        assert_eq!(c.get("flash.erase.gc"), 1);
    }

    #[test]
    fn traced_array_emits_flash_events() {
        use checkin_sim::Tracer;
        let mut f = array();
        let t = Tracer::ring_buffered(16);
        f.set_tracer(t.clone());
        f.program(Ppn(0), page_with(1, 1), SimTime::ZERO).unwrap();
        f.schedule_read(Ppn(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        let ops: Vec<&str> = t.drain().iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["program", "read", "erase"]);
    }

    #[test]
    fn wear_statistics() {
        let mut f = array();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(0), SimTime::ZERO).unwrap();
        f.erase(BlockId(1), SimTime::ZERO).unwrap();
        assert_eq!(f.total_erases(), 3);
        assert_eq!(f.max_erase_count(), 2);
        assert!(f.mean_erase_count() > 0.0);
    }
}
