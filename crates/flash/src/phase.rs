//! Firmware-activity attribution for flash operations.
//!
//! Layers above the array label what the firmware is currently doing
//! with an [`OpPhase`]; the array then counts every program/read/erase
//! under both the plain total (`flash.program`, …) and a per-phase key
//! (`flash.program.cp_copy`, …) **at the same increment site**. Because
//! the two increments are inseparable, the per-phase keys always sum to
//! the totals over any counter-snapshot window — this is the invariant
//! the checkpoint phase breakdown and its reconciliation tests rely on.

/// What the firmware is doing while it issues flash operations.
///
/// Set via [`FlashArray::set_op_phase`](crate::FlashArray::set_op_phase),
/// which returns the previous phase so callers can nest and restore
/// (e.g. a foreground GC triggered inside a checkpoint copy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpPhase {
    /// Normal foreground work: host writes, reads, buffer page-out.
    #[default]
    Run,
    /// Checkpoint remap walk (ISCE mapping-table updates).
    CheckpointRemap,
    /// Checkpoint copy fallback (read-merge-write of sub-unit entries),
    /// including the host-driven copy path of the Baseline strategy.
    CheckpointCopy,
    /// Metadata persistence: mapping-log pages and meta superblocks.
    Meta,
    /// Host or checkpoint deallocation (tombstones, journal trim).
    Dealloc,
    /// Garbage collection and wear-leveling migration.
    Gc,
    /// Background integrity scrub reads in idle windows.
    Scrub,
}

impl OpPhase {
    /// Every phase, in a stable order (for reports and reconciliation).
    pub const ALL: [OpPhase; 7] = [
        OpPhase::Run,
        OpPhase::CheckpointRemap,
        OpPhase::CheckpointCopy,
        OpPhase::Meta,
        OpPhase::Dealloc,
        OpPhase::Gc,
        OpPhase::Scrub,
    ];

    /// Stable lowercase label (used in trace output and counter keys).
    pub fn label(self) -> &'static str {
        match self {
            OpPhase::Run => "run",
            OpPhase::CheckpointRemap => "cp_remap",
            OpPhase::CheckpointCopy => "cp_copy",
            OpPhase::Meta => "meta",
            OpPhase::Dealloc => "dealloc",
            OpPhase::Gc => "gc",
            OpPhase::Scrub => "scrub",
        }
    }

    /// Counter key for reads attributed to this phase.
    pub fn read_key(self) -> &'static str {
        match self {
            OpPhase::Run => "flash.read.run",
            OpPhase::CheckpointRemap => "flash.read.cp_remap",
            OpPhase::CheckpointCopy => "flash.read.cp_copy",
            OpPhase::Meta => "flash.read.meta",
            OpPhase::Dealloc => "flash.read.dealloc",
            OpPhase::Gc => "flash.read.gc",
            OpPhase::Scrub => "flash.read.scrub",
        }
    }

    /// Counter key for programs attributed to this phase.
    pub fn program_key(self) -> &'static str {
        match self {
            OpPhase::Run => "flash.program.run",
            OpPhase::CheckpointRemap => "flash.program.cp_remap",
            OpPhase::CheckpointCopy => "flash.program.cp_copy",
            OpPhase::Meta => "flash.program.meta",
            OpPhase::Dealloc => "flash.program.dealloc",
            OpPhase::Gc => "flash.program.gc",
            OpPhase::Scrub => "flash.program.scrub",
        }
    }

    /// Counter key for erases attributed to this phase.
    pub fn erase_key(self) -> &'static str {
        match self {
            OpPhase::Run => "flash.erase.run",
            OpPhase::CheckpointRemap => "flash.erase.cp_remap",
            OpPhase::CheckpointCopy => "flash.erase.cp_copy",
            OpPhase::Meta => "flash.erase.meta",
            OpPhase::Dealloc => "flash.erase.dealloc",
            OpPhase::Gc => "flash.erase.gc",
            OpPhase::Scrub => "flash.erase.scrub",
        }
    }
}
