//! NAND operation latencies and bus bandwidth.

use checkin_sim::SimDuration;

/// Timing parameters of the NAND chips and the ONFI channel bus.
///
/// # Examples
///
/// ```
/// use checkin_flash::FlashTiming;
///
/// let t = FlashTiming::mlc();
/// assert!(t.t_program > t.t_read);
/// let xfer = t.transfer_time(4096);
/// assert!(xfer.as_nanos() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashTiming {
    /// Array read time (tR): cell array to page register.
    pub t_read: SimDuration,
    /// Array program time (tPROG): page register to cells.
    pub t_program: SimDuration,
    /// Block erase time (tBER).
    pub t_erase: SimDuration,
    /// Channel bus bandwidth in bytes per second (ONFI transfer rate).
    pub bus_bytes_per_sec: u64,
}

impl FlashTiming {
    /// SLC-like timings: fast reads and programs.
    pub fn slc() -> Self {
        FlashTiming {
            t_read: SimDuration::from_micros(25),
            t_program: SimDuration::from_micros(200),
            t_erase: SimDuration::from_millis(2),
            bus_bytes_per_sec: 800_000_000,
        }
    }

    /// MLC-like timings (the paper's configuration class).
    pub fn mlc() -> Self {
        FlashTiming {
            t_read: SimDuration::from_micros(45),
            t_program: SimDuration::from_micros(660),
            t_erase: SimDuration::from_micros(3500),
            bus_bytes_per_sec: 800_000_000,
        }
    }

    /// TLC-like timings: slow programs, long erases.
    pub fn tlc() -> Self {
        FlashTiming {
            t_read: SimDuration::from_micros(78),
            t_program: SimDuration::from_micros(2200),
            t_erase: SimDuration::from_millis(5),
            bus_bytes_per_sec: 800_000_000,
        }
    }

    /// Time to move `bytes` across the channel bus.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        debug_assert!(self.bus_bytes_per_sec > 0);
        let nanos = bytes.saturating_mul(1_000_000_000) / self.bus_bytes_per_sec;
        SimDuration::from_nanos(nanos.max(1))
    }
}

impl Default for FlashTiming {
    fn default() -> Self {
        FlashTiming::mlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_cell_density() {
        let (slc, mlc, tlc) = (FlashTiming::slc(), FlashTiming::mlc(), FlashTiming::tlc());
        assert!(slc.t_read < mlc.t_read && mlc.t_read < tlc.t_read);
        assert!(slc.t_program < mlc.t_program && mlc.t_program < tlc.t_program);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let t = FlashTiming::mlc();
        let one = t.transfer_time(4096);
        let two = t.transfer_time(8192);
        assert_eq!(two.as_nanos(), one.as_nanos() * 2);
        // 4 KiB at 800 MB/s = 5.12 us
        assert_eq!(one.as_nanos(), 5_120);
    }

    #[test]
    fn transfer_time_never_zero() {
        let t = FlashTiming::mlc();
        assert!(t.transfer_time(0).as_nanos() >= 1);
    }

    #[test]
    fn default_is_mlc() {
        assert_eq!(FlashTiming::default(), FlashTiming::mlc());
    }
}
