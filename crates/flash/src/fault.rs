//! Deterministic fault injection for the simulated NAND array.
//!
//! A [`FaultPlan`] is a *seeded schedule* of environmental failures that
//! the array replays while it services operations:
//!
//! * **Power cuts** — a global *fault clock* counts every fallible
//!   operation attempt (page reads, page programs, block erases, and
//!   *logical* firmware steps forwarded by upper layers: buffered-write
//!   admissions, remaps, deallocations). When the clock reaches
//!   [`FaultConfig::power_cut_after`], the in-flight operation fails with
//!   [`FlashError::PowerLoss`](crate::FlashError) and the array
//!   freezes: all further timed operations fail until
//!   [`FlashArray::power_on`](crate::FlashArray::power_on) is called.
//!   Untimed content reads stay available so recovery code can scan OOB
//!   metadata, modelling firmware reading NAND after a reboot.
//!
//!   By default a cut aborts the in-flight operation *before any state
//!   mutation* — a **fail-stop idealization**. Real NAND does not abort
//!   cleanly: a program interrupted mid-burst leaves a *torn page* whose
//!   cells hold a partially-written, ECC-invalid mess. Setting
//!   [`FaultConfig::torn_writes`] replaces the clean abort on programs
//!   with exactly that: the page is marked programmed and stores a prefix
//!   of the intended content with a corrupted tail (units and OOB records
//!   past a seeded boundary are bit-flipped without resealing their
//!   checksums). With the flag off, behavior — including the RNG stream —
//!   is byte-identical to the historical fail-stop model.
//! * **Retention bit-rot** — per-tick Bernoulli draws
//!   ([`FaultConfig::bit_rot_data`], [`FaultConfig::bit_rot_oob`]) flip
//!   seeded bits in the stored content tags or OOB records of an already
//!   programmed page, modelling charge leakage in cold data. The sealed
//!   checksums are *not* updated, so the damage is latent until a
//!   verified read or a scrub pass visits the page.
//! * **Misdirected writes** — a per-program draw
//!   ([`FaultConfig::misdirected_program`]) scrambles the payload and OOB
//!   stamps of a program *after* its checksums were sealed, modelling
//!   firmware writing the right data to the wrong place: the program
//!   reports success, but what landed does not match its checksums.
//! * **Transient media errors** — per-attempt Bernoulli draws make a
//!   read/program/erase fail with a retryable error while leaving state
//!   untouched. Independent draws per attempt mean bounded retries
//!   (performed by the FTL) almost surely succeed.
//! * **Grown bad blocks** — a per-attempt draw on programs and erases
//!   permanently marks the target block bad; the operation fails fatally
//!   and every later program/erase of that block fails too. The FTL
//!   responds by retiring the block (salvaging still-valid units).
//!
//! Everything is derived from one `u64` seed with a private xoshiro256**
//! generator, so a `(workload seed, fault seed, cut tick)` triple fully
//! determines a simulated crash — the property the `crashmatrix` harness
//! builds on: a *profiling* run with [`FaultConfig::record_trace`] logs
//! `(operation, phase)` per tick, and targeted cut points (mid-GC,
//! mid-remap-walk, mid-deallocation) are then chosen from that trace and
//! replayed exactly.

/// Operation classes that advance the fault clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A timed page read ([`FlashArray::schedule_read`](crate::FlashArray::schedule_read)).
    Read,
    /// A page program.
    Program,
    /// A block erase.
    Erase,
    /// A logical firmware step forwarded from an upper layer (buffered
    /// write admission, mapping remap, deallocation). Logical steps can be
    /// interrupted by a power cut but never suffer media errors.
    Logical,
}

/// Firmware activity label, set by upper layers around interesting code
/// regions so that recorded fault-clock traces can target cut points
/// (e.g. "somewhere inside garbage collection").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPhase {
    /// Ordinary foreground work.
    #[default]
    Normal,
    /// Inside garbage collection or wear leveling.
    Gc,
    /// Inside the Algorithm-1 remap walk of a checkpoint.
    CheckpointRemap,
    /// Inside a host deallocate (trim) loop.
    HostDeallocate,
}

/// Seeded fault schedule parameters.
///
/// The default is fully benign (no cut, zero failure rates); construct
/// with struct-update syntax to enable individual hazards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for all probability draws.
    pub seed: u64,
    /// Power is cut when the fault clock reaches this tick (1-based):
    /// the operation consuming that tick fails with
    /// [`FlashError::PowerLoss`](crate::FlashError) before mutating anything. One-shot —
    /// after firing, no further cut is scheduled.
    pub power_cut_after: Option<u64>,
    /// Per-attempt probability of a transient read failure.
    pub transient_read: f64,
    /// Per-attempt probability of a transient program failure.
    pub transient_program: f64,
    /// Per-attempt probability of a transient erase failure.
    pub transient_erase: f64,
    /// Per-attempt probability that a program/erase grows a bad block.
    pub grown_bad_block: f64,
    /// A power cut during a program leaves a *torn page* (partially
    /// programmed, corrupt tail) instead of cleanly aborting. Off by
    /// default, preserving the historical fail-stop model byte-for-byte.
    pub torn_writes: bool,
    /// Per-tick probability of a retention bit-flip in a stored data unit
    /// of some already-programmed page.
    pub bit_rot_data: f64,
    /// Per-tick probability of a retention bit-flip in a stored OOB
    /// record of some already-programmed page.
    pub bit_rot_oob: f64,
    /// Per-program probability that the write is misdirected: it reports
    /// success but the landed payload/OOB stamps are scrambled relative
    /// to their sealed checksums.
    pub misdirected_program: f64,
    /// Record an `(op, phase)` trace entry per tick (profiling runs).
    pub record_trace: bool,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            power_cut_after: None,
            transient_read: 0.0,
            transient_program: 0.0,
            transient_erase: 0.0,
            grown_bad_block: 0.0,
            torn_writes: false,
            bit_rot_data: 0.0,
            bit_rot_oob: 0.0,
            misdirected_program: 0.0,
            record_trace: false,
        }
    }
}

impl FaultConfig {
    /// A schedule that only cuts power at `tick` (no media errors).
    pub fn power_cut(seed: u64, tick: u64) -> Self {
        FaultConfig {
            seed,
            power_cut_after: Some(tick),
            ..FaultConfig::default()
        }
    }
}

/// What a fault-clock tick decided for the consuming operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TickOutcome {
    /// Proceed normally.
    Pass,
    /// Power is cut: fail with [`FlashError::PowerLoss`](crate::FlashError), freeze device.
    PowerCut,
    /// Transient media failure: fail retryably, mutate nothing.
    Transient,
    /// The target block just went bad: fail fatally and mark it.
    GrownBad,
}

/// Live fault-injection state: configuration, RNG, fault clock, and the
/// optional per-tick trace.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    state: [u64; 4],
    ticks: u64,
    trace: Vec<(FaultOp, FaultPhase)>,
}

impl FaultPlan {
    /// Instantiates the schedule described by `config`.
    pub fn new(config: FaultConfig) -> Self {
        // splitmix64 expansion of the seed into xoshiro256** state.
        let mut s = config.seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        FaultPlan {
            config,
            state,
            ticks: 0,
            trace: Vec::new(),
        }
    }

    /// The schedule parameters.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Fault-clock ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The recorded `(op, phase)` trace; entry `i` describes tick `i + 1`.
    /// Empty unless [`FaultConfig::record_trace`] was set.
    pub fn trace(&self) -> &[(FaultOp, FaultPhase)] {
        &self.trace
    }

    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = &mut self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Advances the fault clock for one operation attempt and decides its
    /// fate. Exactly one tick per attempt; a retried operation draws
    /// independently on each attempt.
    pub(crate) fn on_tick(&mut self, op: FaultOp, phase: FaultPhase) -> TickOutcome {
        self.ticks += 1;
        if self.config.record_trace {
            self.trace.push((op, phase));
        }
        if self.config.power_cut_after == Some(self.ticks) {
            return TickOutcome::PowerCut;
        }
        let (transient_rate, grown_rate) = match op {
            FaultOp::Read => (self.config.transient_read, 0.0),
            FaultOp::Program => (self.config.transient_program, self.config.grown_bad_block),
            FaultOp::Erase => (self.config.transient_erase, self.config.grown_bad_block),
            FaultOp::Logical => (0.0, 0.0),
        };
        let transient = self.chance(transient_rate);
        let grown = self.chance(grown_rate);
        if grown {
            TickOutcome::GrownBad
        } else if transient {
            TickOutcome::Transient
        } else {
            TickOutcome::Pass
        }
    }

    /// Whether power cuts tear in-flight programs instead of aborting.
    pub(crate) fn torn_writes_enabled(&self) -> bool {
        self.config.torn_writes
    }

    /// Per-tick retention decay draws: `(data unit hit, OOB record hit)`.
    /// Consumes no RNG state when both rates are zero, so benign plans
    /// keep the historical stream byte-identical.
    pub(crate) fn decay_draws(&mut self) -> (bool, bool) {
        let data = self.chance(self.config.bit_rot_data);
        let oob = self.chance(self.config.bit_rot_oob);
        (data, oob)
    }

    /// Per-program misdirection draw. Consumes no RNG state at rate zero.
    pub(crate) fn misdirect_draw(&mut self) -> bool {
        self.chance(self.config.misdirected_program)
    }

    /// A uniform draw in `[0, n)` (`0` when `n == 0`), used to pick
    /// seeded victims and corruption masks deterministically.
    pub(crate) fn draw_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_draws() {
        let cfg = FaultConfig {
            seed: 42,
            transient_program: 0.5,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..1000 {
            assert_eq!(
                a.on_tick(FaultOp::Program, FaultPhase::Normal),
                b.on_tick(FaultOp::Program, FaultPhase::Normal)
            );
        }
    }

    #[test]
    fn cut_fires_exactly_once_at_the_scheduled_tick() {
        let mut p = FaultPlan::new(FaultConfig::power_cut(1, 3));
        assert_eq!(
            p.on_tick(FaultOp::Read, FaultPhase::Normal),
            TickOutcome::Pass
        );
        assert_eq!(
            p.on_tick(FaultOp::Logical, FaultPhase::Normal),
            TickOutcome::Pass
        );
        assert_eq!(
            p.on_tick(FaultOp::Program, FaultPhase::Normal),
            TickOutcome::PowerCut
        );
        // One-shot: the clock moves on.
        assert_eq!(
            p.on_tick(FaultOp::Program, FaultPhase::Normal),
            TickOutcome::Pass
        );
        assert_eq!(p.ticks(), 4);
    }

    #[test]
    fn transient_rate_roughly_respected() {
        let mut p = FaultPlan::new(FaultConfig {
            seed: 7,
            transient_read: 0.25,
            ..FaultConfig::default()
        });
        let n = 10_000;
        let fails = (0..n)
            .filter(|_| p.on_tick(FaultOp::Read, FaultPhase::Normal) == TickOutcome::Transient)
            .count();
        let rate = fails as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn logical_ops_never_fail_without_a_cut() {
        let mut p = FaultPlan::new(FaultConfig {
            seed: 9,
            transient_read: 1.0,
            transient_program: 1.0,
            transient_erase: 1.0,
            grown_bad_block: 1.0,
            ..FaultConfig::default()
        });
        for _ in 0..100 {
            assert_eq!(
                p.on_tick(FaultOp::Logical, FaultPhase::Normal),
                TickOutcome::Pass
            );
        }
    }

    #[test]
    fn zero_rate_injectors_leave_the_rng_stream_untouched() {
        // With every new hazard at its default-off setting, interleaving
        // decay/misdirect draws between ticks must not perturb the draw
        // sequence of a historical plan: the crashmatrix tiers depend on
        // byte-identical replay.
        let legacy = FaultConfig {
            seed: 42,
            transient_program: 0.5,
            grown_bad_block: 0.1,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(legacy);
        let mut b = FaultPlan::new(legacy);
        for _ in 0..1000 {
            let (data, oob) = b.decay_draws();
            assert!(!data && !oob);
            assert!(!b.misdirect_draw());
            assert_eq!(
                a.on_tick(FaultOp::Program, FaultPhase::Normal),
                b.on_tick(FaultOp::Program, FaultPhase::Normal)
            );
        }
    }

    #[test]
    fn torn_writes_flag_defaults_off() {
        assert!(!FaultConfig::default().torn_writes);
        assert!(!FaultPlan::new(FaultConfig::power_cut(3, 5)).torn_writes_enabled());
    }

    #[test]
    fn draw_below_is_bounded_and_deterministic() {
        let cfg = FaultConfig {
            seed: 11,
            ..FaultConfig::default()
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        assert_eq!(a.draw_below(0), 0);
        assert_eq!(b.draw_below(0), 0);
        for n in 1..200u64 {
            let x = a.draw_below(n);
            assert_eq!(x, b.draw_below(n));
            assert!(x < n);
        }
    }

    #[test]
    fn trace_records_op_and_phase_per_tick() {
        let mut p = FaultPlan::new(FaultConfig {
            seed: 1,
            record_trace: true,
            ..FaultConfig::default()
        });
        p.on_tick(FaultOp::Read, FaultPhase::Normal);
        p.on_tick(FaultOp::Erase, FaultPhase::Gc);
        assert_eq!(
            p.trace(),
            &[
                (FaultOp::Read, FaultPhase::Normal),
                (FaultOp::Erase, FaultPhase::Gc)
            ]
        );
    }
}
