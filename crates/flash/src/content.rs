//! What a programmed page *contains*.
//!
//! The simulator does not shuffle real byte buffers around; a page stores
//! compact **content tags** that are sufficient to verify correctness: which
//! key, which version, and how many bytes of the record live in each
//! FTL mapping unit. The out-of-band (OOB) area carries the recovery
//! metadata the paper describes in §III-G (target address + version).

/// One record fragment stored inside a mapping unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fragment {
    /// Key-value store key this fragment belongs to.
    pub key: u64,
    /// Monotonic version of the record.
    pub version: u64,
    /// Bytes of the record occupied in this unit (post-alignment).
    pub bytes: u32,
}

/// A fragment list that stores up to two fragments inline.
///
/// Units nearly always carry one fragment (a whole record or its tail),
/// so the common case needs no heap allocation at all — the simulator
/// creates one of these per host write on the hot path. Longer merged
/// lists spill to a `Vec` transparently.
#[derive(Debug, Clone)]
enum FragRepr {
    Inline {
        len: u8,
        frags: [Fragment; FragVec::INLINE],
    },
    Spilled(Vec<Fragment>),
}

/// Small-vector of [`Fragment`]s; derefs to a slice.
#[derive(Debug, Clone)]
pub struct FragVec {
    repr: FragRepr,
}

impl FragVec {
    /// Fragments stored without heap allocation.
    pub const INLINE: usize = 2;

    const FILLER: Fragment = Fragment {
        key: 0,
        version: 0,
        bytes: 0,
    };

    /// An empty fragment list (inline, no allocation).
    pub const fn new() -> Self {
        FragVec {
            repr: FragRepr::Inline {
                len: 0,
                frags: [Self::FILLER; Self::INLINE],
            },
        }
    }

    /// Appends a fragment, spilling to the heap past [`FragVec::INLINE`].
    pub fn push(&mut self, f: Fragment) {
        match &mut self.repr {
            FragRepr::Inline { len, frags } => {
                if let Some(slot) = frags.get_mut(*len as usize) {
                    *slot = f;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(Self::INLINE * 2);
                    v.extend_from_slice(frags);
                    v.push(f);
                    self.repr = FragRepr::Spilled(v);
                }
            }
            FragRepr::Spilled(v) => v.push(f),
        }
    }

    /// The fragments as a slice.
    pub fn as_slice(&self) -> &[Fragment] {
        match &self.repr {
            FragRepr::Inline { len, frags } => &frags[..*len as usize],
            FragRepr::Spilled(v) => v,
        }
    }

    /// The fragments as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [Fragment] {
        match &mut self.repr {
            // `len <= INLINE` is an invariant of `push`; a corrupt length
            // degrades to the empty slice rather than a panic.
            FragRepr::Inline { len, frags } => frags.get_mut(..*len as usize).unwrap_or(&mut []),
            FragRepr::Spilled(v) => v,
        }
    }
}

impl Default for FragVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for FragVec {
    type Target = [Fragment];
    fn deref(&self) -> &[Fragment] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for FragVec {
    fn deref_mut(&mut self) -> &mut [Fragment] {
        self.as_mut_slice()
    }
}

impl PartialEq for FragVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for FragVec {}

impl FromIterator<Fragment> for FragVec {
    fn from_iter<I: IntoIterator<Item = Fragment>>(iter: I) -> Self {
        let mut fv = FragVec::new();
        for f in iter {
            fv.push(f);
        }
        fv
    }
}

impl Extend<Fragment> for FragVec {
    fn extend<I: IntoIterator<Item = Fragment>>(&mut self, iter: I) {
        for f in iter {
            self.push(f);
        }
    }
}

impl From<Vec<Fragment>> for FragVec {
    fn from(v: Vec<Fragment>) -> Self {
        if v.len() <= Self::INLINE {
            v.into_iter().collect()
        } else {
            FragVec {
                repr: FragRepr::Spilled(v),
            }
        }
    }
}

/// By-value iteration (fragments are `Copy`).
pub struct FragVecIter {
    inner: FragVecIterRepr,
}

enum FragVecIterRepr {
    Inline {
        idx: u8,
        len: u8,
        frags: [Fragment; FragVec::INLINE],
    },
    Spilled(std::vec::IntoIter<Fragment>),
}

impl Iterator for FragVecIter {
    type Item = Fragment;
    fn next(&mut self) -> Option<Fragment> {
        match &mut self.inner {
            FragVecIterRepr::Inline { idx, len, frags } => {
                if idx < len {
                    let f = frags[*idx as usize];
                    *idx += 1;
                    Some(f)
                } else {
                    None
                }
            }
            FragVecIterRepr::Spilled(it) => it.next(),
        }
    }
}

impl IntoIterator for FragVec {
    type Item = Fragment;
    type IntoIter = FragVecIter;
    fn into_iter(self) -> FragVecIter {
        FragVecIter {
            inner: match self.repr {
                FragRepr::Inline { len, frags } => FragVecIterRepr::Inline { idx: 0, len, frags },
                FragRepr::Spilled(v) => FragVecIterRepr::Spilled(v.into_iter()),
            },
        }
    }
}

impl<'a> IntoIterator for &'a FragVec {
    type Item = &'a Fragment;
    type IntoIter = std::slice::Iter<'a, Fragment>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Content of one FTL mapping unit within a page.
///
/// A unit normally holds one fragment; sector-aligned journaling's
/// `MERGED` sectors hold several small records in one unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnitPayload {
    /// Fragments packed into this unit, in placement order.
    pub fragments: FragVec,
}

impl UnitPayload {
    /// A unit holding a single record fragment (no heap allocation).
    pub fn single(key: u64, version: u64, bytes: u32) -> Self {
        let mut fragments = FragVec::new();
        fragments.push(Fragment {
            key,
            version,
            bytes,
        });
        UnitPayload { fragments }
    }

    /// A unit holding several merged small records.
    pub fn merged(fragments: impl Into<FragVec>) -> Self {
        UnitPayload {
            fragments: fragments.into(),
        }
    }

    /// Total payload bytes in this unit.
    pub fn bytes(&self) -> u32 {
        self.fragments.iter().map(|f| f.bytes).sum()
    }

    /// True when the unit carries no fragments (padding).
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }
}

/// Role of a page recorded in its OOB area, used during sudden-power-off
/// recovery to rebuild mapping state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OobKind {
    /// Page written on the journaling path.
    Journal,
    /// Page written to (or remapped into) the data area.
    Data,
    /// FTL metadata (mapping table snapshots, checkpoint markers).
    Meta,
    /// Page relocated by garbage collection.
    GcCopy,
}

/// One OOB record: the logical owner of one mapping unit of the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OobEntry {
    /// Logical page number (in mapping units) this unit was written for.
    pub lpn: u64,
    /// Write sequence number, used to order versions during recovery.
    pub sequence: u64,
    /// Provenance of the write.
    pub kind: OobKind,
}

/// Everything programmed into one physical page.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageContent {
    /// Per-mapping-unit payloads; `None` marks a padded (unused) unit.
    pub units: Vec<Option<UnitPayload>>,
    /// OOB records, parallel to `units` where applicable.
    pub oob: Vec<OobEntry>,
    /// Per-unit checksums sealed at program time, parallel to `units`
    /// (zero for padded slots). Empty until [`PageContent::seal`] runs.
    unit_crcs: Vec<u32>,
    /// Per-record OOB checksums, parallel to `oob`. Empty until sealed.
    oob_crcs: Vec<u32>,
}

impl PageContent {
    /// A page with `units` slots, all empty.
    pub fn empty(units: usize) -> Self {
        PageContent {
            units: vec![None; units],
            oob: Vec::new(),
            unit_crcs: Vec::new(),
            oob_crcs: Vec::new(),
        }
    }

    /// Number of occupied units.
    pub fn occupied_units(&self) -> usize {
        self.units.iter().filter(|u| u.is_some()).count()
    }

    /// Total payload bytes across units.
    pub fn payload_bytes(&self) -> u64 {
        self.units.iter().flatten().map(|u| u.bytes() as u64).sum()
    }

    /// Computes and stores the per-unit and per-OOB-record checksums —
    /// the controller's ECC engine sealing the page on its way to the
    /// die. The flash array calls this at program time; anything that
    /// mutates the tags afterwards (bit-rot, torn tails, misdirected
    /// stamps) leaves the sealed checksums stale and therefore
    /// detectable.
    pub fn seal(&mut self) {
        self.unit_crcs.clear();
        for unit in &self.units {
            self.unit_crcs
                .push(unit.as_ref().map_or(0, crate::integrity::unit_checksum));
        }
        self.oob_crcs.clear();
        for entry in &self.oob {
            self.oob_crcs.push(crate::integrity::oob_checksum(entry));
        }
    }

    /// True once [`PageContent::seal`] has stamped checksums onto the
    /// current tags.
    pub fn is_sealed(&self) -> bool {
        self.unit_crcs.len() == self.units.len() && self.oob_crcs.len() == self.oob.len()
    }

    /// Verifies the sealed checksum of unit `i`. Padded slots and
    /// unsealed pages verify trivially (there is nothing to protect).
    pub fn unit_intact(&self, i: usize) -> bool {
        match (self.units.get(i), self.unit_crcs.get(i)) {
            (Some(Some(unit)), Some(&crc)) => crate::integrity::unit_checksum(unit) == crc,
            _ => true,
        }
    }

    /// Verifies the sealed checksum of OOB record `i` (trivially true
    /// when absent or unsealed).
    pub fn oob_intact(&self, i: usize) -> bool {
        match (self.oob.get(i), self.oob_crcs.get(i)) {
            (Some(entry), Some(&crc)) => crate::integrity::oob_checksum(entry) == crc,
            _ => true,
        }
    }

    /// True when every occupied unit and OOB record verifies.
    pub fn intact(&self) -> bool {
        (0..self.units.len()).all(|i| self.unit_intact(i))
            && (0..self.oob.len()).all(|i| self.oob_intact(i))
    }

    /// Clears sealed checksums along with content (spare-shell reuse).
    pub(crate) fn clear_for_reuse(&mut self) {
        self.oob.clear();
        self.unit_crcs.clear();
        self.oob_crcs.clear();
    }

    /// Flips tag bits of unit `i` *without* resealing — the corruption
    /// injectors' primitive. XORs every fragment's version (and key)
    /// with the nonzero `mask`, so the canonical encoding changes and
    /// the stale checksum no longer matches.
    pub(crate) fn flip_unit_bits(&mut self, i: usize, mask: u64) {
        if let Some(Some(unit)) = self.units.get_mut(i) {
            for f in unit.fragments.as_mut_slice() {
                f.version ^= mask;
                f.key ^= mask;
            }
        }
    }

    /// Flips tag bits of OOB record `i` without resealing (corrupts the
    /// recovery-critical `lpn`/`sequence` stamps).
    pub(crate) fn flip_oob_bits(&mut self, i: usize, mask: u64) {
        if let Some(entry) = self.oob.get_mut(i) {
            entry.lpn ^= mask;
            entry.sequence ^= mask.rotate_left(17);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_payload() {
        let u = UnitPayload::single(42, 3, 512);
        assert_eq!(u.bytes(), 512);
        assert_eq!(u.fragments.len(), 1);
        assert!(!u.is_empty());
    }

    #[test]
    fn merged_unit_sums_bytes() {
        let u = UnitPayload::merged(vec![
            Fragment {
                key: 1,
                version: 1,
                bytes: 128,
            },
            Fragment {
                key: 2,
                version: 5,
                bytes: 256,
            },
        ]);
        assert_eq!(u.bytes(), 384);
    }

    #[test]
    fn page_content_accounting() {
        let mut p = PageContent::empty(8);
        assert_eq!(p.occupied_units(), 0);
        p.units[0] = Some(UnitPayload::single(1, 1, 512));
        p.units[3] = Some(UnitPayload::single(2, 1, 128));
        assert_eq!(p.occupied_units(), 2);
        assert_eq!(p.payload_bytes(), 640);
    }

    #[test]
    fn empty_unit_is_padding() {
        assert!(UnitPayload::default().is_empty());
        assert_eq!(UnitPayload::default().bytes(), 0);
    }

    fn sealed_page() -> PageContent {
        let mut p = PageContent::empty(4);
        p.units[0] = Some(UnitPayload::single(1, 7, 512));
        p.units[2] = Some(UnitPayload::single(2, 3, 128));
        p.oob.push(OobEntry {
            lpn: 10,
            sequence: 5,
            kind: OobKind::Data,
        });
        p.oob.push(OobEntry {
            lpn: 11,
            sequence: 6,
            kind: OobKind::Journal,
        });
        p.seal();
        p
    }

    #[test]
    fn sealed_page_verifies() {
        let p = sealed_page();
        assert!(p.is_sealed());
        assert!(p.intact());
        for i in 0..4 {
            assert!(p.unit_intact(i), "unit {i}");
        }
        assert!(p.oob_intact(0) && p.oob_intact(1));
    }

    #[test]
    fn unsealed_page_verifies_trivially() {
        let mut p = PageContent::empty(4);
        p.units[0] = Some(UnitPayload::single(1, 1, 512));
        assert!(!p.is_sealed());
        assert!(p.intact());
    }

    #[test]
    fn flipped_unit_bits_break_verification() {
        let mut p = sealed_page();
        p.flip_unit_bits(0, 1 << 13);
        assert!(!p.unit_intact(0));
        assert!(p.unit_intact(2), "other unit untouched");
        assert!(p.oob_intact(0), "oob untouched");
        assert!(!p.intact());
    }

    #[test]
    fn flipped_oob_bits_break_verification() {
        let mut p = sealed_page();
        p.flip_oob_bits(1, 1);
        assert!(p.unit_intact(0));
        assert!(p.oob_intact(0));
        assert!(!p.oob_intact(1));
    }

    #[test]
    fn resealing_after_mutation_restores_integrity() {
        let mut p = sealed_page();
        p.flip_unit_bits(0, 0xFF00);
        assert!(!p.intact());
        p.seal();
        assert!(p.intact());
    }
}
