//! What a programmed page *contains*.
//!
//! The simulator does not shuffle real byte buffers around; a page stores
//! compact **content tags** that are sufficient to verify correctness: which
//! key, which version, and how many bytes of the record live in each
//! FTL mapping unit. The out-of-band (OOB) area carries the recovery
//! metadata the paper describes in §III-G (target address + version).

/// One record fragment stored inside a mapping unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fragment {
    /// Key-value store key this fragment belongs to.
    pub key: u64,
    /// Monotonic version of the record.
    pub version: u64,
    /// Bytes of the record occupied in this unit (post-alignment).
    pub bytes: u32,
}

/// Content of one FTL mapping unit within a page.
///
/// A unit normally holds one fragment; sector-aligned journaling's
/// `MERGED` sectors hold several small records in one unit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnitPayload {
    /// Fragments packed into this unit, in placement order.
    pub fragments: Vec<Fragment>,
}

impl UnitPayload {
    /// A unit holding a single record fragment.
    pub fn single(key: u64, version: u64, bytes: u32) -> Self {
        UnitPayload {
            fragments: vec![Fragment {
                key,
                version,
                bytes,
            }],
        }
    }

    /// A unit holding several merged small records.
    pub fn merged(fragments: Vec<Fragment>) -> Self {
        UnitPayload { fragments }
    }

    /// Total payload bytes in this unit.
    pub fn bytes(&self) -> u32 {
        self.fragments.iter().map(|f| f.bytes).sum()
    }

    /// True when the unit carries no fragments (padding).
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }
}

/// Role of a page recorded in its OOB area, used during sudden-power-off
/// recovery to rebuild mapping state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OobKind {
    /// Page written on the journaling path.
    Journal,
    /// Page written to (or remapped into) the data area.
    Data,
    /// FTL metadata (mapping table snapshots, checkpoint markers).
    Meta,
    /// Page relocated by garbage collection.
    GcCopy,
}

/// One OOB record: the logical owner of one mapping unit of the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OobEntry {
    /// Logical page number (in mapping units) this unit was written for.
    pub lpn: u64,
    /// Write sequence number, used to order versions during recovery.
    pub sequence: u64,
    /// Provenance of the write.
    pub kind: OobKind,
}

/// Everything programmed into one physical page.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PageContent {
    /// Per-mapping-unit payloads; `None` marks a padded (unused) unit.
    pub units: Vec<Option<UnitPayload>>,
    /// OOB records, parallel to `units` where applicable.
    pub oob: Vec<OobEntry>,
}

impl PageContent {
    /// A page with `units` slots, all empty.
    pub fn empty(units: usize) -> Self {
        PageContent {
            units: vec![None; units],
            oob: Vec::new(),
        }
    }

    /// Number of occupied units.
    pub fn occupied_units(&self) -> usize {
        self.units.iter().filter(|u| u.is_some()).count()
    }

    /// Total payload bytes across units.
    pub fn payload_bytes(&self) -> u64 {
        self.units.iter().flatten().map(|u| u.bytes() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_unit_payload() {
        let u = UnitPayload::single(42, 3, 512);
        assert_eq!(u.bytes(), 512);
        assert_eq!(u.fragments.len(), 1);
        assert!(!u.is_empty());
    }

    #[test]
    fn merged_unit_sums_bytes() {
        let u = UnitPayload::merged(vec![
            Fragment {
                key: 1,
                version: 1,
                bytes: 128,
            },
            Fragment {
                key: 2,
                version: 5,
                bytes: 256,
            },
        ]);
        assert_eq!(u.bytes(), 384);
    }

    #[test]
    fn page_content_accounting() {
        let mut p = PageContent::empty(8);
        assert_eq!(p.occupied_units(), 0);
        p.units[0] = Some(UnitPayload::single(1, 1, 512));
        p.units[3] = Some(UnitPayload::single(2, 1, 128));
        assert_eq!(p.occupied_units(), 2);
        assert_eq!(p.payload_bytes(), 640);
    }

    #[test]
    fn empty_unit_is_padding() {
        assert!(UnitPayload::default().is_empty());
        assert_eq!(UnitPayload::default().bytes(), 0);
    }
}
