//! Property test: the timing-wheel [`EventQueue`] dequeues the exact
//! `(time, seq, event)` stream a reference `(time, seq)`-keyed binary
//! heap produces, under randomized seeded insert/pop interleavings —
//! including same-tick ties and times spanning the far end of the `u64`
//! horizon, where the wheel's top levels and cascade paths engage.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use checkin_sim::{EventQueue, SimRng, SimTime};

/// Reference model: a plain binary heap keyed `(time, seq)` with FIFO
/// tie-break via the monotone sequence number — the behaviour contract
/// the wheel must match bit for bit.
#[derive(Default)]
struct RefQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    next_seq: u64,
    last_popped: u64,
}

impl RefQueue {
    fn schedule(&mut self, time: u64, payload: u32) {
        let time = time.max(self.last_popped);
        self.heap.push(Reverse((time, self.next_seq, payload)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let Reverse((t, _, e)) = self.heap.pop()?;
        self.last_popped = t;
        Some((t, e))
    }

    fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }
}

/// Draws a schedule offset from a mixture that exercises every wheel
/// level: frequent same-tick ties, short closed-loop hops, mid-range
/// jumps, and rare far-horizon outliers.
fn draw_offset(rng: &mut SimRng) -> u64 {
    match rng.gen_range(100) {
        0..=19 => 0,                                   // same-tick tie
        20..=69 => rng.gen_range(1 << 12),             // short hop
        70..=89 => rng.gen_range(1 << 28),             // level 3-4 jump
        90..=97 => rng.gen_range(1 << 44),             // deep cascade
        _ => (u64::MAX >> 1) + rng.gen_range(1 << 40), // far horizon
    }
}

fn run_interleaving(seed: u64, steps: u32) {
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut reference = RefQueue::default();
    let mut rng = SimRng::seed_from(seed);
    let mut payload = 0u32;

    for step in 0..steps {
        // Bias toward scheduling while small so both grow, then churn.
        let schedule = wheel.is_empty() || rng.gen_bool(0.55);
        if schedule {
            // Bursts land several events on one tick to stress FIFO ties.
            let burst = 1 + rng.gen_range(4) as u32;
            let t = reference.last_popped.saturating_add(draw_offset(&mut rng));
            for _ in 0..burst {
                wheel.schedule(SimTime::from_nanos(t), payload);
                reference.schedule(t, payload);
                payload += 1;
            }
        } else {
            assert_eq!(
                wheel.peek_time().map(|t| t.as_nanos()),
                reference.peek_time(),
                "peek diverged at seed {seed} step {step}"
            );
            let got = wheel.pop().map(|(t, e)| (t.as_nanos(), e));
            let want = reference.pop();
            assert_eq!(got, want, "pop diverged at seed {seed} step {step}");
        }
        assert_eq!(wheel.len(), reference.heap.len());
    }

    // Drain: the tails must match element for element.
    while let Some(want) = reference.pop() {
        let got = wheel.pop().map(|(t, e)| (t.as_nanos(), e));
        assert_eq!(got, Some(want), "drain diverged at seed {seed}");
    }
    assert!(wheel.is_empty());
    assert!(wheel.pop().is_none());
}

#[test]
fn wheel_matches_reference_heap_across_seeds() {
    for seed in 0..32u64 {
        run_interleaving(0xC0FFEE ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15), 2_000);
    }
}

#[test]
fn wheel_matches_reference_heap_long_run() {
    run_interleaving(42, 40_000);
}

#[test]
fn same_tick_burst_pops_in_insertion_order() {
    let mut wheel = EventQueue::new();
    let mut reference = RefQueue::default();
    // Three waves on the same far-future tick, interleaved with pops, so
    // ties must survive a cascade from a high wheel level.
    let t = (1u64 << 50) + 12345;
    for i in 0..50u32 {
        wheel.schedule(SimTime::from_nanos(t), i);
        reference.schedule(t, i);
    }
    for _ in 0..20 {
        assert_eq!(
            wheel.pop().map(|(tt, e)| (tt.as_nanos(), e)),
            reference.pop()
        );
    }
    for i in 50..80u32 {
        wheel.schedule(SimTime::from_nanos(t), i);
        reference.schedule(t, i);
    }
    while let Some(want) = reference.pop() {
        assert_eq!(wheel.pop().map(|(tt, e)| (tt.as_nanos(), e)), Some(want));
    }
}
