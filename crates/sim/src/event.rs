//! A deterministic future-event list.
//!
//! [`EventQueue`] is a min-heap keyed on `(time, sequence)`: events that
//! share a timestamp pop in insertion order, which keeps simulations
//! reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event carrying a payload of type `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Future-event list ordered by time, with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use checkin_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "later");
/// q.schedule(SimTime::from_nanos(10), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "sooner"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for `n` concurrent events (closed
    /// loops know their population upfront).
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute instant `time`.
    ///
    /// Scheduling into the past (before the last popped event) is a logic
    /// error in the simulation; it is clamped forward to preserve causal
    /// ordering and flagged with a debug assertion.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        debug_assert!(
            time >= self.last_popped,
            "event scheduled in the past: {time} < {}",
            self.last_popped
        );
        let time = time.max(self.last_popped);
        self.heap.push(Scheduled {
            time,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        self.last_popped = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the most recently popped event (the current sim time
    /// from the queue's perspective).
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }
}
