//! A deterministic future-event list.
//!
//! [`EventQueue`] is a hierarchical timing wheel (a calendar queue) keyed
//! on the integer-nanosecond sim clock: 11 levels of 64 slots cover the
//! full `u64` horizon (6 bits per level). An event lands at the level of
//! its highest bit that differs from the wheel cursor; popping drains the
//! lowest occupied slot. When that slot is coarse (level > 0), all finer
//! levels are empty, so every pending event earlier than the slot's
//! window end is inside it — the cursor jumps straight to the bucket
//! minimum and one cascade refiles the rest, instead of stepping down a
//! level at a time.
//!
//! Ordering is identical to the min-heap this replaces: events pop by
//! `(time, sequence)`, so same-tick events pop in insertion order and
//! simulations stay reproducible regardless of queue internals. Leaf
//! buckets hold exactly one timestamp each, and buckets are FIFO lists
//! that cascades drain in order, so the sequence tie-break falls out of
//! list order — no per-entry comparisons at all.
//!
//! Events live in one contiguous arena threaded through intrusive
//! singly-linked buckets (8-byte head/tail slots). Scheduling links a
//! node, popping unlinks one, and cascades relink in place, so the
//! steady-state loop is O(1) amortized per event with zero heap traffic
//! and a cache footprint proportional to the live event count — unlike a
//! binary heap's O(log n) sift, or per-bucket growable buffers.

use crate::time::SimTime;

/// Bits per wheel level: 64 slots each.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed so `LEVEL_BITS * LEVELS >= 64` covers any `u64` time.
const LEVELS: usize = 11;
/// Null link / empty slot marker.
const NIL: u32 = u32::MAX;

/// An arena node: a pending (or freed) event in a bucket's FIFO chain.
#[derive(Debug, Clone)]
struct Node<E> {
    time: SimTime,
    next: u32,
    /// `None` only while the node sits on the free list.
    payload: Option<E>,
}

/// One bucket's chain ends; `NIL` head means empty.
#[derive(Debug, Clone, Copy)]
struct Slot {
    head: u32,
    tail: u32,
}

const EMPTY_SLOT: Slot = Slot {
    head: NIL,
    tail: NIL,
};

/// Wheel level for time `t` given the cursor: the level containing the
/// highest differing bit (0 when `t == cursor`).
#[inline]
fn level_of(t: u64, cursor: u64) -> usize {
    let diff = t ^ cursor;
    if diff == 0 {
        0
    } else {
        ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize
    }
}

/// Slot index of time `t` within `level`: its 6-bit digit at that level.
#[inline]
fn slot_of(t: u64, level: usize) -> usize {
    ((t >> (LEVEL_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize
}

/// Future-event list ordered by time, with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use checkin_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "later");
/// q.schedule(SimTime::from_nanos(10), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), e), (10, "sooner"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// `LEVELS * SLOTS` bucket chains, row-major by level. Every pending
    /// event in a leaf (level-0) bucket shares one timestamp; coarser
    /// buckets span `64^level` nanoseconds.
    slots: Vec<Slot>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Bit per level with any occupied slot, for O(1) minimum lookup.
    level_mask: u16,
    /// Node storage; freed nodes chain onto `free` for reuse.
    arena: Vec<Node<E>>,
    free: u32,
    /// Wheel origin: no pending event is earlier than this. Equals
    /// `last_popped` between calls; advances transiently during cascades.
    cursor: u64,
    len: usize,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: vec![EMPTY_SLOT; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            level_mask: 0,
            arena: Vec::new(),
            free: NIL,
            cursor: 0,
            len: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for `n` concurrent events (closed
    /// loops know their population upfront).
    pub fn with_capacity(n: usize) -> Self {
        let mut q = Self::new();
        q.arena.reserve(n);
        q
    }

    /// Schedules `payload` to fire at absolute instant `time`.
    ///
    /// Scheduling into the past (before the last popped event) is a logic
    /// error in the simulation; it is clamped forward to preserve causal
    /// ordering and flagged with a debug assertion.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        debug_assert!(
            time >= self.last_popped,
            "event scheduled in the past: {time} < {}",
            self.last_popped
        );
        let time = time.max(self.last_popped);
        let idx = if self.free != NIL {
            let idx = self.free;
            let node = &mut self.arena[idx as usize];
            self.free = node.next;
            node.time = time;
            node.next = NIL;
            node.payload = Some(payload);
            idx
        } else {
            self.arena.push(Node {
                time,
                next: NIL,
                payload: Some(payload),
            });
            (self.arena.len() - 1) as u32
        };
        self.link(idx, time.as_nanos());
        self.len += 1;
    }

    /// Appends node `idx` (with `next == NIL`) to the bucket its time
    /// selects under the current cursor.
    #[inline]
    fn link(&mut self, idx: u32, t: u64) {
        let level = level_of(t, self.cursor);
        let slot = slot_of(t, level);
        let s = &mut self.slots[level * SLOTS + slot];
        if s.head == NIL {
            s.head = idx;
            s.tail = idx;
            self.occupied[level] |= 1 << slot;
            self.level_mask |= 1 << level;
        } else {
            let tail = s.tail;
            s.tail = idx;
            self.arena[tail as usize].next = idx;
        }
    }

    /// Lowest occupied `(level, slot)`, i.e. the bucket containing the
    /// earliest pending event. No cursor masking is needed: filing and
    /// cascading maintain the invariant that occupied slots never sit
    /// below the cursor's digit at their level (an entry there would be
    /// in the past).
    #[inline]
    fn next_bucket(&self) -> Option<(usize, usize)> {
        if self.level_mask == 0 {
            return None;
        }
        let level = self.level_mask.trailing_zeros() as usize;
        let slot = self.occupied[level].trailing_zeros() as usize;
        Some((level, slot))
    }

    /// Clears the occupancy bit for an emptied bucket.
    #[inline]
    fn clear_bit(&mut self, level: usize, slot: usize) {
        self.occupied[level] &= !(1u64 << slot);
        if self.occupied[level] == 0 {
            self.level_mask &= !(1u16 << level);
        }
    }

    /// Unlinks arena node `idx` (already detached from its bucket),
    /// pushes it on the free list, and returns its contents.
    #[inline]
    fn retire(&mut self, idx: u32) -> (SimTime, E) {
        let free = self.free;
        self.free = idx;
        let node = &mut self.arena[idx as usize];
        node.next = free;
        let time = node.time;
        let payload = node.payload.take().expect("retired a free node");
        self.cursor = time.as_nanos();
        self.last_popped = time;
        self.len -= 1;
        (time, payload)
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            let (level, slot) = self.next_bucket()?;
            let si = level * SLOTS + slot;
            let head = self.slots[si].head;
            let rest = self.arena[head as usize].next;
            if level == 0 {
                // Leaf bucket: single timestamp, FIFO chain = seq order.
                self.slots[si].head = rest;
                if rest == NIL {
                    self.slots[si].tail = NIL;
                    self.clear_bit(0, slot);
                }
                return Some(self.retire(head));
            }
            if rest == NIL {
                // Sole event in the earliest coarse bucket — and all
                // finer levels are empty, so it is the global minimum:
                // pop it directly, no refile.
                self.slots[si] = EMPTY_SLOT;
                self.clear_bit(level, slot);
                return Some(self.retire(head));
            }
            // Multi-event coarse bucket: every pending event earlier
            // than this bucket's window end lives here, so its minimum
            // is the global minimum. Jump the cursor straight to it and
            // relink the chain; the minimum lands in a leaf bucket with
            // ties behind it in chain (= insertion) order.
            let mut min = u64::MAX;
            let mut i = head;
            while i != NIL {
                let node = &self.arena[i as usize];
                min = min.min(node.time.as_nanos());
                i = node.next;
            }
            self.cursor = min;
            self.slots[si] = EMPTY_SLOT;
            self.clear_bit(level, slot);
            let mut i = head;
            while i != NIL {
                let node = &mut self.arena[i as usize];
                let next = node.next;
                node.next = NIL;
                let t = node.time.as_nanos();
                self.link(i, t);
                i = next;
            }
        }
    }

    /// Returns the timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let (level, slot) = self.next_bucket()?;
        let head = self.slots[level * SLOTS + slot].head;
        if level == 0 {
            // Leaf buckets hold a single timestamp.
            return Some(self.arena[head as usize].time);
        }
        let mut min = SimTime::MAX;
        let mut i = head;
        while i != NIL {
            let node = &self.arena[i as usize];
            min = min.min(node.time);
            i = node.next;
        }
        Some(min)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Timestamp of the most recently popped event (the current sim time
    /// from the queue's perspective).
    pub fn now(&self) -> SimTime {
        self.last_popped
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_sees_coarse_bucket_minimum() {
        // Two events far from the cursor land in one coarse bucket; peek
        // must report the earlier one without disturbing the wheel.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos((1 << 30) + 500), "late");
        q.schedule(SimTime::from_nanos((1 << 30) + 2), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos((1 << 30) + 2)));
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), ((1 << 30) + 2, "early"));
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(9));
    }

    #[test]
    fn empty_queue_pops_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn far_horizon_times_order_correctly() {
        // Times spanning every wheel level, including the top bits.
        let mut q = EventQueue::new();
        let times = [
            u64::MAX,
            1,
            u64::MAX - 1,
            1 << 63,
            (1 << 63) + 1,
            0,
            1 << 35,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut sorted: Vec<u64> = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_nanos())).collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn freed_nodes_are_reused() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            for i in 0..8u64 {
                q.schedule(SimTime::from_nanos(round * 1000 + i), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // 8 live at a time: the arena must not have grown past the peak.
        assert!(q.arena.len() <= 8, "arena grew to {}", q.arena.len());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        // Closed-loop shape: pop one, reschedule it later, repeatedly.
        let mut q = EventQueue::new();
        for i in 0..8u64 {
            q.schedule(SimTime::from_nanos(i * 100), i);
        }
        let mut last = 0u64;
        for step in 0..1_000u64 {
            let (t, e) = q.pop().unwrap();
            assert!(t.as_nanos() >= last, "time went backwards at step {step}");
            last = t.as_nanos();
            q.schedule(t + crate::SimDuration::from_nanos(250 + (e * 37) % 500), e);
        }
        assert_eq!(q.len(), 8);
    }
}
