//! Simulated time.
//!
//! All timing in the simulator is expressed as [`SimTime`] (an absolute
//! instant) and [`SimDuration`] (a span), both counted in integer
//! nanoseconds. Integer time keeps every run bit-for-bit deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
///
/// # Examples
///
/// ```
/// use checkin_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use checkin_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros_f64(), 2_500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant (used as an "infinitely far"
    /// sentinel for timers that are disabled).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since of later instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration elapsed since `earlier`, or zero when `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration seconds");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "duration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&format!("{:.6}s", self.as_secs_f64()))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = if self.0 < 1_000 {
            format!("{}ns", self.0)
        } else if self.0 < 1_000_000 {
            format!("{:.2}us", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            format!("{:.2}ms", self.as_millis_f64())
        } else {
            format!("{:.3}s", self.as_secs_f64())
        };
        // Honour width/alignment so tables line up ({:>12} etc).
        f.pad(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_nanos(10) + SimDuration::from_nanos(5);
        assert_eq!(t, SimTime::from_nanos(15));
    }

    #[test]
    fn duration_since_returns_gap() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!(a.duration_since(b), SimDuration::from_nanos(60));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(50);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn unit_constructors_scale() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.5e-9).as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic_on_durations() {
        let d = SimDuration::from_nanos(30) * 3;
        assert_eq!(d.as_nanos(), 90);
        assert_eq!((d / 2).as_nanos(), 45);
        assert_eq!(
            (SimDuration::from_nanos(7) - SimDuration::from_nanos(4)).as_nanos(),
            3
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn display_honours_width() {
        assert_eq!(format!("{:>8}", SimDuration::from_nanos(12)), "    12ns");
        assert_eq!(format!("{:<8}|", SimDuration::from_nanos(12)), "12ns    |");
        assert_eq!(format!("{:>10}", SimTime::from_nanos(0)), " 0.000000s");
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
