//! Ring-buffered structured tracing on the logical simulation clock.
//!
//! Every layer of the simulator (engine, journal manager, SSD command
//! queue, ISCE, FTL, flash array) can emit [`TraceEvent`]s through a
//! shared [`Tracer`] handle. The design goals, in order:
//!
//! 1. **Zero overhead when disabled.** A disabled tracer is a single
//!    `Option` branch; the event-construction closure passed to
//!    [`Tracer::emit`] is never invoked, so no formatting, allocation
//!    or locking happens on the hot path.
//! 2. **Bounded memory when enabled.** Events land in a fixed-capacity
//!    ring ([`TraceRing`]) that drops the *oldest* events on overflow
//!    and counts how many were dropped, so a long run cannot exhaust
//!    memory and the tail of the trace (usually the interesting part)
//!    is preserved.
//! 3. **Deterministic ordering.** Events carry both the logical
//!    [`SimTime`] at which they occurred and a monotonically increasing
//!    sequence number assigned at emission, so two events at the same
//!    simulated instant still have a total order that is stable across
//!    runs with the same seed.
//!
//! Events are structured, not stringly: an event is a layer, a static
//! operation name, and up to [`MAX_TRACE_FIELDS`] named integer fields.
//! [`TraceEvent::to_json_line`] renders one event as a self-contained
//! JSON object for the `checkin trace` CLI exporter.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::time::SimTime;

/// Maximum number of named integer fields a single event can carry.
pub const MAX_TRACE_FIELDS: usize = 4;

/// The layer of the simulated stack that emitted an event.
///
/// The variants mirror the write path top to bottom; the `label` is the
/// string used in JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLayer {
    /// KV engine (client-visible operations).
    Engine,
    /// Journal manager / JMT bookkeeping.
    Journal,
    /// SSD host command queue.
    Queue,
    /// In-storage checkpointing engine (remap/copy planning + execution).
    Isce,
    /// Flash translation layer (write buffer, page-out, GC).
    Ftl,
    /// Raw flash array (program/read/erase).
    Flash,
}

impl TraceLayer {
    /// Stable lowercase label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            TraceLayer::Engine => "engine",
            TraceLayer::Journal => "journal",
            TraceLayer::Queue => "queue",
            TraceLayer::Isce => "isce",
            TraceLayer::Ftl => "ftl",
            TraceLayer::Flash => "flash",
        }
    }

    /// All layers, top of the stack first.
    pub fn all() -> [TraceLayer; 6] {
        [
            TraceLayer::Engine,
            TraceLayer::Journal,
            TraceLayer::Queue,
            TraceLayer::Isce,
            TraceLayer::Ftl,
            TraceLayer::Flash,
        ]
    }
}

/// One structured trace event.
///
/// Construct with [`TraceEvent::new`], attach fields with
/// [`TraceEvent::with`] and an optional string tag with
/// [`TraceEvent::tag`]. The sequence number is assigned by the ring at
/// emission time, not by the constructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emission order, assigned by the ring (0-based, monotone).
    pub seq: u64,
    /// Logical simulation time at which the event occurred.
    pub at: SimTime,
    /// Stack layer that emitted the event.
    pub layer: TraceLayer,
    /// Static operation name, e.g. `"update"`, `"gc"`, `"program"`.
    pub op: &'static str,
    /// Optional static annotation, e.g. a GC trigger reason. Empty when
    /// unused.
    pub note: &'static str,
    fields: [(&'static str, u64); MAX_TRACE_FIELDS],
    nfields: u8,
}

impl TraceEvent {
    /// Creates an event with no fields. `seq` is filled in by the ring.
    pub fn new(at: SimTime, layer: TraceLayer, op: &'static str) -> Self {
        TraceEvent {
            seq: 0,
            at,
            layer,
            op,
            note: "",
            fields: [("", 0); MAX_TRACE_FIELDS],
            nfields: 0,
        }
    }

    /// Appends a named integer field. At most [`MAX_TRACE_FIELDS`]
    /// fields are kept; extras are dropped (debug builds assert).
    #[must_use]
    pub fn with(mut self, name: &'static str, value: u64) -> Self {
        debug_assert!(
            (self.nfields as usize) < MAX_TRACE_FIELDS,
            "trace event {}/{} exceeds {MAX_TRACE_FIELDS} fields",
            self.layer.label(),
            self.op,
        );
        if let Some(slot) = self.fields.get_mut(self.nfields as usize) {
            *slot = (name, value);
            self.nfields += 1;
        }
        self
    }

    /// Attaches a static string annotation (e.g. a GC trigger reason).
    #[must_use]
    pub fn tag(mut self, note: &'static str) -> Self {
        self.note = note;
        self
    }

    /// The named integer fields attached so far, in insertion order.
    pub fn fields(&self) -> &[(&'static str, u64)] {
        &self.fields[..self.nfields as usize]
    }

    /// Renders the event as one self-contained JSON object (no trailing
    /// newline). Field names are static identifiers and never need
    /// escaping, so this is a plain formatter rather than a JSON
    /// library.
    pub fn to_json_line(&self) -> String {
        use fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_ns\":{},\"layer\":\"{}\",\"op\":\"{}\"",
            self.seq,
            self.at.as_nanos(),
            self.layer.label(),
            self.op
        );
        if !self.note.is_empty() {
            let _ = write!(out, ",\"note\":\"{}\"", self.note);
        }
        for (name, value) in self.fields() {
            let _ = write!(out, ",\"{name}\":{value}");
        }
        out.push('}');
        out
    }
}

/// Fixed-capacity event ring. Oldest events are evicted on overflow and
/// counted in [`TraceRing::dropped`].
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring that retains at most `capacity` events
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Stamps `event` with the next sequence number and appends it,
    /// evicting the oldest event if the ring is full.
    pub fn push(&mut self, mut event: TraceEvent) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events evicted due to overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Removes and returns all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }
}

/// Cloneable handle through which layers emit trace events.
///
/// A `Tracer` is either *disabled* (the default — emission is a single
/// branch and the event closure is never run) or backed by a shared
/// [`TraceRing`]. Handles are `Send + Sync` so traced systems still
/// work under the parallel sweep runner.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceRing>>>,
}

impl Tracer {
    /// A disabled tracer: every `emit` is a no-op.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer backed by a shared ring retaining up to `capacity`
    /// events.
    pub fn ring_buffered(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceRing::new(capacity)))),
        }
    }

    /// True when events are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits an event. The closure runs only when the tracer is
    /// enabled, so callers may capture and format freely without
    /// penalising untraced runs.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        if let Some(ring) = &self.inner {
            let event = make();
            if let Ok(mut ring) = ring.lock() {
                ring.push(event);
            }
        }
    }

    /// Removes and returns all retained events, oldest first. Empty for
    /// a disabled tracer.
    pub fn drain(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(ring) => ring.lock().map(|mut r| r.drain()).unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Events evicted due to ring overflow so far (0 when disabled).
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .and_then(|ring| ring.lock().ok().map(|r| r.dropped()))
            .unwrap_or(0)
    }

    /// Total events emitted so far, including dropped ones (0 when
    /// disabled).
    pub fn emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .and_then(|ring| ring.lock().ok().map(|r| r.emitted()))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: &'static str, ns: u64) -> TraceEvent {
        TraceEvent::new(SimTime::from_nanos(ns), TraceLayer::Ftl, op)
    }

    #[test]
    fn disabled_tracer_never_runs_closure() {
        let t = Tracer::disabled();
        let mut ran = false;
        t.emit(|| {
            ran = true;
            ev("x", 0)
        });
        assert!(!ran);
        assert!(!t.is_enabled());
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.emitted(), 0);
    }

    #[test]
    fn events_are_sequenced_in_emission_order() {
        let t = Tracer::ring_buffered(16);
        // Emit out of simulated-time order; sequence numbers must still
        // reflect emission order.
        t.emit(|| ev("b", 500));
        t.emit(|| ev("a", 100));
        t.emit(|| ev("c", 900));
        let events = t.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            events.iter().map(|e| e.op).collect::<Vec<_>>(),
            vec!["b", "a", "c"]
        );
        // Drain empties the ring but preserves the sequence counter.
        t.emit(|| ev("d", 1000));
        let events = t.drain();
        assert_eq!(events[0].seq, 3);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let t = Tracer::ring_buffered(3);
        for i in 0..10u64 {
            t.emit(move || ev("op", i));
        }
        assert_eq!(t.dropped(), 7);
        assert_eq!(t.emitted(), 10);
        let events = t.drain();
        assert_eq!(events.len(), 3);
        // The newest three survive, in order.
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(
            events.iter().map(|e| e.at.as_nanos()).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
    }

    #[test]
    fn field_capacity_is_enforced() {
        let e = ev("op", 1)
            .with("a", 1)
            .with("b", 2)
            .with("c", 3)
            .with("d", 4);
        assert_eq!(e.fields().len(), 4);
        assert_eq!(e.fields()[3], ("d", 4));
    }

    #[test]
    fn json_line_is_well_formed() {
        let mut ring = TraceRing::new(4);
        ring.push(
            TraceEvent::new(SimTime::from_nanos(1500), TraceLayer::Flash, "program")
                .with("block", 7)
                .with("page", 3),
        );
        let events = ring.drain();
        assert_eq!(
            events[0].to_json_line(),
            "{\"seq\":0,\"at_ns\":1500,\"layer\":\"flash\",\"op\":\"program\",\"block\":7,\"page\":3}"
        );
        let tagged = TraceEvent::new(SimTime::ZERO, TraceLayer::Ftl, "gc").tag("foreground");
        assert_eq!(
            tagged.to_json_line(),
            "{\"seq\":0,\"at_ns\":0,\"layer\":\"ftl\",\"op\":\"gc\",\"note\":\"foreground\"}"
        );
    }

    #[test]
    fn cloned_handles_share_one_ring() {
        let t = Tracer::ring_buffered(8);
        let t2 = t.clone();
        t.emit(|| ev("a", 1));
        t2.emit(|| ev("b", 2));
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].seq, 1);
    }
}
