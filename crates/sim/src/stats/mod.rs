//! Measurement utilities: counters, latency histograms, throughput.

mod latency;
mod throughput;

pub use latency::LatencyRecorder;
pub use throughput::ThroughputMeter;

use std::fmt;

/// A named bag of monotonically increasing counters.
///
/// The simulator's subsystems (flash, FTL, engine) each expose one of these;
/// experiment harnesses diff snapshots taken before/after a phase.
///
/// Counters sit on every hot path (each simulated flash, FTL, device and
/// engine operation bumps a few), so the store is a flat vector scanned by
/// *pointer* identity first: keys are `&'static str` literals, and a given
/// call site passes the same literal — hence the same address — every time.
/// A pointer hit costs a couple of comparisons instead of the string
/// comparisons a `BTreeMap<&str, _>` walk performs. Distinct literals with
/// equal text (e.g. a test querying a counter the FTL bumps) fall back to a
/// content scan, so behaviour matches a name-keyed map exactly; iteration
/// sorts by name so dumps and diffs are byte-identical to the old layout.
///
/// # Examples
///
/// ```
/// use checkin_sim::CounterSet;
///
/// let mut c = CounterSet::new();
/// c.add("flash.program", 3);
/// c.incr("flash.program");
/// assert_eq!(c.get("flash.program"), 4);
/// assert_eq!(c.get("flash.erase"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterSet {
    /// `(key, value)` in first-touch order; names are unique by content.
    entries: Vec<(&'static str, u64)>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &'static str, n: u64) {
        // Fast path: same literal, same address.
        for e in &mut self.entries {
            if std::ptr::eq(e.0, key) {
                e.1 += n;
                return;
            }
        }
        self.add_slow(key, n);
    }

    /// Content-equality fallback for a key literal whose address was not
    /// seen before (first touch, or the same name from another call site).
    #[cold]
    fn add_slow(&mut self, key: &'static str, n: u64) {
        for e in &mut self.entries {
            if e.0 == key {
                e.1 += n;
                return;
            }
        }
        self.entries.push((key, n));
    }

    /// Adds one to counter `key`.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.0 == key)
            .map(|e| e.1)
            .unwrap_or(0)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut sorted: Vec<(&'static str, u64)> = self.entries.clone();
        sorted.sort_unstable_by(|a, b| a.0.cmp(b.0));
        sorted.into_iter()
    }

    /// Computes `self - earlier` per key (keys absent earlier count from 0).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter decreased, which would indicate
    /// a bookkeeping bug (counters are monotone).
    pub fn delta_since(&self, earlier: &CounterSet) -> CounterSet {
        let mut out = CounterSet::new();
        for (k, v) in self.iter() {
            let before = earlier.get(k);
            debug_assert!(v >= before, "counter {k} decreased: {before} -> {v}");
            let d = v.saturating_sub(before);
            if d > 0 {
                out.add(k, d);
            }
        }
        out
    }

    /// Merges another set into this one by summing matching keys.
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }

    /// True when no counters exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl PartialEq for CounterSet {
    fn eq(&self, other: &Self) -> bool {
        // Content equality regardless of first-touch order.
        self.entries.len() == other.entries.len() && self.iter().eq(other.iter())
    }
}

impl Eq for CounterSet {}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return write!(f, "(no counters)");
        }
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = CounterSet::new();
        c.add("a", 5);
        c.incr("a");
        assert_eq!(c.get("a"), 6);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn delta_since_snapshot() {
        let mut c = CounterSet::new();
        c.add("x", 10);
        let snap = c.clone();
        c.add("x", 7);
        c.add("y", 2);
        let d = c.delta_since(&snap);
        assert_eq!(d.get("x"), 7);
        assert_eq!(d.get("y"), 2);
    }

    #[test]
    fn merge_sums() {
        let mut a = CounterSet::new();
        a.add("k", 1);
        let mut b = CounterSet::new();
        b.add("k", 2);
        b.add("j", 3);
        a.merge(&b);
        assert_eq!(a.get("k"), 3);
        assert_eq!(a.get("j"), 3);
    }

    #[test]
    fn display_lists_counters() {
        let mut c = CounterSet::new();
        assert_eq!(c.to_string(), "(no counters)");
        c.add("z", 1);
        c.add("a", 2);
        let s = c.to_string();
        assert!(s.starts_with("a = 2"), "sorted by key: {s}");
    }

    #[test]
    fn iter_is_sorted() {
        let mut c = CounterSet::new();
        c.add("b", 1);
        c.add("a", 1);
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }
}
