//! Throughput measurement over simulated time.

use crate::time::SimTime;

/// Counts completed operations and reports rates over the elapsed
/// simulated interval.
///
/// # Examples
///
/// ```
/// use checkin_sim::{ThroughputMeter, SimTime};
///
/// let mut m = ThroughputMeter::new();
/// m.start(SimTime::ZERO);
/// for _ in 0..500 { m.complete_op(); }
/// m.finish(SimTime::from_nanos(1_000_000_000));
/// assert_eq!(m.ops_per_sec(), 500.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    started: SimTime,
    finished: SimTime,
    ops: u64,
    bytes: u64,
}

impl ThroughputMeter {
    /// Creates a meter with no interval set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the beginning of the measured interval.
    pub fn start(&mut self, at: SimTime) {
        self.started = at;
    }

    /// Marks the end of the measured interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the start.
    pub fn finish(&mut self, at: SimTime) {
        debug_assert!(at >= self.started, "finish before start");
        self.finished = at;
    }

    /// Records one completed operation.
    pub fn complete_op(&mut self) {
        self.ops += 1;
    }

    /// Records `n` bytes moved (for bandwidth-style reporting).
    pub fn add_bytes(&mut self, n: u64) {
        self.bytes += n;
    }

    /// Completed operation count.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Length of the measured interval in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.finished
            .saturating_duration_since(self.started)
            .as_secs_f64()
    }

    /// Operations per second over the interval (zero if the interval is
    /// empty).
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Megabytes per second over the interval.
    pub fn mib_per_sec(&self) -> f64 {
        let secs = self.elapsed_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / (1024.0 * 1024.0) / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_over_interval() {
        let mut m = ThroughputMeter::new();
        m.start(SimTime::from_nanos(1_000_000_000));
        for _ in 0..100 {
            m.complete_op();
        }
        m.finish(SimTime::from_nanos(3_000_000_000));
        assert_eq!(m.ops_per_sec(), 50.0);
        assert_eq!(m.ops(), 100);
    }

    #[test]
    fn empty_interval_yields_zero_rate() {
        let mut m = ThroughputMeter::new();
        m.complete_op();
        assert_eq!(m.ops_per_sec(), 0.0);
        assert_eq!(m.mib_per_sec(), 0.0);
    }

    #[test]
    fn bandwidth() {
        let mut m = ThroughputMeter::new();
        m.start(SimTime::ZERO);
        m.add_bytes(2 * 1024 * 1024);
        m.finish(SimTime::from_nanos(1_000_000_000));
        assert_eq!(m.mib_per_sec(), 2.0);
        assert_eq!(m.bytes(), 2 * 1024 * 1024);
    }
}
