//! Latency recording with percentile queries.
//!
//! [`LatencyRecorder`] is a log-bucketed histogram (HDR-style): buckets grow
//! geometrically so that any recorded value is resolved to within ~1.6% of
//! its true magnitude while memory stays constant. That precision comfortably
//! supports the paper's 99.9th/99.99th-percentile comparisons.

use std::fmt;

use crate::time::SimDuration;

/// Number of linear sub-buckets per power-of-two bucket. 64 sub-buckets
/// bound relative quantile error to 1/64 ≈ 1.6%.
const SUB_BUCKETS: u64 = 64;
const SUB_BITS: u32 = 6;

/// Histogram of durations supporting mean, max and arbitrary quantiles.
///
/// # Examples
///
/// ```
/// use checkin_sim::{LatencyRecorder, SimDuration};
///
/// let mut rec = LatencyRecorder::new();
/// for us in 1..=1000u64 {
///     rec.record(SimDuration::from_micros(us));
/// }
/// let p99 = rec.quantile(0.99);
/// assert!(p99 >= SimDuration::from_micros(980) && p99 <= SimDuration::from_micros(1010));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    buckets: Vec<u64>,
    count: u64,
    sum_nanos: u128,
    max: SimDuration,
    min: SimDuration,
}

fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS {
        return nanos as usize;
    }
    let msb = 63 - nanos.leading_zeros();
    let shift = msb - SUB_BITS;
    let base = (shift as u64 + 1) * SUB_BUCKETS;
    let offset = (nanos >> shift) - SUB_BUCKETS;
    (base + offset) as usize
}

fn bucket_upper_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let shift = index / SUB_BUCKETS - 1;
    let offset = index % SUB_BUCKETS;
    (SUB_BUCKETS + offset + 1) << shift
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LatencyRecorder {
            buckets: Vec::new(),
            count: 0,
            sum_nanos: 0,
            max: SimDuration::ZERO,
            min: SimDuration::MAX,
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, latency: SimDuration) {
        let idx = bucket_index(latency.as_nanos());
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_nanos += latency.as_nanos() as u128;
        self.max = self.max.max(latency);
        self.min = self.min.min(latency);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_nanos / self.count as u128) as u64)
    }

    /// Largest recorded sample, or zero when empty.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Smallest recorded sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in `[0, 1]` (e.g. `0.999` for p99.9), resolved
    /// to the upper edge of its histogram bucket. Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return SimDuration::from_nanos(bucket_upper_bound(idx).min(self.max.as_nanos()));
            }
        }
        self.max
    }

    /// Merges another recorder's samples into this one.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max = self.max.max(other.max);
        if other.count > 0 {
            self.min = self.min.min(other.min);
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl fmt::Display for LatencyRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p99={} p99.9={} p99.99={} max={}",
            self.count,
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.quantile(0.999),
            self.quantile(0.9999),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [1u64, 63, 64, 65, 1_000, 12_345, 1_000_000, u32::MAX as u64] {
            let ub = bucket_upper_bound(bucket_index(v));
            assert!(ub >= v, "upper bound {ub} below value {v}");
            assert!(
                (ub - v) as f64 <= v as f64 / 32.0 + 1.0,
                "bucket too coarse: {v} -> {ub}"
            );
        }
    }

    #[test]
    fn empty_recorder_is_zeroes() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.mean(), SimDuration::ZERO);
        assert_eq!(r.quantile(0.999), SimDuration::ZERO);
        assert_eq!(r.min(), SimDuration::ZERO);
    }

    #[test]
    fn mean_and_extremes() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_nanos(10));
        r.record(SimDuration::from_nanos(30));
        assert_eq!(r.mean(), SimDuration::from_nanos(20));
        assert_eq!(r.max(), SimDuration::from_nanos(30));
        assert_eq!(r.min(), SimDuration::from_nanos(10));
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut r = LatencyRecorder::new();
        for us in 1..=10_000u64 {
            r.record(SimDuration::from_micros(us));
        }
        for (q, expect_us) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.999, 9_990.0)] {
            let got = r.quantile(q).as_micros_f64();
            let err = (got - expect_us).abs() / expect_us;
            assert!(err < 0.04, "q={q}: got {got}us, want ~{expect_us}us");
        }
    }

    #[test]
    fn quantile_one_is_max() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_micros(3));
        r.record(SimDuration::from_micros(7));
        assert_eq!(r.quantile(1.0), SimDuration::from_micros(7));
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(SimDuration::from_micros(1));
        b.record(SimDuration::from_micros(100));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_micros(100));
        assert_eq!(a.min(), SimDuration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        LatencyRecorder::new().quantile(1.5);
    }

    #[test]
    fn heavy_tail_percentiles_separate() {
        // 99% fast ops at 100us, 1% slow at 50ms: p99.9 must see the tail.
        let mut r = LatencyRecorder::new();
        for _ in 0..9_900 {
            r.record(SimDuration::from_micros(100));
        }
        for _ in 0..100 {
            r.record(SimDuration::from_millis(50));
        }
        assert!(r.quantile(0.5) < SimDuration::from_micros(110));
        assert!(r.quantile(0.999) > SimDuration::from_millis(45));
    }
}
