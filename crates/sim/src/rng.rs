//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible from a seed, so this
//! module provides a small, self-contained xoshiro256** generator rather
//! than threading an external RNG crate through every substrate. (The
//! workload crate, which needs distributions, uses `rand` on top of its own
//! generator; substrates only need cheap uniform draws.)

/// SplitMix64, used to expand a single `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fast, high-quality deterministic generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use checkin_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // reproducible
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // Avoid the all-zero state (cannot occur from splitmix64 of any
        // seed in practice, but guard anyway).
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }

    /// Derives an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_from_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bound() {
        let mut r = SimRng::seed_from(99);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::seed_from(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut r = SimRng::seed_from(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "got {hits}");
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SimRng::seed_from(1);
        let mut c = a.fork();
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        SimRng::seed_from(0).gen_range(0);
    }
}
