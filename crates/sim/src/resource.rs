//! Busy-until resource timelines.
//!
//! Device-internal contention (a flash die, a PCIe link, a firmware CPU) is
//! modelled by [`Resource`]: a FIFO server that is busy until some instant.
//! Scheduling an operation returns the `(start, finish)` window it occupies,
//! which is exact for FIFO service because the surrounding simulation
//! processes events in non-decreasing time order.

use crate::time::{SimDuration, SimTime};

/// A single FIFO server with utilization accounting.
///
/// # Examples
///
/// ```
/// use checkin_sim::{Resource, SimTime, SimDuration};
///
/// let mut link = Resource::new("pcie");
/// let w1 = link.schedule(SimTime::ZERO, SimDuration::from_micros(5));
/// let w2 = link.schedule(SimTime::ZERO, SimDuration::from_micros(5));
/// assert_eq!(w1.finish, w2.start); // second transfer queues behind the first
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: &'static str,
    busy_until: SimTime,
    busy_time: SimDuration,
    ops: u64,
}

/// The time window an operation occupies on a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// When service begins (>= request time).
    pub start: SimTime,
    /// When service completes.
    pub finish: SimTime,
}

impl Window {
    /// Queueing delay plus service time as seen by the requester.
    pub fn latency_from(&self, requested_at: SimTime) -> SimDuration {
        self.finish.saturating_duration_since(requested_at)
    }
}

impl Resource {
    /// Creates an idle resource. `name` appears in debug output only.
    pub fn new(name: &'static str) -> Self {
        Resource {
            name,
            busy_until: SimTime::ZERO,
            busy_time: SimDuration::ZERO,
            ops: 0,
        }
    }

    /// Reserves the resource for `duration` starting no earlier than `at`,
    /// queuing FIFO behind outstanding work. Returns the occupied window.
    pub fn schedule(&mut self, at: SimTime, duration: SimDuration) -> Window {
        let start = at.max(self.busy_until);
        let finish = start + duration;
        self.busy_until = finish;
        self.busy_time += duration;
        self.ops += 1;
        Window { start, finish }
    }

    /// Earliest instant at which new work could begin.
    pub fn available_at(&self) -> SimTime {
        self.busy_until
    }

    /// True when the resource has no queued work at instant `at`.
    pub fn is_idle_at(&self, at: SimTime) -> bool {
        self.busy_until <= at
    }

    /// Total time spent serving operations.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Number of operations served.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Fraction of `[0, horizon]` spent busy.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / horizon.as_secs_f64()
    }

    /// Debug label.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A pool of identical FIFO servers; work goes to the earliest-free one.
///
/// Models k-wide parallelism such as independent flash channels when
/// channel identity does not matter, or an NVMe queue-pair pool.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    servers: Vec<Resource>,
    /// Min-heap of `(available_at, index)` with exactly one entry per
    /// server. Selection is the lexicographic minimum — identical to a
    /// first-minimum linear scan, without the O(n) walk per schedule.
    /// Entries go stale only through [`ResourcePool::schedule_on`] and
    /// are refreshed lazily when they surface at the top.
    ready: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, usize)>>,
}

impl ResourcePool {
    /// Creates `n` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(name: &'static str, n: usize) -> Self {
        assert!(n > 0, "resource pool must have at least one server");
        ResourcePool {
            servers: (0..n).map(|_| Resource::new(name)).collect(),
            ready: (0..n)
                .map(|i| std::cmp::Reverse((SimTime::ZERO, i)))
                .collect(),
        }
    }

    /// Schedules on the earliest-available server; returns (server index,
    /// window). Ties pick the lowest server index.
    pub fn schedule(&mut self, at: SimTime, duration: SimDuration) -> (usize, Window) {
        let idx = loop {
            let std::cmp::Reverse((avail, idx)) = *self.ready.peek().expect("pool is non-empty");
            if self.servers[idx].available_at() == avail {
                break idx;
            }
            // Stale (rescheduled via schedule_on since pushed): refresh.
            self.ready.pop();
            self.ready
                .push(std::cmp::Reverse((self.servers[idx].available_at(), idx)));
        };
        self.ready.pop();
        let win = self.servers[idx].schedule(at, duration);
        self.ready
            .push(std::cmp::Reverse((self.servers[idx].available_at(), idx)));
        (idx, win)
    }

    /// Schedules on a specific server (e.g. a request pinned to one die).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn schedule_on(&mut self, idx: usize, at: SimTime, duration: SimDuration) -> Window {
        self.servers[idx].schedule(at, duration)
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Always false: pools are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Accesses a server for inspection.
    pub fn server(&self, idx: usize) -> &Resource {
        &self.servers[idx]
    }

    /// Total busy time across servers.
    pub fn busy_time(&self) -> SimDuration {
        self.servers.iter().map(Resource::busy_time).sum()
    }

    /// Total operations served across servers.
    pub fn ops(&self) -> u64 {
        self.servers.iter().map(Resource::ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serialization() {
        let mut r = Resource::new("die");
        let w1 = r.schedule(SimTime::from_nanos(0), SimDuration::from_nanos(100));
        let w2 = r.schedule(SimTime::from_nanos(10), SimDuration::from_nanos(50));
        assert_eq!(w1.start, SimTime::from_nanos(0));
        assert_eq!(w1.finish, SimTime::from_nanos(100));
        assert_eq!(w2.start, SimTime::from_nanos(100));
        assert_eq!(w2.finish, SimTime::from_nanos(150));
    }

    #[test]
    fn idle_gap_is_not_worked() {
        let mut r = Resource::new("die");
        r.schedule(SimTime::from_nanos(0), SimDuration::from_nanos(10));
        let w = r.schedule(SimTime::from_nanos(100), SimDuration::from_nanos(10));
        assert_eq!(w.start, SimTime::from_nanos(100));
        assert_eq!(r.busy_time(), SimDuration::from_nanos(20));
        assert_eq!(r.ops(), 2);
    }

    #[test]
    fn utilization_fraction() {
        let mut r = Resource::new("cpu");
        r.schedule(SimTime::ZERO, SimDuration::from_nanos(25));
        assert!((r.utilization(SimTime::from_nanos(100)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn window_latency_includes_queueing() {
        let mut r = Resource::new("link");
        r.schedule(SimTime::ZERO, SimDuration::from_nanos(100));
        let w = r.schedule(SimTime::from_nanos(20), SimDuration::from_nanos(30));
        assert_eq!(
            w.latency_from(SimTime::from_nanos(20)),
            SimDuration::from_nanos(110)
        );
    }

    #[test]
    fn pool_balances_to_earliest_free() {
        let mut p = ResourcePool::new("chan", 2);
        let (i1, _) = p.schedule(SimTime::ZERO, SimDuration::from_nanos(100));
        let (i2, w2) = p.schedule(SimTime::ZERO, SimDuration::from_nanos(100));
        assert_ne!(i1, i2);
        assert_eq!(w2.start, SimTime::ZERO); // second server was free
        let (_, w3) = p.schedule(SimTime::ZERO, SimDuration::from_nanos(10));
        assert_eq!(w3.start, SimTime::from_nanos(100)); // both busy now
    }

    #[test]
    fn pool_pinned_scheduling() {
        let mut p = ResourcePool::new("die", 3);
        let w = p.schedule_on(2, SimTime::ZERO, SimDuration::from_nanos(5));
        assert_eq!(w.finish, SimTime::from_nanos(5));
        assert_eq!(p.server(2).ops(), 1);
        assert_eq!(p.ops(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_panics() {
        let _ = ResourcePool::new("x", 0);
    }

    #[test]
    fn idle_check() {
        let mut r = Resource::new("x");
        assert!(r.is_idle_at(SimTime::ZERO));
        r.schedule(SimTime::ZERO, SimDuration::from_nanos(10));
        assert!(!r.is_idle_at(SimTime::from_nanos(5)));
        assert!(r.is_idle_at(SimTime::from_nanos(10)));
    }
}
