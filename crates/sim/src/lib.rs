//! Deterministic discrete-event simulation substrate for the Check-In
//! reproduction.
//!
//! This crate holds the building blocks every other layer of the simulator
//! is made of:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond simulated time;
//! * [`EventQueue`] — a future-event list with FIFO tie-breaking;
//! * [`Resource`] / [`ResourcePool`] — busy-until FIFO servers used to model
//!   contention on flash dies, channels, the PCIe link and firmware CPUs;
//! * [`LatencyRecorder`], [`ThroughputMeter`], [`CounterSet`] — measurement;
//! * [`SimRng`] — a self-contained, seedable xoshiro256** generator;
//! * [`Tracer`] / [`TraceRing`] — ring-buffered structured trace events
//!   on the logical clock, zero-overhead when disabled.
//!
//! Everything is deterministic: two runs with the same seed produce the
//! same event order, the same statistics and the same figures.
//!
//! # Examples
//!
//! A tiny simulation of a queue draining through one server:
//!
//! ```
//! use checkin_sim::{EventQueue, Resource, SimDuration, SimTime, LatencyRecorder};
//!
//! let mut events = EventQueue::new();
//! let mut server = Resource::new("server");
//! let mut lat = LatencyRecorder::new();
//!
//! // Ten jobs arrive at 1us intervals, each needing 3us of service.
//! for i in 0..10u64 {
//!     events.schedule(SimTime::from_nanos(i * 1_000), i);
//! }
//! while let Some((now, _job)) = events.pop() {
//!     let window = server.schedule(now, SimDuration::from_micros(3));
//!     lat.record(window.latency_from(now));
//! }
//! assert_eq!(lat.count(), 10);
//! assert!(lat.max() > lat.min()); // later jobs queued behind earlier ones
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod resource;
mod rng;
mod stats;
mod time;
mod trace;

pub use event::EventQueue;
pub use resource::{Resource, ResourcePool, Window};
pub use rng::SimRng;
pub use stats::{CounterSet, LatencyRecorder, ThroughputMeter};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceLayer, TraceRing, Tracer, MAX_TRACE_FIELDS};
