//! `corruptmatrix` — the end-to-end data-integrity sweep behind the
//! no-silent-corruption contract (DESIGN.md §13).
//!
//! Where `crashmatrix` proves that acked writes survive power cuts, this
//! matrix proves that *damaged data is never served as if it were good*.
//! Every tier drives a full `KvEngine` workload against a small simulated
//! device and checks reads against a shadow key→version model under one
//! of the deterministic corruption injectors:
//!
//! * **Torn-write power cuts** — power cuts with `torn_writes` enabled
//!   leave a partially-programmed page whose sealed checksums no longer
//!   verify. Recovery must reject the torn tail (SPOR OOB scan) and the
//!   crashmatrix durability contract must still hold.
//! * **Retention bit-rot (data)** — seeded bit-flips in stored units,
//!   injected both live (between operations, detected by foreground
//!   reads, GC relocation and the background scrubber) and post-hoc
//!   (after a clean run, then verified / scrubbed / healed).
//! * **Retention bit-rot (OOB)** — flips in the recovery-critical
//!   `lpn`/`sequence` stamps. Live reads are unaffected (the mapping is
//!   in RAM) but the SPOR scan must reject every rotted record.
//! * **Misdirected writes** — programs that report success but land with
//!   scrambled tags; the next verified read must fail typed.
//!
//! The contract checked on every read: the result is either the correct
//! acked value or a *typed* integrity failure (`SsdError::is_integrity`)
//! — never a silently-wrong value, never a panic. A sabotage self-test
//! repeats a run with checksum verification disabled and must *observe*
//! silently-wrong reads, proving the matrix can detect what it hunts.
//!
//! Run with `--release`: the engine carries debug assertions that turn
//! deliberately-served-rot (the sabotage tier) into panics in debug
//! builds before the harness can observe it.
//!
//! Exit status: 0 on PASS, 1 on any integrity failure (or an
//! undetectable sabotage), 2 on bad usage.

use std::collections::BTreeSet;

use checkin_core::{EngineError, KvEngine, Layout, Strategy};
use checkin_flash::{FaultConfig, FaultOp, FaultPlan, FlashArray, FlashGeometry, FlashTiming, Ppn};
use checkin_ftl::{Ftl, FtlConfig, Location, Lpn};
use checkin_sim::SimTime;
use checkin_ssd::{ReadRequest, Ssd, SsdError, SsdTiming};
use checkin_testkit::TestRng;

/// Keys in the workload (dense, all loaded up front).
const RECORDS: u64 = 48;
/// Largest value the workload writes (drives the layout's slot size).
const MAX_RECORD_BYTES: u32 = 2048;
/// Journal zone size in sectors — small enough that checkpoints and GC
/// both happen many times inside one run.
const ZONE_SECTORS: u64 = 384;
/// Operations per run after the initial load.
const OPS: u64 = 700;
/// Compression ratio for sector-aligned journaling (paper default).
const COMPRESSION: f64 = 0.7;
/// Base seed of the whole matrix.
const MATRIX_SEED: u64 = 0xC044_0B7A_2026_0808;
/// Untargeted corruptions injected per post-hoc combo.
const INJECTIONS: u64 = 24;

/// A deliberately tight device: 16 blocks of 16 pages (1 MiB) against a
/// ~512 KiB logical space, so GC runs inside every workload.
fn geometry() -> FlashGeometry {
    FlashGeometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 1,
        blocks_per_plane: 8,
        pages_per_block: 16,
        page_bytes: 4096,
    }
}

fn layout_for(strategy: Strategy) -> Layout {
    Layout::new(
        RECORDS,
        MAX_RECORD_BYTES,
        strategy.default_unit_bytes(),
        ZONE_SECTORS,
    )
}

fn build_ssd(strategy: Strategy, verify_checksums: bool) -> Ssd {
    let flash = FlashArray::new(geometry(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: strategy.default_unit_bytes(),
            write_points: 2,
            gc_threshold_blocks: 3,
            gc_soft_threshold_blocks: 6,
            write_buffer_units: 16,
            verify_checksums,
            ..FtlConfig::default()
        },
    )
    .expect("valid FTL config");
    Ssd::new(ftl, SsdTiming::paper_default())
}

/// What the engine acknowledged for one key.
#[derive(Clone, Copy)]
struct ShadowKey {
    version: u64,
    deleted: bool,
}

#[derive(Clone, Copy)]
enum Op {
    Update(u32),
    Insert(u32),
    Delete,
}

/// One driven workload and everything needed to judge it afterwards.
struct Driven {
    ssd: Ssd,
    engine: KvEngine,
    shadow: Vec<ShadowKey>,
    /// Key of the single in-flight op when the run stopped early (power
    /// cut or typed integrity failure) — excluded from strict checking.
    inflight: Option<u64>,
    /// A power cut ended the run.
    cut: bool,
    /// A *checkpoint* died on a typed integrity failure: data placement
    /// is mid-transition, so version-exact verification is unsound.
    cp_aborted: bool,
    t: SimTime,
}

fn is_power_loss(e: &EngineError) -> bool {
    matches!(e, EngineError::Ssd(SsdError::Ftl(f)) if f.is_power_loss())
}

fn is_integrity(e: &EngineError) -> bool {
    matches!(e, EngineError::Ssd(s) if s.is_integrity())
}

fn apply_op(
    engine: &mut KvEngine,
    ssd: &mut Ssd,
    key: u64,
    op: Op,
    t: SimTime,
) -> Result<SimTime, EngineError> {
    match op {
        Op::Update(bytes) => engine.update(ssd, key, bytes, t),
        Op::Insert(bytes) => engine.insert(ssd, key, bytes, t),
        Op::Delete => engine.delete(ssd, key, t),
    }
}

/// Checkpoint, then let GC and the background scrubber use the idle
/// window — the same idle-work order the system loop uses.
fn checkpoint_gc_scrub(
    engine: &mut KvEngine,
    ssd: &mut Ssd,
    t: SimTime,
) -> Result<SimTime, EngineError> {
    let out = engine.checkpoint(ssd, t)?;
    let (_, gc_done) = ssd.background_gc(out.finish, 4)?;
    let (_, scrub_done) = ssd
        .background_scrub(gc_done, 32)
        .map_err(EngineError::Ssd)?;
    Ok(gc_done.max(scrub_done))
}

/// Runs the seeded workload, optionally under `plan` (armed *after* the
/// initial load, so tick indices count steady-state operations). Stops
/// at the first power loss or typed integrity failure; panics on any
/// other failure — corruption must surface typed, never as a crash.
fn drive(strategy: Strategy, seed: u64, plan: Option<FaultPlan>, verify: bool) -> Driven {
    let mut ssd = build_ssd(strategy, verify);
    let layout = layout_for(strategy);
    let mut engine = KvEngine::new(strategy, layout, COMPRESSION);
    let mut rng = TestRng::seed_from(seed);
    let records: Vec<(u64, u32)> = (0..RECORDS)
        .map(|k| (k, rng.range_u32(200, MAX_RECORD_BYTES - 48)))
        .collect();
    let mut t = engine
        .load(&mut ssd, &records, SimTime::ZERO)
        .expect("fault-free load");
    let mut shadow = vec![
        ShadowKey {
            version: 1,
            deleted: false,
        };
        RECORDS as usize
    ];
    if let Some(p) = plan {
        ssd.ftl_mut().flash_mut().arm_faults(p);
    }
    let cp_units = (layout.zone_sectors() / layout.unit_sectors()) / 4;
    let mut inflight = None;
    let mut cut = false;
    let mut cp_aborted = false;

    'ops: for _ in 0..OPS {
        if engine.journal_used_units() >= cp_units {
            match checkpoint_gc_scrub(&mut engine, &mut ssd, t) {
                Ok(done) => t = done,
                Err(e) if is_power_loss(&e) => {
                    cut = true;
                    break 'ops;
                }
                Err(e) if is_integrity(&e) => {
                    cp_aborted = true;
                    break 'ops;
                }
                Err(e) => panic!("{strategy} seed {seed}: checkpoint failed: {e}"),
            }
        }
        let key = rng.below(RECORDS);
        let entry = shadow[key as usize];
        let bytes = rng.range_u32(200, MAX_RECORD_BYTES - 48);
        let op = if entry.deleted {
            Op::Insert(bytes)
        } else if rng.below(100) < 10 {
            Op::Delete
        } else {
            Op::Update(bytes)
        };
        let mut result = apply_op(&mut engine, &mut ssd, key, op, t);
        if matches!(result, Err(EngineError::JournalFull)) {
            match checkpoint_gc_scrub(&mut engine, &mut ssd, t) {
                Ok(done) => t = done,
                Err(e) if is_power_loss(&e) => {
                    cut = true;
                    break 'ops;
                }
                Err(e) if is_integrity(&e) => {
                    cp_aborted = true;
                    break 'ops;
                }
                Err(e) => panic!("{strategy} seed {seed}: checkpoint failed: {e}"),
            }
            result = apply_op(&mut engine, &mut ssd, key, op, t);
        }
        match result {
            Ok(done) => {
                t = done;
                shadow[key as usize] = ShadowKey {
                    version: entry.version + 1,
                    deleted: matches!(op, Op::Delete),
                };
            }
            Err(e) if is_power_loss(&e) => {
                inflight = Some(key);
                cut = true;
                break 'ops;
            }
            Err(e) if is_integrity(&e) => {
                // The op failed typed and was never acked; the key's
                // journal state may dangle, so checking is skipped for
                // it (old value, typed error, or nothing are all fine).
                inflight = Some(key);
                break 'ops;
            }
            Err(e) => panic!("{strategy} seed {seed}: op failed: {e}"),
        }
    }
    Driven {
        ssd,
        engine,
        shadow,
        inflight,
        cut,
        cp_aborted,
        t,
    }
}

/// Integrity verdict of one verified run.
#[derive(Default, Clone, Copy)]
struct Verdict {
    checked: u64,
    /// Reads that returned a *wrong* value without an error — the one
    /// thing the whole matrix exists to rule out.
    silent_wrong: u64,
    /// Acked keys that vanished (engine lost track without an error).
    losses: u64,
    /// Acked deletions that came back readable.
    resurrections: u64,
    /// Reads that failed with a typed integrity error (acceptable:
    /// damage was detected, not served).
    detected_reads: u64,
}

impl Verdict {
    fn absorb(&mut self, other: Verdict) {
        self.checked += other.checked;
        self.silent_wrong += other.silent_wrong;
        self.losses += other.losses;
        self.resurrections += other.resurrections;
        self.detected_reads += other.detected_reads;
    }

    fn clean(&self) -> bool {
        self.silent_wrong == 0 && self.losses == 0 && self.resurrections == 0
    }
}

/// Checks every key against the shadow: each read must return the acked
/// version or fail with a typed integrity error. `skip` excludes the
/// single in-flight key of an aborted run. `allow_detected` is false in
/// tiers where no read may fail at all (e.g. OOB-only rot).
fn verify(
    engine: &mut KvEngine,
    ssd: &mut Ssd,
    shadow: &[ShadowKey],
    skip: Option<u64>,
    t: SimTime,
    announce: bool,
) -> Verdict {
    let mut v = Verdict::default();
    for (key, exp) in shadow.iter().enumerate() {
        let key = key as u64;
        if skip == Some(key) {
            continue;
        }
        v.checked += 1;
        let read = engine.get(ssd, key, t);
        match (exp.deleted, read) {
            (false, Ok(r)) => {
                if r.version != exp.version {
                    v.silent_wrong += 1;
                    if announce {
                        eprintln!(
                            "  SILENT key {key}: acked v{}, served v{} with no error",
                            exp.version, r.version
                        );
                    }
                }
            }
            (false, Err(e)) if is_integrity(&e) => v.detected_reads += 1,
            (false, Err(EngineError::UnknownKey(_))) => {
                v.losses += 1;
                if announce {
                    eprintln!(
                        "  LOSS key {key}: acked v{} unknown to the engine",
                        exp.version
                    );
                }
            }
            (true, Err(EngineError::UnknownKey(_))) => {}
            (true, Ok(r)) => {
                v.resurrections += 1;
                if announce {
                    eprintln!(
                        "  RESURRECTED key {key}: acked delete v{}, readable v{}",
                        exp.version, r.version
                    );
                }
            }
            (true, Err(e)) if is_integrity(&e) => v.detected_reads += 1,
            (_, Err(e)) => panic!("verify read of key {key} failed untyped: {e}"),
        }
    }
    v
}

/// Asserts the FTL's integrity-counter ledger balances: everything
/// detected was either quarantined or corrected, nothing leaked.
fn reconcile_counters(ssd: &Ssd, context: &str) {
    let c = ssd.ftl().counters();
    let detected = c.get("ftl.integrity_detected");
    let quarantined = c.get("ftl.integrity_quarantined");
    let corrected = c.get("ftl.integrity_corrected");
    assert_eq!(
        detected,
        quarantined + corrected,
        "{context}: integrity ledger out of balance \
         (detected {detected} != quarantined {quarantined} + corrected {corrected})"
    );
}

/// Resolves the flash location currently serving `key` (journal entry if
/// live, home slot otherwise), in mapping units.
fn flash_home_of(engine: &KvEngine, ssd: &Ssd, key: u64) -> Option<(Ppn, u32)> {
    let layout = engine.layout();
    let lba = match engine.journal().jmt().lookup(key) {
        Some(e) => e.journal_lba,
        None => layout.home_lba(key),
    };
    let lpn = Lpn(lba / layout.unit_sectors());
    match ssd.ftl().location_of(lpn) {
        Some(Location::Flash(pun)) => {
            let upp = ssd.ftl().units_per_page();
            Some((pun.page(upp), pun.offset(upp)))
        }
        _ => None,
    }
}

/// Flips one seeded bit in `count` distinct stored data units, probing
/// forward from random start pages. Returns the sites actually hit.
fn inject_data_rot(ssd: &mut Ssd, rng: &mut TestRng, count: u64) -> Vec<(Ppn, u32)> {
    let total = ssd.ftl().flash().geometry().total_pages();
    let upp = u64::from(ssd.ftl().units_per_page());
    let mut hit: BTreeSet<(u64, u32)> = BTreeSet::new();
    for _ in 0..count {
        let start = rng.below(total);
        let offset = rng.below(upp) as u32;
        let mask = 1u64 << rng.below(48);
        for probe in 0..total {
            let ppn = Ppn((start + probe) % total);
            if hit.contains(&(ppn.0, offset)) {
                continue;
            }
            if ssd
                .ftl_mut()
                .flash_mut()
                .sabotage_corrupt_unit(ppn, offset, mask)
            {
                hit.insert((ppn.0, offset));
                break;
            }
        }
    }
    hit.into_iter().map(|(p, o)| (Ppn(p), o)).collect()
}

/// Flips one seeded bit in `count` distinct stored OOB records. Returns
/// the number of records actually rotted.
fn inject_oob_rot(ssd: &mut Ssd, rng: &mut TestRng, count: u64) -> u64 {
    let total = ssd.ftl().flash().geometry().total_pages();
    let upp = u64::from(ssd.ftl().units_per_page());
    let mut hit: BTreeSet<(u64, u32)> = BTreeSet::new();
    for _ in 0..count {
        let start = rng.below(total);
        let index = rng.below(upp) as u32;
        let mask = 1u64 << rng.below(48);
        for probe in 0..total {
            let ppn = Ppn((start + probe) % total);
            for idx in [index, 0] {
                if hit.contains(&(ppn.0, idx)) {
                    continue;
                }
                if ssd
                    .ftl_mut()
                    .flash_mut()
                    .sabotage_corrupt_oob(ppn, idx, mask)
                {
                    hit.insert((ppn.0, idx));
                    break;
                }
            }
            if hit.len() >= count as usize {
                break;
            }
        }
    }
    hit.len() as u64
}

/// Patrols the whole device with the background scrubber (several full
/// wraps of the cursor). Returns (pages scanned, corruptions found).
fn scrub_fully(ssd: &mut Ssd, t: SimTime) -> (u64, u64) {
    let total = ssd.ftl().flash().geometry().total_pages();
    let mut t = t.max(ssd.idle_at());
    let mut scanned = 0u64;
    let mut detected = 0u64;
    // Budget 64 per round; 2 full sweeps of every page.
    for _ in 0..(total.div_ceil(64) * 2 + 2) {
        let (report, done) = ssd
            .background_scrub(t, 64)
            .expect("scrub never fails without armed transients");
        scanned += report.pages_scanned;
        detected += report.detected;
        t = done.max(ssd.idle_at());
    }
    (scanned, detected)
}

// ---------------------------------------------------------------------
// Tiers
// ---------------------------------------------------------------------

/// Profiling pass: same seed, no faults, full per-tick trace.
fn profile(strategy: Strategy, seed: u64) -> Vec<FaultOp> {
    let plan = FaultPlan::new(FaultConfig {
        record_trace: true,
        ..FaultConfig::default()
    });
    let d = drive(strategy, seed, Some(plan), true);
    d.ssd
        .ftl()
        .flash()
        .fault_plan()
        .expect("plan stays armed")
        .trace()
        .iter()
        .map(|&(op, _)| op)
        .collect()
}

/// Picks cut ticks that land on *program* operations, so the torn-write
/// injector actually commits torn pages.
fn choose_program_cuts(trace: &[FaultOp], rng: &mut TestRng, total: usize) -> Vec<u64> {
    let programs: Vec<u64> = trace
        .iter()
        .enumerate()
        .filter(|(_, op)| matches!(op, FaultOp::Program))
        .map(|(i, _)| i as u64 + 1)
        .collect();
    let mut ticks = Vec::new();
    if let (Some(&first), Some(&last)) = (programs.first(), programs.last()) {
        ticks.push(first);
        ticks.push(programs[programs.len() / 2]);
        ticks.push(last);
        while ticks.len() < total {
            ticks.push(programs[rng.below(programs.len() as u64) as usize]);
        }
    }
    ticks.sort_unstable();
    ticks.dedup();
    ticks
}

/// One torn-write combo: cut power on a program tick with torn writes
/// enabled, recover, and hold the crashmatrix durability contract. Any
/// typed integrity error here is a failure too: a torn page must never
/// be *referenced* (its program never completed), so recovery must not
/// surface it at all.
fn run_torn_cut(strategy: Strategy, seed: u64, cut_tick: u64) -> (Verdict, u64) {
    let plan = FaultPlan::new(FaultConfig {
        torn_writes: true,
        ..FaultConfig::power_cut(seed ^ cut_tick, cut_tick)
    });
    let mut d = drive(strategy, seed, Some(plan), true);
    assert!(
        !d.cp_aborted,
        "torn tier arms no rot; checkpoints cannot hit corruption"
    );
    if !d.ssd.powered_off() {
        d.ssd.ftl_mut().flash_mut().cut_power();
        d.inflight = None;
    }
    d.ssd
        .recover_power_loss()
        .expect("SPOR recovery after an injected power cut");
    let torn = d.ssd.ftl().flash().counters().get("flash.torn_writes");
    let (mut engine, t) = KvEngine::recover(
        strategy,
        layout_for(strategy),
        COMPRESSION,
        &mut d.ssd,
        RECORDS,
        d.t,
    )
    .expect("engine recovery");
    let mut v = verify(&mut engine, &mut d.ssd, &d.shadow, d.inflight, t, true);
    // In this tier detected_reads are not acceptable: fold them into
    // losses so the matrix fails loudly if a torn page leaks a mapping.
    v.losses += v.detected_reads;
    v.detected_reads = 0;
    d.ssd
        .ftl()
        .check_invariants()
        .expect("post-recovery invariants");
    (v, torn)
}

/// Accounting for the live-injector tiers.
#[derive(Default, Clone, Copy)]
struct LiveStats {
    rot_events: u64,
    misdirected: u64,
    scrub_pages: u64,
    aborted_ops: u64,
    aborted_cps: u64,
}

/// One live combo: rot or misdirection strikes *while* the workload
/// runs; foreground reads, GC relocation and the scrubber must catch
/// everything that surfaces. Uses Check-In so checkpoints are remap-only
/// — but even a remap checkpoint can do a read-modify-write on a
/// partially-filled unit and die typed. When that happens, journal
/// entries are already retired but remaps are incomplete, so
/// version-exact verification is unsound for that combo: the run is
/// still held to device invariants and a balanced integrity ledger, and
/// the matrix fails if a whole tier ends up unverified.
fn run_live(seed: u64, config: FaultConfig) -> (Verdict, LiveStats) {
    let strategy = Strategy::CheckIn;
    let plan = FaultPlan::new(config);
    let mut d = drive(strategy, seed, Some(plan), true);
    assert!(!d.cut, "live tiers schedule no power cut");
    let mut stats = LiveStats::default();
    if d.inflight.is_some() {
        stats.aborted_ops = 1;
    }
    let verdict = if d.cp_aborted {
        stats.aborted_cps = 1;
        Verdict::default()
    } else {
        let mut engine = d.engine;
        verify(&mut engine, &mut d.ssd, &d.shadow, d.inflight, d.t, true)
    };
    d.ssd
        .ftl()
        .check_invariants()
        .expect("post-live invariants");
    reconcile_counters(&d.ssd, "live tier");
    let fc = d.ssd.ftl().flash().counters();
    stats.rot_events = fc.get("flash.bit_rot_data") + fc.get("flash.bit_rot_oob");
    stats.misdirected = fc.get("flash.misdirected_programs");
    let tc = d.ssd.ftl().counters();
    stats.scrub_pages = tc.get("ftl.scrub_pages");
    (verdict, stats)
}

/// Accounting for the post-hoc tiers.
#[derive(Default, Clone, Copy)]
struct PostStats {
    injected: u64,
    detected_reads: u64,
    scrub_detected: u64,
    healed: u64,
    heal_skipped: u64,
}

/// One post-hoc data-rot combo: run clean, flush, corrupt stored units
/// (including one targeted at a live key), then require every read to be
/// right-or-typed, scrub the whole device, and heal detected keys with
/// fresh writes.
fn run_posthoc_data(strategy: Strategy, seed: u64) -> (Verdict, PostStats) {
    let mut d = drive(strategy, seed, None, true);
    assert!(d.inflight.is_none() && !d.cp_aborted, "clean run");
    let t = d.ssd.flush(d.t).expect("clean flush");
    let mut engine = d.engine;
    let mut rng = TestRng::seed_from(seed ^ 0x0DD_B17);
    let mut stats = PostStats::default();

    // One targeted strike on a live key's current flash unit guarantees
    // the foreground-detection and healing paths run every combo.
    let target_key = rng.below(RECORDS);
    let mut targeted = Vec::new();
    if !d.shadow[target_key as usize].deleted {
        if let Some((ppn, offset)) = flash_home_of(&engine, &d.ssd, target_key) {
            if d.ssd
                .ftl_mut()
                .flash_mut()
                .sabotage_corrupt_unit(ppn, offset, 1 << rng.below(48))
            {
                targeted.push(target_key);
            }
        }
    }
    let sites = inject_data_rot(&mut d.ssd, &mut rng, INJECTIONS);
    stats.injected = sites.len() as u64 + targeted.len() as u64;

    let verdict = verify(&mut engine, &mut d.ssd, &d.shadow, None, t, true);
    stats.detected_reads = verdict.detected_reads;
    let (_, scrub_detected) = scrub_fully(&mut d.ssd, t);
    stats.scrub_detected = scrub_detected;
    reconcile_counters(&d.ssd, "post-hoc data tier");

    // Heal: every key whose read failed typed gets a fresh write, after
    // which it must read back clean at the bumped version.
    for key in 0..RECORDS {
        let exp = d.shadow[key as usize];
        if exp.deleted {
            continue;
        }
        let r = engine.get(&mut d.ssd, key, t);
        match r {
            Ok(_) => {}
            Err(e) if is_integrity(&e) => {
                let mut w = engine.update(&mut d.ssd, key, 512, t);
                if matches!(w, Err(EngineError::JournalFull)) {
                    match checkpoint_gc_scrub(&mut engine, &mut d.ssd, t) {
                        Ok(_) => w = engine.update(&mut d.ssd, key, 512, t),
                        Err(e) if is_integrity(&e) => {
                            // A copy checkpoint tripped on another
                            // quarantined unit; healing is blocked but
                            // nothing was served wrong.
                            stats.heal_skipped += 1;
                            continue;
                        }
                        Err(e) => panic!("heal checkpoint failed: {e}"),
                    }
                }
                match w {
                    Ok(_) => {
                        let back = engine
                            .get(&mut d.ssd, key, t)
                            .expect("healed key reads clean");
                        assert_eq!(back.version, exp.version + 1, "healed key version");
                        stats.healed += 1;
                    }
                    Err(e) if is_integrity(&e) => stats.heal_skipped += 1,
                    Err(e) => panic!("heal write of key {key} failed: {e}"),
                }
            }
            Err(e) => panic!("heal scan read of key {key} failed untyped: {e}"),
        }
    }
    d.ssd
        .ftl()
        .check_invariants()
        .expect("post-heal invariants");
    reconcile_counters(&d.ssd, "post-hoc data tier after healing");
    (verdict, stats)
}

/// One post-hoc OOB-rot combo: rot recovery stamps only. Live reads use
/// the in-RAM mapping, so every read must still be exactly right; the
/// SPOR OOB scan must reject every rotted record.
fn run_posthoc_oob(strategy: Strategy, seed: u64) -> (Verdict, u64, u64) {
    let mut d = drive(strategy, seed, None, true);
    assert!(d.inflight.is_none() && !d.cp_aborted, "clean run");
    let t = d.ssd.flush(d.t).expect("clean flush");
    let mut rng = TestRng::seed_from(seed ^ 0x00B_407);
    let injected = inject_oob_rot(&mut d.ssd, &mut rng, INJECTIONS / 2);
    let mut engine = d.engine;
    let verdict = verify(&mut engine, &mut d.ssd, &d.shadow, None, t, true);
    assert_eq!(
        verdict.detected_reads, 0,
        "OOB rot must be invisible to mapped reads"
    );
    let snap = d.ssd.scan_oob();
    let rejected = snap.records_rejected();
    assert!(
        rejected <= injected,
        "scan rejected {rejected} records but only {injected} were rotted"
    );
    (verdict, injected, rejected)
}

/// Sabotage self-test: with verification disabled, rot a live key's
/// stored unit and read it back at the *device* level. The read must
/// come back silently wrong — proving the matrix (and the checksums it
/// leans on) detect real damage, not a tautology.
fn sabotage_self_test(seed: u64) -> (bool, bool) {
    let mut observed_silent = false;
    let mut observed_typed = false;
    for verify_on in [false, true] {
        let mut d = drive(Strategy::CheckIn, seed, None, verify_on);
        assert!(d.inflight.is_none() && !d.cp_aborted, "clean run");
        let t = d.ssd.flush(d.t).expect("clean flush");
        let engine = d.engine;
        let mut rng = TestRng::seed_from(seed ^ 0x5AB0);
        for _ in 0..16 {
            let key = rng.below(RECORDS);
            let exp = d.shadow[key as usize];
            if exp.deleted {
                continue;
            }
            let Some((ppn, offset)) = flash_home_of(&engine, &d.ssd, key) else {
                continue;
            };
            if !d
                .ssd
                .ftl_mut()
                .flash_mut()
                .sabotage_corrupt_unit(ppn, offset, 1 << rng.below(48))
            {
                continue;
            }
            let layout = engine.layout();
            let (lba, sectors) = match engine.journal().jmt().lookup(key) {
                Some(e) => (e.journal_lba, e.sectors),
                None => (layout.home_lba(key), layout.slot_sectors() as u32),
            };
            let req = ReadRequest {
                lba,
                sectors,
                key: Some(key),
            };
            match d.ssd.read(&req, t) {
                Ok((frags, _)) => {
                    let version = frags.iter().map(|f| f.version).max().unwrap_or(0);
                    if version != exp.version {
                        observed_silent = true;
                    }
                }
                Err(e) if e.is_integrity() => observed_typed = true,
                Err(e) => panic!("sabotage read failed untyped: {e}"),
            }
        }
    }
    (observed_silent, observed_typed)
}

fn section(title: &str) {
    println!("\n== {title}");
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: corruptmatrix [--quick]");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let strategies: Vec<Strategy> = if quick {
        vec![Strategy::Baseline, Strategy::CheckIn]
    } else {
        Strategy::all().to_vec()
    };
    println!("corruptmatrix ({mode}): {RECORDS} keys, {OPS} ops/run");

    let mut total = Verdict::default();
    let mut combos = 0u64;
    let mut failed = false;

    // ---- Tier 1: torn-write power cuts -----------------------------
    section("torn-write power-cut sweep");
    let torn_seeds: u64 = if quick { 1 } else { 3 };
    let cuts_per_workload: usize = if quick { 4 } else { 7 };
    let mut torn_committed = 0u64;
    for &strategy in &strategies {
        for s in 0..torn_seeds {
            let seed = MATRIX_SEED.wrapping_add(s.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ (strategy.default_unit_bytes() as u64)
                ^ 0x70A2;
            let trace = profile(strategy, seed);
            let mut rng = TestRng::seed_from(seed ^ 0x7042);
            let cuts = choose_program_cuts(&trace, &mut rng, cuts_per_workload);
            let mut torn_here = 0u64;
            for &tick in &cuts {
                combos += 1;
                let (v, torn) = run_torn_cut(strategy, seed, tick);
                torn_here += torn;
                if !v.clean() {
                    eprintln!(
                        "  ^ combo: {} seed {s} torn cut tick {tick}",
                        strategy.label()
                    );
                }
                total.absorb(v);
            }
            torn_committed += torn_here;
            println!(
                "  {:<9} seed {s}: cuts at {:?}, torn pages {torn_here}",
                strategy.label(),
                cuts
            );
        }
    }

    // ---- Tier 2: live retention rot --------------------------------
    section("live bit-rot tier (Check-In, rot strikes mid-workload)");
    let live_seeds: u64 = if quick { 2 } else { 12 };
    let rot_rates = if quick {
        vec![0.002]
    } else {
        vec![0.001, 0.003]
    };
    let mut live = LiveStats::default();
    let mut rot_checked = 0u64;
    for &rate in &rot_rates {
        for s in 0..live_seeds {
            let seed = MATRIX_SEED ^ 0xB17_207 ^ (s << 8) ^ ((rate * 1e6) as u64);
            combos += 1;
            let (v, stats) = run_live(
                seed,
                FaultConfig {
                    seed: seed ^ 0xDECA7,
                    bit_rot_data: rate,
                    bit_rot_oob: rate / 2.0,
                    ..FaultConfig::default()
                },
            );
            rot_checked += v.checked;
            total.absorb(v);
            live.rot_events += stats.rot_events;
            live.scrub_pages += stats.scrub_pages;
            live.aborted_ops += stats.aborted_ops;
            live.aborted_cps += stats.aborted_cps;
        }
    }
    println!(
        "  rot events {}, scrub pages {}, stopped by a typed op failure {}, \
         aborted checkpoints {}",
        live.rot_events, live.scrub_pages, live.aborted_ops, live.aborted_cps
    );

    // ---- Tier 3: live misdirected writes ---------------------------
    section("live misdirected-write tier (Check-In)");
    let mis_seeds: u64 = if quick { 2 } else { 12 };
    let mut misdirected = 0u64;
    let mut mis_checked = 0u64;
    let mut mis_aborted_cps = 0u64;
    for s in 0..mis_seeds {
        let seed = MATRIX_SEED ^ 0x15D1 ^ (s << 16);
        combos += 1;
        let (v, stats) = run_live(
            seed,
            FaultConfig {
                seed: seed ^ 0xAA,
                misdirected_program: 0.004,
                ..FaultConfig::default()
            },
        );
        mis_checked += v.checked;
        total.absorb(v);
        misdirected += stats.misdirected;
        live.aborted_ops += stats.aborted_ops;
        mis_aborted_cps += stats.aborted_cps;
    }
    println!("  misdirected programs {misdirected}, aborted checkpoints {mis_aborted_cps}");

    // ---- Tier 4: post-hoc data rot + scrub + heal ------------------
    section("post-hoc data-rot tier (verify, scrub, heal)");
    let post_seeds: u64 = if quick { 1 } else { 8 };
    let mut post = PostStats::default();
    for &strategy in &strategies {
        for s in 0..post_seeds {
            let seed = MATRIX_SEED ^ 0x9057 ^ (s << 24) ^ (strategy.default_unit_bytes() as u64);
            combos += 1;
            let (v, stats) = run_posthoc_data(strategy, seed);
            total.absorb(v);
            post.injected += stats.injected;
            post.detected_reads += stats.detected_reads;
            post.scrub_detected += stats.scrub_detected;
            post.healed += stats.healed;
            post.heal_skipped += stats.heal_skipped;
        }
    }
    println!(
        "  injected {}, typed read failures {}, scrub detections {}, healed {} (blocked {})",
        post.injected, post.detected_reads, post.scrub_detected, post.healed, post.heal_skipped
    );

    // ---- Tier 5: post-hoc OOB rot vs the SPOR scan -----------------
    section("post-hoc OOB-rot tier (SPOR scan rejection)");
    let oob_seeds: u64 = if quick { 1 } else { 6 };
    let mut oob_injected = 0u64;
    let mut oob_rejected = 0u64;
    for &strategy in &strategies {
        for s in 0..oob_seeds {
            let seed = MATRIX_SEED ^ 0x00B ^ (s << 32) ^ (strategy.default_unit_bytes() as u64);
            combos += 1;
            let (v, injected, rejected) = run_posthoc_oob(strategy, seed);
            total.absorb(v);
            oob_injected += injected;
            oob_rejected += rejected;
        }
    }
    println!("  rotted OOB records {oob_injected}, rejected by the scan {oob_rejected}");

    // ---- Sabotage self-test ----------------------------------------
    section("sabotage self-test (verification disabled)");
    combos += 2;
    let (silent_seen, typed_seen) = sabotage_self_test(MATRIX_SEED ^ 0x5ABC);
    println!(
        "  verification off: silent wrongness {}; verification on: typed failure {}",
        if silent_seen { "OBSERVED" } else { "MISSED" },
        if typed_seen { "OBSERVED" } else { "MISSED" }
    );

    // ---- Summary ----------------------------------------------------
    section(&format!("summary ({mode})"));
    println!("  combos            {combos}");
    println!("  keys checked      {}", total.checked);
    println!("  silently wrong    {}", total.silent_wrong);
    println!("  losses            {}", total.losses);
    println!("  resurrections     {}", total.resurrections);
    println!("  typed detections  {}", total.detected_reads);
    println!("  torn pages        {torn_committed}");

    if !total.clean() {
        eprintln!(
            "FAIL: {} silently-wrong reads, {} losses, {} resurrections",
            total.silent_wrong, total.losses, total.resurrections
        );
        failed = true;
    }
    if torn_committed == 0 {
        eprintln!("FAIL: no torn page was ever committed — the torn tier exercised nothing");
        failed = true;
    }
    if live.rot_events == 0 || live.scrub_pages == 0 || rot_checked == 0 {
        eprintln!(
            "FAIL: live tier impotent (rot events {}, scrub pages {}, keys verified {})",
            live.rot_events, live.scrub_pages, rot_checked
        );
        failed = true;
    }
    if misdirected == 0 || mis_checked == 0 {
        eprintln!(
            "FAIL: misdirect tier impotent (misdirected {misdirected}, keys verified {mis_checked})"
        );
        failed = true;
    }
    if post.detected_reads == 0 || post.scrub_detected == 0 || post.healed == 0 {
        eprintln!(
            "FAIL: post-hoc tier impotent (typed reads {}, scrub detections {}, healed {})",
            post.detected_reads, post.scrub_detected, post.healed
        );
        failed = true;
    }
    if oob_injected == 0 || oob_rejected == 0 {
        eprintln!("FAIL: OOB tier impotent (injected {oob_injected}, rejected {oob_rejected})");
        failed = true;
    }
    if !silent_seen {
        eprintln!("FAIL: sabotage went unobserved — the matrix cannot see silent corruption");
        failed = true;
    }
    if !typed_seen {
        eprintln!("FAIL: sabotage control saw no typed failure with verification on");
        failed = true;
    }
    if !quick && combos < 200 {
        eprintln!("FAIL: only {combos} combos (need >= 200 in full mode)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: {combos} combos, zero silently-wrong reads, \
         {} typed detections, sabotage observed",
        total.detected_reads
    );
}
