//! `gclab` — the GC victim-policy × data-placement laboratory.
//!
//! Sweeps every [`VictimPolicy`] (greedy, cost-benefit, windowed-greedy)
//! across three workload shapes — uniform, zipfian, and write-only — on
//! the GC-pressured ~50 MiB device, under the shipped placement defaults
//! (so the winner justifies the shipped default directly). For each cell
//! it records the write-amplification factor, the Equation (1) lifetime
//! score, and the p99.9 query latency; the matrix lands in the `metrics`
//! section of `BENCH_perf.json` (override with `--out PATH`).
//!
//! On top of the matrix the lab emits:
//!
//! * per-workload `separation_waf_gain_*` comparisons — greedy with
//!   hot/cold stream separation on vs the matrix's separation-off cell,
//!   pricing the placement change alone (>1 means separation reduces
//!   WAF; <1 means its partially-filled same-stream pages cost more
//!   than its GC benefit returns);
//! * per-policy `gclab_waf_*_vs_greedy` comparisons — mean-WAF ratios
//!   against the greedy baseline (>1 means the policy writes less);
//! * a ranking by mean WAF (ties: higher lifetime, then lower p99.9).
//!
//! All ranked quantities come from the deterministic simulation, so the
//! matrix — and therefore the winner — is reproducible bit-for-bit on
//! any host. In full mode the lab exits non-zero if the shipped
//! `SystemConfig` default policy is not the measured winner, keeping the
//! default honest against the data; `--quick` runs a shorter workload
//! and only reports.

use std::path::PathBuf;
use std::time::Instant;

use checkin_bench::harness::{metric, write_json_with, BenchResult, Comparison, Metric};
use checkin_bench::{gc_pressured_config, run};
use checkin_core::{RunReport, Strategy, SystemConfig, VictimPolicy};
use checkin_workload::{AccessPattern, OpMix};

/// Workload shapes the matrix sweeps (name, mix, skew).
const WORKLOADS: [(&str, OpMix, AccessPattern); 3] = [
    ("uniform", OpMix::A, AccessPattern::Uniform),
    ("zipfian", OpMix::A, AccessPattern::Zipfian),
    ("write-only", OpMix::WRITE_ONLY, AccessPattern::Uniform),
];

/// One measured matrix cell.
struct Cell {
    workload: &'static str,
    policy: VictimPolicy,
    waf: f64,
    lifetime: f64,
    p999_us: f64,
}

/// Lab configuration: the GC-pressured device with the given policy and
/// placement, under one of the swept workload shapes.
fn lab_config(
    queries: u64,
    policy: VictimPolicy,
    mix: OpMix,
    pattern: AccessPattern,
    separation: bool,
) -> SystemConfig {
    let mut c = gc_pressured_config(Strategy::CheckIn);
    c.total_queries = queries;
    c.workload.mix = mix;
    c.workload.pattern = pattern;
    c.gc_policy = policy;
    c.stream_separation = separation;
    c
}

/// Runs one configuration, returning the report plus a wall-clock
/// [`BenchResult`] under `name` (the only non-deterministic output).
fn timed_run(name: &str, config: SystemConfig) -> (RunReport, BenchResult) {
    let queries = config.total_queries;
    let start = Instant::now();
    let report = run(config);
    let ns = start.elapsed().as_nanos().max(1);
    let result = BenchResult {
        name: name.to_string(),
        iters: queries,
        best_batch_ns: ns,
        total_iters: queries,
        total_ns: ns,
    };
    println!(
        "  {:<44} {:>12.1} ns/op   ({:.3} s)",
        result.name,
        result.ns_per_op(),
        ns as f64 / 1e9
    );
    (report, result)
}

/// Mean over a policy's cells of one extracted quantity. Non-finite
/// lifetime scores (a run that wore the flash not at all) saturate to
/// `f64::MAX` so they rank as "best possible" without poisoning the mean.
fn policy_mean(cells: &[Cell], policy: VictimPolicy, get: impl Fn(&Cell) -> f64) -> f64 {
    let vals: Vec<f64> = cells
        .iter()
        .filter(|c| c.policy == policy)
        .map(|c| {
            let v = get(c);
            if v.is_finite() {
                v
            } else {
                f64::MAX
            }
        })
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}

fn main() {
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_perf.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match argv.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: gclab [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let queries: u64 = if quick { 40_000 } else { 150_000 };
    println!(
        "gclab ({mode}, {queries} queries/cell) -> {}",
        out.display()
    );

    let mut results = Vec::new();
    let mut comparisons = Vec::new();
    let mut metrics: Vec<Metric> = Vec::new();
    let mut cells: Vec<Cell> = Vec::new();

    // The policy × workload matrix under the shipped placement defaults.
    for policy in VictimPolicy::ALL {
        println!("\n== policy {policy}");
        for (workload, mix, pattern) in WORKLOADS {
            let name = format!("gclab/{workload}/{}", policy.label());
            let config = lab_config(queries, policy, mix, pattern, false);
            let (report, timing) = timed_run(&name, config);
            results.push(timing);
            metrics.push(metric(&format!("{name}/waf"), report.waf, "x"));
            metrics.push(metric(
                &format!("{name}/lifetime"),
                report.lifetime_score,
                "score",
            ));
            let p999_us = report.latency.p999.as_micros_f64();
            metrics.push(metric(&format!("{name}/p999"), p999_us, "us"));
            metrics.push(metric(
                &format!("{name}/erases"),
                report.flash.erases as f64,
                "blocks",
            ));
            cells.push(Cell {
                workload,
                policy,
                waf: report.waf,
                lifetime: report.lifetime_score,
                p999_us,
            });
        }
    }

    // Pricing the placement change alone: greedy with hot/cold stream
    // separation on, per workload, against the matrix's separation-off
    // greedy cells.
    println!("\n== stream separation on (greedy A/B)");
    for (workload, mix, pattern) in WORKLOADS {
        let name = format!("gclab/{workload}/greedy-separated");
        let config = lab_config(queries, VictimPolicy::Greedy, mix, pattern, true);
        let (report, timing) = timed_run(&name, config);
        metrics.push(metric(&format!("{name}/waf"), report.waf, "x"));
        let off_waf = cells
            .iter()
            .find(|c| c.workload == workload && c.policy == VictimPolicy::Greedy)
            .map_or(f64::NAN, |c| c.waf);
        let gain = off_waf / report.waf;
        println!("  separation WAF gain ({workload}): {gain:.3}x");
        comparisons.push(Comparison {
            name: format!("separation_waf_gain_{workload}"),
            baseline: format!("gclab/{workload}/greedy"),
            candidate: name.clone(),
            speedup: gain,
        });
        results.push(timing);
    }

    // Ranking: mean WAF across workloads, ties broken by higher lifetime
    // then lower tail latency. All simulation-deterministic.
    println!("\n== ranking (mean over {} workloads)", WORKLOADS.len());
    let greedy_waf = policy_mean(&cells, VictimPolicy::Greedy, |c| c.waf);
    let mut ranked: Vec<(VictimPolicy, f64, f64, f64)> = VictimPolicy::ALL
        .into_iter()
        .map(|p| {
            (
                p,
                policy_mean(&cells, p, |c| c.waf),
                policy_mean(&cells, p, |c| c.lifetime),
                policy_mean(&cells, p, |c| c.p999_us),
            )
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.1.total_cmp(&b.1)
            .then(b.2.total_cmp(&a.2))
            .then(a.3.total_cmp(&b.3))
    });
    for (p, waf, lifetime, p999) in &ranked {
        println!(
            "  {:<24} mean waf {waf:.4}   mean lifetime {lifetime:.1}   mean p99.9 {p999:.1} us",
            p.label()
        );
        if *p != VictimPolicy::Greedy {
            comparisons.push(Comparison {
                name: format!("gclab_waf_{}_vs_greedy", p.label()),
                baseline: "gclab mean waf: greedy".into(),
                candidate: format!("gclab mean waf: {}", p.label()),
                speedup: greedy_waf / waf,
            });
        }
    }
    let winner = ranked[0].0;
    println!("\nwinner: {winner}");

    if let Err(e) = write_json_with(&out, "gclab", mode, &results, &comparisons, &metrics) {
        eprintln!("error: could not write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("wrote {}", out.display());

    // The shipped default must be the measured winner. The quick matrix
    // runs a shorter workload whose winner may legitimately differ, so
    // it reports without enforcing.
    let shipped = SystemConfig::for_strategy(Strategy::CheckIn).gc_policy;
    if shipped == winner {
        println!("PASS: shipped default policy `{shipped}` is the measured winner");
    } else if quick {
        println!(
            "NOTE: quick-mode winner `{winner}` differs from shipped default \
             `{shipped}` (not enforced under --quick)"
        );
    } else {
        eprintln!(
            "FAIL: shipped default policy `{shipped}` is not the measured \
             winner `{winner}` — update SystemConfig::default or re-justify"
        );
        std::process::exit(1);
    }
}
