//! `crashmatrix` — the crash/power-loss fault-injection sweep behind the
//! acked-write durability contract (DESIGN.md §9).
//!
//! For every `(strategy, workload seed, cut tick)` combination the matrix
//! drives a full `KvEngine` workload (updates, deletes, inserts,
//! checkpoints, background GC) against a small simulated device, cuts
//! power at a scheduled fault-clock tick, recovers the device
//! (`Ssd::recover_power_loss`) and the engine (`KvEngine::recover`), and
//! checks the result against a shadow key→version model:
//!
//! * **No acked-write loss** — every operation the engine acknowledged
//!   before the cut is readable afterwards with the acked version.
//! * **No resurrection** — a key whose acked deletion preceded the cut
//!   stays deleted after recovery.
//! * The single in-flight operation (the one that observed the power
//!   loss) may land in either its old or new state, but nothing else.
//!
//! Cut ticks are chosen from a profiling pass that records the per-tick
//! `(op, phase)` trace, so the matrix deliberately lands cuts inside the
//! Algorithm-1 checkpoint remap walk, inside GC migration, and inside
//! host deallocation, on top of uniformly random steady-state cuts. A
//! batched-admission tier repeats the sweep with ops admitted in groups
//! of 16 and acked only at batch completion — cuts that land mid-batch
//! must leave every unacked op in either its old or new state, with no
//! acked write dropped or double-applied. A victim-policy tier repeats
//! the sweep under cost-benefit and windowed-greedy GC victim selection
//! with every cut placed inside a GC migration, since those policies
//! relocate blocks the greedy sweep never touches mid-flight. A media-noise tier re-runs
//! the workload under transient read/program/erase failures plus grown
//! bad blocks and requires a byte-perfect final state. Finally a sabotage self-test deliberately breaks
//! recovery (dropping the capacitor-backed write buffer) and requires
//! the harness to *detect* the loss — proving the matrix can fail.
//!
//! Exit status: 0 on PASS, 1 on any durability failure (or an
//! undetectable sabotage), 2 on bad usage.

use checkin_core::{EngineError, KvEngine, Layout, Strategy};
use checkin_flash::{
    FaultConfig, FaultOp, FaultPhase, FaultPlan, FlashArray, FlashGeometry, FlashTiming,
};
use checkin_ftl::{Ftl, FtlConfig, VictimPolicy};
use checkin_sim::SimTime;
use checkin_ssd::{Ssd, SsdError, SsdTiming};
use checkin_testkit::TestRng;

/// Keys in the workload (dense, all loaded up front).
const RECORDS: u64 = 48;
/// Largest value the workload writes (drives the layout's slot size).
const MAX_RECORD_BYTES: u32 = 2048;
/// Journal zone size in sectors — small enough that checkpoints and GC
/// both happen many times inside one run.
const ZONE_SECTORS: u64 = 384;
/// Operations per run after the initial load.
const OPS: u64 = 700;
/// Compression ratio for sector-aligned journaling (paper default).
const COMPRESSION: f64 = 0.7;
/// Base seed of the whole matrix.
const MATRIX_SEED: u64 = 0xC7A5_11FE_2026_0805;

/// A deliberately tight device: 16 blocks of 16 pages (1 MiB) against a
/// ~512 KiB logical space, so GC runs inside every workload.
fn geometry() -> FlashGeometry {
    FlashGeometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 1,
        blocks_per_plane: 8,
        pages_per_block: 16,
        page_bytes: 4096,
    }
}

fn layout_for(strategy: Strategy) -> Layout {
    Layout::new(
        RECORDS,
        MAX_RECORD_BYTES,
        strategy.default_unit_bytes(),
        ZONE_SECTORS,
    )
}

fn build_ssd(strategy: Strategy, policy: VictimPolicy) -> Ssd {
    let flash = FlashArray::new(geometry(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: strategy.default_unit_bytes(),
            write_points: 2,
            gc_threshold_blocks: 3,
            gc_soft_threshold_blocks: 6,
            write_buffer_units: 16,
            victim_policy: policy,
            ..FtlConfig::default()
        },
    )
    .expect("valid FTL config");
    Ssd::new(ftl, SsdTiming::paper_default())
}

/// What the engine acknowledged for one key.
#[derive(Clone, Copy)]
struct ShadowKey {
    version: u64,
    deleted: bool,
}

/// An operation that was admitted but not yet acknowledged when power
/// was lost: under batched admission the client receives acks only when
/// the whole batch completes, so every op of a half-finished batch may
/// land in either its old or new state.
#[derive(Clone, Copy)]
struct Inflight {
    key: u64,
    version: u64,
    delete: bool,
}

#[derive(Clone, Copy)]
enum Op {
    Update(u32),
    Insert(u32),
    Delete,
}

/// One driven workload: the device as the cut left it, plus the shadow
/// model of everything the engine acknowledged. `inflight` holds the
/// unacked tail: the in-progress batch (admitted, not acked) plus the
/// op that observed the cut — empty when the run completed.
struct Driven {
    ssd: Ssd,
    engine: KvEngine,
    shadow: Vec<ShadowKey>,
    inflight: Vec<Inflight>,
    cut: bool,
    t: SimTime,
}

fn is_power_loss(e: &EngineError) -> bool {
    matches!(e, EngineError::Ssd(SsdError::Ftl(f)) if f.is_power_loss())
}

fn apply_op(
    engine: &mut KvEngine,
    ssd: &mut Ssd,
    key: u64,
    op: Op,
    t: SimTime,
) -> Result<SimTime, EngineError> {
    match op {
        Op::Update(bytes) => engine.update(ssd, key, bytes, t),
        Op::Insert(bytes) => engine.insert(ssd, key, bytes, t),
        Op::Delete => engine.delete(ssd, key, t),
    }
}

fn checkpoint_and_gc(
    engine: &mut KvEngine,
    ssd: &mut Ssd,
    t: SimTime,
) -> Result<SimTime, EngineError> {
    let out = engine.checkpoint(ssd, t)?;
    let (_, done) = ssd.background_gc(out.finish, 4)?;
    Ok(done)
}

/// Runs the seeded workload, optionally under `plan` (armed *after* the
/// initial load, so tick indices count steady-state operations). Stops
/// at the first observed power loss.
///
/// `batch` models the system's admission batching: ops are admitted in
/// groups of `batch` and acknowledged to the client only when the whole
/// group completes, with checkpoints confined to batch boundaries (the
/// admission gate's no-straddling rule). The op stream itself is
/// identical for every batch size; only ack timing differs. A cut
/// mid-batch rolls the staged shadow entries back to their pre-batch
/// versions and reports the whole pending group as in flight.
fn drive(
    strategy: Strategy,
    policy: VictimPolicy,
    seed: u64,
    plan: Option<FaultPlan>,
    batch: u32,
) -> Driven {
    let mut ssd = build_ssd(strategy, policy);
    let layout = layout_for(strategy);
    let mut engine = KvEngine::new(strategy, layout, COMPRESSION);
    let mut rng = TestRng::seed_from(seed);
    let records: Vec<(u64, u32)> = (0..RECORDS)
        .map(|k| (k, rng.range_u32(200, MAX_RECORD_BYTES - 48)))
        .collect();
    let mut t = engine
        .load(&mut ssd, &records, SimTime::ZERO)
        .expect("fault-free load");
    let mut shadow = vec![
        ShadowKey {
            version: 1,
            deleted: false,
        };
        RECORDS as usize
    ];
    if let Some(p) = plan {
        ssd.ftl_mut().flash_mut().arm_faults(p);
    }
    let cp_units = (layout.zone_sectors() / layout.unit_sectors()) / 4;
    let mut inflight: Vec<Inflight> = Vec::new();
    let mut cut = false;
    let mut remaining = OPS;

    'ops: while remaining > 0 {
        // Batch boundary: the only place checkpoints are allowed, and the
        // point at which the previous batch's acks became durable facts.
        if engine.journal_used_units() >= cp_units {
            match checkpoint_and_gc(&mut engine, &mut ssd, t) {
                Ok(done) => t = done,
                Err(e) if is_power_loss(&e) => {
                    cut = true;
                    break 'ops;
                }
                Err(e) => panic!("{strategy} seed {seed}: checkpoint failed: {e}"),
            }
        }
        let group = u64::from(batch.max(1)).min(remaining);
        remaining -= group;
        // Acks staged by this batch, with each key's pre-batch shadow
        // value so a mid-batch cut can un-ack the whole group.
        let mut pending: Vec<Inflight> = Vec::new();
        let mut saved: Vec<(u64, ShadowKey)> = Vec::new();
        for _ in 0..group {
            let key = rng.below(RECORDS);
            let entry = shadow[key as usize];
            let bytes = rng.range_u32(200, MAX_RECORD_BYTES - 48);
            let op = if entry.deleted {
                Op::Insert(bytes)
            } else if rng.below(100) < 10 {
                Op::Delete
            } else {
                Op::Update(bytes)
            };
            let next = Inflight {
                key,
                version: entry.version + 1,
                delete: matches!(op, Op::Delete),
            };
            let mut result = apply_op(&mut engine, &mut ssd, key, op, t);
            if matches!(result, Err(EngineError::JournalFull)) {
                // The admission estimate ran short: force the checkpoint
                // the real system would have taken at the boundary. A cut
                // inside it leaves `next` un-issued (it never touched the
                // journal), so only the already-issued group is in flight.
                match checkpoint_and_gc(&mut engine, &mut ssd, t) {
                    Ok(done) => t = done,
                    Err(e) if is_power_loss(&e) => {
                        for &(k, old) in &saved {
                            shadow[k as usize] = old;
                        }
                        inflight = pending;
                        cut = true;
                        break 'ops;
                    }
                    Err(e) => panic!("{strategy} seed {seed}: checkpoint failed: {e}"),
                }
                result = apply_op(&mut engine, &mut ssd, key, op, t);
            }
            match result {
                Ok(done) => {
                    t = done;
                    if !saved.iter().any(|&(k, _)| k == key) {
                        saved.push((key, entry));
                    }
                    shadow[key as usize] = ShadowKey {
                        version: next.version,
                        deleted: next.delete,
                    };
                    pending.push(next);
                }
                Err(e) if is_power_loss(&e) => {
                    for &(k, old) in &saved {
                        shadow[k as usize] = old;
                    }
                    pending.push(next);
                    inflight = pending;
                    cut = true;
                    break 'ops;
                }
                Err(e) => panic!("{strategy} seed {seed}: op failed: {e}"),
            }
        }
        // Batch completed: its staged shadow entries are now acked.
    }
    Driven {
        ssd,
        engine,
        shadow,
        inflight,
        cut,
        t,
    }
}

/// Durability verdict of one recovered run.
#[derive(Default, Clone, Copy)]
struct Verdict {
    checked: u64,
    losses: u64,
    resurrections: u64,
}

impl Verdict {
    fn absorb(&mut self, other: Verdict) {
        self.checked += other.checked;
        self.losses += other.losses;
        self.resurrections += other.resurrections;
    }

    fn clean(&self) -> bool {
        self.losses == 0 && self.resurrections == 0
    }
}

/// Checks every key of the recovered engine against the shadow model,
/// tolerating only the in-flight (admitted, unacked) operations in
/// either state. The engine issues a batch sequentially, so only a
/// prefix of `inflight` can have reached the journal; any of those
/// versions — or the pre-batch acked one — is an acceptable recovered
/// state, and anything else is a loss or a resurrection.
fn verify(
    engine: &mut KvEngine,
    ssd: &mut Ssd,
    shadow: &[ShadowKey],
    inflight: &[Inflight],
    t: SimTime,
    announce: bool,
) -> Verdict {
    let mut v = Verdict::default();
    for (key, exp) in shadow.iter().enumerate() {
        let key = key as u64;
        let infl: Vec<&Inflight> = inflight.iter().filter(|i| i.key == key).collect();
        v.checked += 1;
        let read = engine.get(ssd, key, t);
        match (exp.deleted, read) {
            (false, Ok(r)) => {
                let ok = r.version == exp.version
                    || infl.iter().any(|i| !i.delete && r.version == i.version);
                if !ok {
                    if r.version < exp.version {
                        v.losses += 1;
                        if announce {
                            eprintln!(
                                "  LOSS key {key}: acked v{}, recovered v{}",
                                exp.version, r.version
                            );
                        }
                    } else {
                        v.resurrections += 1;
                        if announce {
                            eprintln!(
                                "  TORN key {key}: acked v{}, recovered v{}",
                                exp.version, r.version
                            );
                        }
                    }
                }
            }
            (false, Err(EngineError::UnknownKey(_))) => {
                if !infl.iter().any(|i| i.delete) {
                    v.losses += 1;
                    if announce {
                        eprintln!("  LOSS key {key}: acked v{} unreadable", exp.version);
                    }
                }
            }
            (true, Err(EngineError::UnknownKey(_))) => {}
            (true, Ok(r)) => {
                let ok = infl.iter().any(|i| !i.delete && r.version == i.version);
                if !ok {
                    v.resurrections += 1;
                    if announce {
                        eprintln!(
                            "  RESURRECTED key {key}: acked delete v{}, readable v{}",
                            exp.version, r.version
                        );
                    }
                }
            }
            (_, Err(e)) => panic!("verify read of key {key} failed: {e}"),
        }
    }
    v
}

/// Profiling pass: same seed and batch, no faults injected, full
/// per-tick trace (tick indices only match a drive with the same batch).
fn profile(
    strategy: Strategy,
    policy: VictimPolicy,
    seed: u64,
    batch: u32,
) -> Vec<(FaultOp, FaultPhase)> {
    let plan = FaultPlan::new(FaultConfig {
        record_trace: true,
        ..FaultConfig::default()
    });
    let d = drive(strategy, policy, seed, Some(plan), batch);
    d.ssd
        .ftl()
        .flash()
        .fault_plan()
        .expect("plan stays armed")
        .trace()
        .to_vec()
}

/// Picks cut ticks from a trace: the first and middle tick of every
/// interesting phase (checkpoint remap walk, GC migration, host
/// deallocation), topped up with uniformly random steady-state ticks.
fn choose_cuts(trace: &[(FaultOp, FaultPhase)], rng: &mut TestRng, total: usize) -> Vec<u64> {
    let mut ticks: Vec<u64> = Vec::new();
    for phase in [
        FaultPhase::CheckpointRemap,
        FaultPhase::Gc,
        FaultPhase::HostDeallocate,
    ] {
        let idxs: Vec<u64> = trace
            .iter()
            .enumerate()
            .filter(|(_, op)| op.1 == phase)
            .map(|(i, _)| i as u64 + 1)
            .collect();
        if let Some(&first) = idxs.first() {
            ticks.push(first);
        }
        if idxs.len() > 2 {
            ticks.push(idxs[idxs.len() / 2]);
        }
    }
    while ticks.len() < total {
        ticks.push(rng.range_u64(1, trace.len() as u64));
    }
    ticks.sort_unstable();
    ticks.dedup();
    ticks
}

/// Picks cut ticks for the batched tier: evenly spaced steady-state
/// (non-checkpoint, non-GC) ticks. Checkpoints sit at batch boundaries
/// where nothing is unacked, so targeting them — as [`choose_cuts`]
/// does — would never land inside a batch.
fn choose_mid_batch_cuts(trace: &[(FaultOp, FaultPhase)], total: usize) -> Vec<u64> {
    let normals: Vec<u64> = trace
        .iter()
        .enumerate()
        .filter(|(_, op)| op.1 == FaultPhase::Normal)
        .map(|(i, _)| i as u64 + 1)
        .collect();
    let mut ticks: Vec<u64> = (1..=total)
        .filter_map(|i| normals.get(i * normals.len() / (total + 1)).copied())
        .collect();
    ticks.sort_unstable();
    ticks.dedup();
    ticks
}

/// One combo: drive to the cut, recover the device and the engine,
/// verify against the shadow. Returns the verdict plus the number of
/// admitted-but-unacked ops at the cut (> 1 means the cut landed mid
/// batch). With `sabotage`, the capacitor-backed write buffer is
/// dropped before recovery — the verdict must then show losses, proving
/// the harness detects broken recovery.
fn run_cut(
    strategy: Strategy,
    policy: VictimPolicy,
    seed: u64,
    cut_tick: u64,
    sabotage: bool,
    batch: u32,
) -> (Verdict, usize) {
    let plan = FaultPlan::new(FaultConfig::power_cut(seed ^ cut_tick, cut_tick));
    let mut d = drive(strategy, policy, seed, Some(plan), batch);
    if !d.ssd.powered_off() {
        // The schedule outlived the workload: cut at the end so the
        // recovery path always runs. Nothing was in flight.
        d.ssd.ftl_mut().flash_mut().cut_power();
        d.inflight.clear();
    }
    if sabotage {
        d.ssd.ftl_mut().sabotage_drop_write_buffer();
    }
    d.ssd
        .recover_power_loss()
        .expect("SPOR recovery after an injected power cut");
    let (mut engine, t) = KvEngine::recover(
        strategy,
        layout_for(strategy),
        COMPRESSION,
        &mut d.ssd,
        RECORDS,
        d.t,
    )
    .expect("engine recovery");
    let verdict = verify(
        &mut engine,
        &mut d.ssd,
        &d.shadow,
        &d.inflight,
        t,
        !sabotage,
    );
    if !sabotage {
        d.ssd
            .ftl()
            .check_invariants()
            .expect("post-recovery invariants");
        engine
            .insert(&mut d.ssd, 0, 512, t)
            .expect("post-recovery write");
    }
    (verdict, d.inflight.len())
}

/// Media-noise accounting collected across the noise tier.
#[derive(Default, Clone, Copy)]
struct MediaStats {
    transients: u64,
    retries: u64,
    grown: u64,
    retired: u64,
}

/// One media-noise run: transient failures plus grown bad blocks, no
/// power cut. Every op must succeed (retries and retirement absorb the
/// faults) and the final state must match the shadow exactly.
fn run_noise(strategy: Strategy, seed: u64) -> (Verdict, MediaStats) {
    let plan = FaultPlan::new(FaultConfig {
        seed: seed ^ 0xD15E_A5ED,
        transient_read: 0.01,
        transient_program: 0.01,
        transient_erase: 0.02,
        grown_bad_block: 0.0008,
        ..FaultConfig::default()
    });
    let mut d = drive(strategy, VictimPolicy::Greedy, seed, Some(plan), 1);
    assert!(!d.cut, "noise tier has no power cut");
    let mut engine = d.engine;
    let verdict = verify(&mut engine, &mut d.ssd, &d.shadow, &[], d.t, true);
    d.ssd
        .ftl()
        .check_invariants()
        .expect("post-noise invariants");
    let stats = MediaStats {
        transients: d.ssd.ftl().flash().counters().get("flash.transient_faults"),
        retries: d.ssd.ftl().counters().get("ftl.media_retries"),
        grown: d.ssd.ftl().flash().counters().get("flash.grown_bad_blocks"),
        retired: d.ssd.ftl().counters().get("ftl.blocks_retired"),
    };
    (verdict, stats)
}

/// Deliberately breaks recovery and requires the harness to notice:
/// returns true when at least one sabotaged combo reports losses.
fn sabotage_self_test(combos: &mut u64) -> bool {
    let strategy = Strategy::CheckIn;
    let seed = MATRIX_SEED ^ 0x5AB0_7A6E;
    let trace_len = profile(strategy, VictimPolicy::Greedy, seed, 1).len() as u64;
    let mut rng = TestRng::seed_from(seed);
    for _ in 0..8 {
        let tick = rng.range_u64(trace_len / 4, trace_len.max(2) - 1);
        *combos += 1;
        if !run_cut(strategy, VictimPolicy::Greedy, seed, tick, true, 1)
            .0
            .clean()
        {
            return true;
        }
    }
    false
}

fn section(title: &str) {
    println!("\n== {title}");
}

fn phase_name(phase: FaultPhase) -> &'static str {
    match phase {
        FaultPhase::CheckpointRemap => "remap",
        FaultPhase::Gc => "gc",
        FaultPhase::HostDeallocate => "dealloc",
        FaultPhase::Normal => "steady",
    }
}

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: crashmatrix [--quick]");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let strategies: Vec<Strategy> = if quick {
        vec![Strategy::Baseline, Strategy::CheckIn]
    } else {
        Strategy::all().to_vec()
    };
    let workload_seeds: u64 = if quick { 2 } else { 6 };
    let cuts_per_workload: usize = if quick { 6 } else { 7 };
    let noise_seeds: u64 = if quick { 1 } else { 2 };
    println!("crashmatrix ({mode}): {RECORDS} keys, {OPS} ops/run");

    let mut total = Verdict::default();
    let mut combos = 0u64;
    // Cut counts per phase: [remap, gc, dealloc, steady].
    let mut phase_cuts = [0u64; 4];

    section("power-cut sweep");
    for &strategy in &strategies {
        for s in 0..workload_seeds {
            let seed = MATRIX_SEED.wrapping_add(s.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ (strategy.default_unit_bytes() as u64)
                ^ (strategy.label().len() as u64) << 32;
            let trace = profile(strategy, VictimPolicy::Greedy, seed, 1);
            let mut rng = TestRng::seed_from(seed ^ 0xC07);
            let cuts = choose_cuts(&trace, &mut rng, cuts_per_workload);
            let mut phases = Vec::new();
            for &tick in &cuts {
                let phase = trace
                    .get((tick - 1) as usize)
                    .map_or(FaultPhase::Normal, |&(_, p)| p);
                phases.push(phase_name(phase));
                match phase {
                    FaultPhase::CheckpointRemap => phase_cuts[0] += 1,
                    FaultPhase::Gc => phase_cuts[1] += 1,
                    FaultPhase::HostDeallocate => phase_cuts[2] += 1,
                    FaultPhase::Normal => phase_cuts[3] += 1,
                }
                combos += 1;
                let (v, _) = run_cut(strategy, VictimPolicy::Greedy, seed, tick, false, 1);
                if !v.clean() {
                    eprintln!(
                        "  ^ combo: {} seed {s} cut tick {tick} ({})",
                        strategy.label(),
                        phase_name(phase)
                    );
                }
                total.absorb(v);
            }
            println!(
                "  {:<9} seed {s}: {} ticks traced, cuts at {:?} ({})",
                strategy.label(),
                trace.len(),
                cuts,
                phases.join(",")
            );
        }
    }

    // Same durability contract, but the client admits ops in groups of
    // 16 and acks only whole batches — cuts that land mid-batch must
    // leave every unacked op in either its old or new state, with no
    // dropped or double-applied acked write.
    section("batched-admission power-cut sweep (admission batch 16)");
    let batch = 16u32;
    let batched_seeds: u64 = if quick { 1 } else { 2 };
    let mut mid_batch_cuts = 0u64;
    for &strategy in &strategies {
        for s in 0..batched_seeds {
            let seed = MATRIX_SEED.wrapping_add(s.wrapping_mul(0xD1B5_4A32_D192_ED03))
                ^ (strategy.default_unit_bytes() as u64) << 8
                ^ 0xBA7C_4ED0;
            let trace = profile(strategy, VictimPolicy::Greedy, seed, batch);
            let cuts = choose_mid_batch_cuts(&trace, cuts_per_workload);
            let mut unacked = Vec::new();
            for &tick in &cuts {
                combos += 1;
                let (v, pending) =
                    run_cut(strategy, VictimPolicy::Greedy, seed, tick, false, batch);
                unacked.push(pending);
                if pending > 1 {
                    mid_batch_cuts += 1;
                }
                if !v.clean() {
                    eprintln!(
                        "  ^ combo: {} seed {s} batch {batch} cut tick {tick} \
                         ({pending} ops unacked)",
                        strategy.label()
                    );
                }
                total.absorb(v);
            }
            println!(
                "  {:<9} seed {s}: cuts at {:?}, unacked ops {:?}",
                strategy.label(),
                cuts,
                unacked
            );
        }
    }

    // The non-default victim policies relocate different blocks at
    // different times, so a cut landing mid-migration exercises recovery
    // over GC states the greedy sweep never produces. Every policy must
    // get at least one genuine mid-GC cut, in quick mode too.
    section("victim-policy power-cut sweep (cuts inside GC migration)");
    let policies = [VictimPolicy::CostBenefit, VictimPolicy::WINDOWED_DEFAULT];
    let cuts_per_policy: usize = if quick { 2 } else { 4 };
    let mut policy_gc_cuts = [0u64; 2];
    for (pi, &policy) in policies.iter().enumerate() {
        let strategy = Strategy::CheckIn;
        let seed = MATRIX_SEED ^ 0x6C1A_B000 ^ ((pi as u64 + 1) << 24);
        let trace = profile(strategy, policy, seed, 1);
        let gc_ticks: Vec<u64> = trace
            .iter()
            .enumerate()
            .filter(|(_, op)| op.1 == FaultPhase::Gc)
            .map(|(i, _)| i as u64 + 1)
            .collect();
        // First, middle, and evenly spaced mid-GC ticks up to the budget.
        let mut cuts: Vec<u64> = (0..cuts_per_policy)
            .filter_map(|i| gc_ticks.get(i * gc_ticks.len() / cuts_per_policy).copied())
            .collect();
        cuts.dedup();
        for &tick in &cuts {
            combos += 1;
            policy_gc_cuts[pi] += 1;
            phase_cuts[1] += 1;
            let (v, _) = run_cut(strategy, policy, seed, tick, false, 1);
            if !v.clean() {
                eprintln!("  ^ combo: {policy} cut tick {tick} (mid-GC)");
            }
            total.absorb(v);
        }
        println!(
            "  {:<18} {} GC ticks traced, cuts at {:?}",
            policy.label(),
            gc_ticks.len(),
            cuts
        );
    }

    section("media-noise tier (transients + grown bad blocks, no cut)");
    let mut media = MediaStats::default();
    for &strategy in &strategies {
        for s in 0..noise_seeds {
            let seed = MATRIX_SEED ^ 0xBAD_F1A5 ^ s ^ (strategy.default_unit_bytes() as u64) << 16;
            combos += 1;
            let (verdict, stats) = run_noise(strategy, seed);
            total.absorb(verdict);
            media.transients += stats.transients;
            media.retries += stats.retries;
            media.grown += stats.grown;
            media.retired += stats.retired;
            println!(
                "  {:<9} seed {s}: transients {} (retries {}), grown bad {}, retired {}",
                strategy.label(),
                stats.transients,
                stats.retries,
                stats.grown,
                stats.retired
            );
        }
    }

    section("sabotage self-test (recovery deliberately broken)");
    let detected = sabotage_self_test(&mut combos);
    println!(
        "  dropped write buffer before rebuild: loss {}",
        if detected { "DETECTED" } else { "MISSED" }
    );

    section(&format!("summary ({mode})"));
    println!("  combos            {combos}");
    println!(
        "  cut phases        remap {}, gc {}, dealloc {}, steady {}",
        phase_cuts[0], phase_cuts[1], phase_cuts[2], phase_cuts[3]
    );
    println!("  mid-batch cuts    {mid_batch_cuts}");
    println!("  keys checked      {}", total.checked);
    println!("  acked losses      {}", total.losses);
    println!("  resurrections     {}", total.resurrections);
    println!(
        "  media             transients {} (retries {}), grown bad {}, retired {}",
        media.transients, media.retries, media.grown, media.retired
    );

    let mut failed = false;
    if !total.clean() {
        eprintln!(
            "FAIL: {} acked-write losses, {} resurrections",
            total.losses, total.resurrections
        );
        failed = true;
    }
    if phase_cuts[0] == 0 || phase_cuts[1] == 0 {
        eprintln!(
            "FAIL: matrix missed a required cut phase (remap {}, gc {})",
            phase_cuts[0], phase_cuts[1]
        );
        failed = true;
    }
    if mid_batch_cuts == 0 {
        eprintln!("FAIL: no cut landed mid-batch — the batched tier exercised nothing new");
        failed = true;
    }
    if policy_gc_cuts.contains(&0) {
        eprintln!(
            "FAIL: a victim policy got no mid-GC cut (cost-benefit {}, windowed-greedy {})",
            policy_gc_cuts[0], policy_gc_cuts[1]
        );
        failed = true;
    }
    if !detected {
        eprintln!("FAIL: sabotaged recovery went undetected — the harness cannot see losses");
        failed = true;
    }
    if !quick && combos < 200 {
        eprintln!("FAIL: only {combos} combos (need >= 200 in full mode)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: {combos} combos, zero acked-write losses, zero resurrections, sabotage detected"
    );
}
