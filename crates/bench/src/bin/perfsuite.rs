//! `perfsuite` — the wall-clock performance suite behind `BENCH_perf.json`.
//!
//! Times the hot paths the dense-table / allocation-free / hot-loop
//! refactors target:
//!
//! 1. **L2P lookup & remap** — the dense `MappingTable` against an in-binary
//!    `HashMap`-backed baseline replicating the pre-refactor layout (forward
//!    `HashMap<Lpn, Location>` plus reverse `HashMap<_, Vec<Lpn>>`). Gated:
//!    the dense lookup must be at least 2x faster.
//! 2. **Event queue** — the hierarchical timing-wheel `EventQueue` against
//!    a reference `BinaryHeap` under the same closed-loop pop+schedule
//!    pattern, at the full-run population (33) and at a command-queue-storm
//!    population (64k). Gated at 64k, informational at 33 (at tiny
//!    populations the two are equivalent by design).
//! 3. **Journal append** — sector-aligned appends through `JournalManager`
//!    with the double-buffered zone swap on overflow.
//! 4. **Checkpoint remap vs copy** — a 64-entry in-storage checkpoint
//!    command against a fully modelled SSD on the paper's 512 B mapping
//!    unit, where entries genuinely remap, against the same command in
//!    copy mode (the ISC-A/B data path). Gated: remap must beat copy.
//! 5. **Trace emit** — the disabled-tracer hot-path cost (one branch)
//!    against the ring-buffered sink, guarding the zero-overhead claim.
//! 6. **Full system run** — 50k Check-In queries (10k under `--quick`) at
//!    admission batch 1 (the historical client model) and batch 16
//!    (`system/batched_admission_*`). The query loop is timed separately
//!    from device construction and record load, and both batch sizes are
//!    gated against the pre-overhaul loop measured on the same host (see
//!    the baseline constants below); total wall time rides along for the
//!    seed-qps comparison. The batch-1 run is repeated with
//!    `verify_checksums` off to price the on-by-default integrity
//!    checks, gated at a 10% ceiling (`checksum_verification_cost`), and
//!    with victim selection forced to greedy to price the gclab-elected
//!    default GC policy (`default_gc_policy_vs_greedy`, floor 0.90).
//! 7. **Parallel sweep** — a 15-configuration strategy×seed batch, serial
//!    vs `run_configs` work-stealing workers. Gated only on multi-core
//!    hosts (a single-core container cannot overlap CPU-bound runs).
//!
//! Results land in `BENCH_perf.json` (override with `--out PATH`) so later
//! changes can regress against recorded numbers. Any failed gate exits 1.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use checkin_bench::harness::{bench, compare, BenchOpts, BenchResult, Comparison};
use checkin_core::{default_jobs, run_configs, JournalManager, Layout, Strategy, SystemConfig};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind, UnitPayload};
use checkin_ftl::{BufSlot, Ftl, FtlConfig, Location, Lpn, MappingTable, Pun, UnitWrite};
use checkin_sim::{EventQueue, SimDuration, SimRng, SimTime, TraceEvent, TraceLayer, Tracer};
use checkin_ssd::{CheckpointMode, CowEntry, Ssd, SsdTiming};

/// Mapped LPNs in the L2P benches — the paper-default device has ~400k
/// 4-sector mapping units, so this is a realistically full table.
const L2P_ENTRIES: u64 = 400_000;

/// Required dense-vs-HashMap lookup speedup (the acceptance bar).
const REQUIRED_L2P_SPEEDUP: f64 = 2.0;

/// Required timing-wheel-vs-BinaryHeap speedup at the 64k population.
const REQUIRED_QUEUE_SPEEDUP: f64 = 1.3;

/// Required remap-vs-copy speedup for the 64-entry checkpoint command —
/// the device-side advantage the paper's Check-In scheme rests on.
const REQUIRED_REMAP_VS_COPY: f64 = 2.0;

/// Full-run baseline from the seed `BENCH_perf.json` (858,457 qps): the
/// pre-overhaul code as measured on the host that recorded the seed
/// numbers, construction included. Kept for cross-PR comparability of
/// the reported qps (informational; the gates below compare same-host).
const SEED_FULL_RUN_QPS: f64 = 858_457.0;

/// The pre-overhaul code rebuilt and re-measured on the *current* host
/// (best-of-several, `taskset`-pinned): the 50k query loop alone ran at
/// ~940 ns/op and the 10k loop at ~1450 ns/op, on top of a ~20 ms
/// device-construction+load phase that the overhaul does not touch.
/// The gates therefore time `KvSystem::run` only — steady-state query
/// throughput — against these run-only constants; total wall time
/// (construction included) is recorded alongside for the seed-qps
/// comparison. This host also measures ~1.3x slower than the seed
/// recording, so same-host constants are the only fair baseline.
const PRECHANGE_50K_RUN_NS_PER_OP: f64 = 940.0;
const PRECHANGE_10K_RUN_NS_PER_OP: f64 = 1450.0;

/// Required run-only speedups over the same-host pre-overhaul baseline.
/// Measured best-of-5: ~1.43x at admission batch 1 and ~1.65x at batch
/// 16 on the 50k run. The floors sit well below that because this
/// shared host shows ±15% run-to-run swings even pinned — which also
/// means the ~10-15% batching advantage itself is below the noise floor
/// of a one-shot, so both batch sizes share one floor and the
/// batched-vs-plain ratio is recorded ungated for tracking.
const REQUIRED_FULL_RUN_SPEEDUP: f64 = 1.25;
const REQUIRED_BATCHED_SPEEDUP: f64 = 1.25;
const QUICK_FULL_RUN_SPEEDUP: f64 = 1.20;
const QUICK_BATCHED_SPEEDUP: f64 = 1.20;

/// Required serial-vs-parallel sweep speedup, applied only when the host
/// exposes at least two cores.
const REQUIRED_SWEEP_SPEEDUP: f64 = 1.15;

/// Floor on the default-GC-policy run vs the same workload forced to
/// greedy (the pre-lab policy). The gclab sweep picked the shipped
/// default on simulated WAF/lifetime/tail; this gate guards the other
/// axis — that victim selection stays cheap enough on the host clock for
/// the full run not to regress. The paper-default device sees little GC
/// in 50k queries, so the true ratio is ~1.0 and the floor only needs to
/// clear host noise.
const REQUIRED_DEFAULT_POLICY_VS_GREEDY: f64 = 0.90;
const QUICK_DEFAULT_POLICY_VS_GREEDY: f64 = 0.80;

/// Hard ceiling on the cost of on-by-default checksum verification: the
/// 50k query loop with `verify_checksums` on may be at most 10% slower
/// than the same loop with it off. The quick (10k) variant is looser —
/// short runs on this shared host swing by more than the budget itself.
const CHECKSUM_OVERHEAD_CEILING: f64 = 0.10;
const QUICK_CHECKSUM_OVERHEAD_CEILING: f64 = 0.25;

/// The pre-refactor mapping table: hashed forward map plus hashed
/// reverse referrer lists. Kept here, out of the library, purely as the
/// measurement baseline for the dense [`MappingTable`].
#[derive(Default)]
struct HashMapTable {
    forward: HashMap<Lpn, Location>,
    flash_refs: HashMap<Pun, Vec<Lpn>>,
    buf_refs: HashMap<BufSlot, Vec<Lpn>>,
}

impl HashMapTable {
    fn lookup(&self, lpn: Lpn) -> Option<Location> {
        self.forward.get(&lpn).copied()
    }

    fn map(&mut self, lpn: Lpn, loc: Location) {
        self.unmap(lpn);
        self.forward.insert(lpn, loc);
        match loc {
            Location::Flash(pun) => self.flash_refs.entry(pun).or_default().push(lpn),
            Location::Buffer(slot) => self.buf_refs.entry(slot).or_default().push(lpn),
        }
    }

    fn unmap(&mut self, lpn: Lpn) {
        let Some(loc) = self.forward.remove(&lpn) else {
            return;
        };
        match loc {
            Location::Flash(pun) => {
                if let Some(refs) = self.flash_refs.get_mut(&pun) {
                    refs.retain(|&l| l != lpn);
                    if refs.is_empty() {
                        self.flash_refs.remove(&pun);
                    }
                }
            }
            Location::Buffer(slot) => {
                if let Some(refs) = self.buf_refs.get_mut(&slot) {
                    refs.retain(|&l| l != lpn);
                    if refs.is_empty() {
                        self.buf_refs.remove(&slot);
                    }
                }
            }
        }
    }
}

/// Same population for both tables: every LPN mapped, a few PUN aliases.
fn populate_dense() -> MappingTable {
    let mut t = MappingTable::with_capacity(L2P_ENTRIES as usize);
    for i in 0..L2P_ENTRIES {
        t.map(Lpn(i), Location::Flash(Pun(i)));
    }
    t
}

fn populate_hashed() -> HashMapTable {
    let mut t = HashMapTable::default();
    for i in 0..L2P_ENTRIES {
        t.map(Lpn(i), Location::Flash(Pun(i)));
    }
    t
}

fn bench_l2p(
    opts: BenchOpts,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) -> f64 {
    section("L2P mapping table: dense Vec vs HashMap baseline");
    let dense = populate_dense();
    let hashed = populate_hashed();

    let mut rng = SimRng::seed_from(11);
    let hashed_lookup = bench("l2p/lookup_hashmap_baseline", opts, || {
        hashed.lookup(Lpn(rng.gen_range(L2P_ENTRIES)))
    });
    let mut rng = SimRng::seed_from(11);
    let dense_lookup = bench("l2p/lookup_dense", opts, || {
        dense.lookup(Lpn(rng.gen_range(L2P_ENTRIES)))
    });
    let lookup_cmp = compare("l2p_lookup_speedup", &hashed_lookup, &dense_lookup);
    let speedup = lookup_cmp.speedup;

    // Remap churn: every iteration moves a random LPN to a fresh PUN,
    // exercising forward update plus reverse unlink/link — the write path
    // the FTL takes on every host program and GC relocation.
    let mut hashed = hashed;
    let mut rng = SimRng::seed_from(12);
    let mut next_pun = L2P_ENTRIES;
    let hashed_remap = bench("l2p/remap_hashmap_baseline", opts, || {
        let lpn = Lpn(rng.gen_range(L2P_ENTRIES));
        hashed.map(lpn, Location::Flash(Pun(next_pun)));
        next_pun += 1;
    });
    let mut dense = dense;
    let mut rng = SimRng::seed_from(12);
    // Recycle PUNs within a bounded window so the dense reverse array
    // stays device-sized, as it does in the real FTL.
    let mut next_pun = L2P_ENTRIES;
    let dense_remap = bench("l2p/remap_dense", opts, || {
        let lpn = Lpn(rng.gen_range(L2P_ENTRIES));
        dense.map(lpn, Location::Flash(Pun(next_pun % (2 * L2P_ENTRIES))));
        next_pun += 1;
    });
    let remap_cmp = compare("l2p_remap_speedup", &hashed_remap, &dense_remap);

    results.extend([hashed_lookup, dense_lookup, hashed_remap, dense_remap]);
    comparisons.extend([lookup_cmp, remap_cmp]);
    speedup
}

/// Closed-loop pop+schedule A/B: the timing-wheel `EventQueue` against a
/// reference `BinaryHeap` with identical (time, seq) FIFO semantics and
/// an identical access pattern. Returns the 64k-population speedup (the
/// gated one).
fn bench_event_queue(
    opts: BenchOpts,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) -> f64 {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    section("Event queue: timing wheel vs BinaryHeap reference");
    let mut gated = f64::NAN;
    for n in [33u64, 65_536] {
        // Inter-event gap scales with population so the horizon stays
        // realistic for both closed loops.
        let gap = 7_800u64;
        let mut h: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::with_capacity(n as usize);
        let mut rng = SimRng::seed_from(9);
        let mut seq = 0u64;
        for i in 0..n {
            h.push(Reverse((1 + i * gap, seq, i as u32)));
            seq += 1;
        }
        let label = if n == 33 { "33" } else { "64k" };
        let heap = bench(&format!("queue/pop_schedule_binheap_{label}"), opts, || {
            let Reverse((t, _, e)) = h.pop().unwrap();
            h.push(Reverse((t + n * gap + rng.gen_range(5_000), seq, e)));
            seq += 1;
            e
        });

        let mut q: EventQueue<u32> = EventQueue::with_capacity(n as usize);
        let mut rng = SimRng::seed_from(9);
        for i in 0..n {
            q.schedule(SimTime::from_nanos(1 + i * gap), i as u32);
        }
        let wheel = bench(
            &format!("queue/pop_schedule_calendar_{label}"),
            opts,
            || {
                let (t, e) = q.pop().unwrap();
                q.schedule(
                    t + SimDuration::from_nanos(n * gap + rng.gen_range(5_000)),
                    e,
                );
                e
            },
        );
        let cmp = compare(&format!("calendar_vs_binaryheap_{label}"), &heap, &wheel);
        if n == 65_536 {
            gated = cmp.speedup;
        }
        results.extend([heap, wheel]);
        comparisons.push(cmp);
    }
    gated
}

fn bench_journal_append(opts: BenchOpts, results: &mut Vec<BenchResult>) {
    section("Journal append path (sector-aligned, Algorithm 2)");
    let layout = Layout::new(1_024, 4096, 512, 1 << 14);
    let mut jm = JournalManager::new(layout, true, 0.7);
    let mut rng = SimRng::seed_from(21);
    let mut version = 0u64;
    results.push(bench("journal/append_aligned", opts, || {
        version += 1;
        let key = rng.gen_range(1_024);
        match jm.append(key, version, 300) {
            Ok(req) => req.sectors,
            Err(_) => {
                // Zone full: swap to the other journal half and recycle
                // the retiring zone's entry buffer, as the engine does.
                let zone = jm.begin_checkpoint();
                jm.recycle_zone(zone);
                0
            }
        }
    }));
}

/// A loaded device plus 64 checkpoint entries derived from real journal
/// writes, on the given mapping unit. With the paper's 512 B unit every
/// one-sector journal log is unit-aligned, so remap mode performs genuine
/// mapping-table aliasing; copy mode forces the ISC-A/B read-merge-write
/// fallback on the same state.
fn checkpoint_fixture(unit_bytes: u32) -> (Ssd, Vec<CowEntry>) {
    let flash = FlashArray::new(FlashGeometry::paper_default(), FlashTiming::mlc());
    let ftl = Ftl::new(
        flash,
        FtlConfig {
            unit_bytes,
            ..FtlConfig::default()
        },
    )
    .unwrap();
    let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(1_024, 4096, 512, 1 << 14);
    let mut jm = JournalManager::new(layout, true, 0.7);
    let mut t = SimTime::ZERO;
    for key in 0..64u64 {
        let req = jm.append(key, 1, 512).unwrap();
        t = ssd.write(&req, OobKind::Journal, t).unwrap();
    }
    let zone = jm.begin_checkpoint();
    let entries = zone
        .entries
        .iter()
        .map(|(key, e)| CowEntry {
            src_lba: e.journal_lba,
            dst_lba: layout.home_lba(*key),
            sectors: e.sectors,
            dst_sectors: e.sectors,
            key: *key,
            merged: e.merged,
        })
        .collect();
    (ssd, entries)
}

fn bench_checkpoint(
    opts: BenchOpts,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) -> f64 {
    section("Checkpoint command, 64 live entries: remap walk vs copy fallback");
    // The paper's Check-In configuration: 512 B mapping unit, so the
    // sector-aligned journal entries qualify for remapping. (An earlier
    // revision built this fixture on the default 4 KiB unit, which
    // silently demoted every entry to the copy path — the "remap" bench
    // was measuring read-merge-write traffic.)
    let (mut ssd, entries) = checkpoint_fixture(512);
    let remap = bench("ssd/checkpoint_remap_64_entries", opts, || {
        ssd.checkpoint(&entries, CheckpointMode::Remap, SimTime::ZERO)
            .unwrap()
    });
    let (mut ssd, entries) = checkpoint_fixture(512);
    let copy = bench("ssd/checkpoint_copy_64_entries", opts, || {
        ssd.checkpoint(&entries, CheckpointMode::Copy, SimTime::ZERO)
            .unwrap()
    });
    let cmp = compare("checkpoint_remap_vs_copy", &copy, &remap);
    let speedup = cmp.speedup;
    results.extend([remap, copy]);
    comparisons.push(cmp);
    speedup
}

fn bench_ftl_write(opts: BenchOpts, results: &mut Vec<BenchResult>) {
    section("FTL unit write (journal stream)");
    let flash = FlashArray::new(FlashGeometry::paper_default(), FlashTiming::mlc());
    let mut ftl = Ftl::new(flash, FtlConfig::default()).unwrap();
    let mut lpn = 0u64;
    results.push(bench("ftl/unit_write", opts, || {
        let w = UnitWrite {
            lpn: Lpn(lpn % L2P_ENTRIES),
            payload: UnitPayload::single(lpn, 1, 512),
            whole_unit: true,
        };
        lpn += 1;
        ftl.write(w, OobKind::Journal, SimTime::ZERO).unwrap()
    }));
}

fn bench_tracer(
    opts: BenchOpts,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) {
    section("Trace emit: disabled (hot-path cost) vs ring-buffered");
    let disabled = Tracer::disabled();
    let mut x = 0u64;
    let off = bench("trace/emit_disabled", opts, || {
        x += 1;
        disabled.emit(|| {
            TraceEvent::new(SimTime::from_nanos(x), TraceLayer::Flash, "program").with("ppn", x)
        });
        x
    });
    let ring = Tracer::ring_buffered(4_096);
    let mut y = 0u64;
    let on = bench("trace/emit_ring_buffered", opts, || {
        y += 1;
        ring.emit(|| {
            TraceEvent::new(SimTime::from_nanos(y), TraceLayer::Flash, "program").with("ppn", y)
        });
        y
    });
    comparisons.push(compare("trace_disabled_speedup", &on, &off));
    results.extend([off, on]);
}

/// Wraps a repeated one-shot measurement in a [`BenchResult`]: `units` is
/// the work count (queries, configs) so `ns_per_op` reads as time per
/// unit. The best of `reps` repetitions is reported, damping scheduler
/// noise the same way the microbench harness's best-batch rule does.
fn one_shot(name: &str, units: u64, reps: u32, mut run: impl FnMut()) -> BenchResult {
    let mut best = u128::MAX;
    let mut total: u128 = 0;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        let ns = start.elapsed().as_nanos().max(1);
        best = best.min(ns);
        total += ns;
    }
    let result = BenchResult {
        name: name.to_string(),
        iters: units,
        best_batch_ns: best,
        total_iters: units * reps.max(1) as u64,
        total_ns: total,
    };
    println!(
        "  {:<44} {:>12.1} ns/op   ({:.3} s total, best of {reps})",
        result.name,
        result.ns_per_op(),
        total as f64 / 1e9
    );
    result
}

/// A comparison against a recorded baseline constant (ns/op), for benches
/// whose "before" implementation no longer exists in the tree.
fn compare_recorded(
    name: &str,
    baseline_label: &str,
    baseline_ns: f64,
    r: &BenchResult,
) -> Comparison {
    let speedup = baseline_ns / r.ns_per_op();
    println!(
        "  {:<44} {:>11.2}x  ({} vs recorded {})",
        name, speedup, r.name, baseline_label
    );
    Comparison {
        name: name.to_string(),
        baseline: baseline_label.to_string(),
        candidate: r.name.clone(),
        speedup,
    }
}

fn full_run_config(queries: u64, admission_batch: u32) -> SystemConfig {
    let mut config = SystemConfig::for_strategy(Strategy::CheckIn);
    config.total_queries = queries;
    config.threads = 32;
    config.workload.record_count = 6_000;
    config.admission_batch = admission_batch;
    config
}

/// One timed system run: `(query-loop ns, construction+loop ns)`.
fn full_run_once(config: &SystemConfig) -> (u128, u128) {
    let built = Instant::now();
    let mut sys = checkin_core::KvSystem::new(config.clone()).expect("valid bench config");
    let construct_ns = built.elapsed().as_nanos();
    let start = Instant::now();
    let report = sys.run().expect("bench run succeeds");
    assert_eq!(report.ops, config.total_queries);
    let run_ns = start.elapsed().as_nanos().max(1);
    (run_ns, construct_ns + run_ns)
}

/// Best-of-reps accumulator for [`full_run_once`] measurements.
#[derive(Clone, Copy)]
struct RunAcc {
    best_run: u128,
    best_total: u128,
    total_run: u128,
    total_total: u128,
}

impl RunAcc {
    fn new() -> Self {
        RunAcc {
            best_run: u128::MAX,
            best_total: u128::MAX,
            total_run: 0,
            total_total: 0,
        }
    }

    fn absorb(&mut self, (run_ns, total_ns): (u128, u128)) {
        self.best_run = self.best_run.min(run_ns);
        self.best_total = self.best_total.min(total_ns);
        self.total_run += run_ns;
        self.total_total += total_ns;
    }

    /// Emits `(run_only, total)` results in the perfsuite format.
    fn results(self, name: &str, queries: u64, reps: u32) -> (BenchResult, BenchResult) {
        let mk = |suffix: &str, best: u128, total: u128| {
            let r = BenchResult {
                name: format!("{name}{suffix}"),
                iters: queries,
                best_batch_ns: best,
                total_iters: queries * reps.max(1) as u64,
                total_ns: total,
            };
            println!(
                "  {:<44} {:>12.1} ns/op   ({:.0} qps, best of {reps})",
                r.name,
                r.ns_per_op(),
                1e9 / r.ns_per_op()
            );
            r
        };
        (
            mk("", self.best_run, self.total_run),
            mk("_total", self.best_total, self.total_total),
        )
    }
}

/// Runs the full system `reps` times and reports the best rep, timing the
/// query loop (`KvSystem::run`) separately from device construction plus
/// record load (`KvSystem::new`). Returns `(run_only, total)` results.
fn full_run_split(name: &str, config: &SystemConfig, reps: u32) -> (BenchResult, BenchResult) {
    let mut acc = RunAcc::new();
    for _ in 0..reps.max(1) {
        acc.absorb(full_run_once(config));
    }
    acc.results(name, config.total_queries, reps)
}

fn bench_full_run(
    quick: bool,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) -> (f64, f64, f64, f64) {
    let queries: u64 = if quick { 10_000 } else { 50_000 };
    let reps = if quick { 2 } else { 5 };
    let (baseline_ns, baseline_label) = if quick {
        (
            PRECHANGE_10K_RUN_NS_PER_OP,
            "pre-overhaul 10k query loop (same host)",
        )
    } else {
        (
            PRECHANGE_50K_RUN_NS_PER_OP,
            "pre-overhaul 50k query loop (same host)",
        )
    };
    section(&format!(
        "Full system run ({queries} queries, Check-In): admission batch 1 vs 16"
    ));

    // The batch-1 run doubles as one side of the checksum-overhead gate:
    // the same config with `verify_checksums` off isolates the per-read
    // CRC cost. The two variants are run *interleaved*, rep by rep, so a
    // host-load drift between measurement windows cannot masquerade as
    // (or hide) checksum cost — verification is on by default, and its
    // price on the hot loop is gated with a ceiling, not a floor.
    let config = full_run_config(queries, 1);
    let mut off_config = full_run_config(queries, 1);
    off_config.verify_checksums = false;
    // The same workload forced to greedy victim selection: one side of
    // the default-policy-switch gate (the shipped default is the gclab
    // winner; this prices its host-clock cost on the full run).
    let mut greedy_config = full_run_config(queries, 1);
    greedy_config.gc_policy = checkin_core::VictimPolicy::Greedy;
    // Twice the usual reps: the gated quantities are *ratios of bests*,
    // and a ~2% true cost needs both bests near their floors to stay
    // clear of the ceilings on a host with ±15% run-to-run swings. All
    // three variants run interleaved, rep by rep, so host-load drift
    // between measurement windows cannot masquerade as (or hide) a cost.
    let pair_reps = reps.max(1) * 2;
    let mut on_acc = RunAcc::new();
    let mut off_acc = RunAcc::new();
    let mut greedy_acc = RunAcc::new();
    for _ in 0..pair_reps {
        on_acc.absorb(full_run_once(&config));
        off_acc.absorb(full_run_once(&off_config));
        greedy_acc.absorb(full_run_once(&greedy_config));
    }
    let name = format!("system/full_run_{}k_queries", queries / 1_000);
    let (plain, _) = on_acc.results(&name, queries, pair_reps);
    let plain_cmp = compare_recorded("full_run_speedup", baseline_label, baseline_ns, &plain);
    let off_name = format!("system/full_run_{}k_no_checksums", queries / 1_000);
    let (no_checksums, _) = off_acc.results(&off_name, queries, pair_reps);
    let cost_cmp = compare("checksum_verification_cost", &no_checksums, &plain);
    let checksum_overhead = (1.0 / cost_cmp.speedup) - 1.0;
    println!(
        "  checksum-on overhead on the query loop: {:.1}%",
        checksum_overhead * 100.0
    );
    results.push(no_checksums);
    comparisons.push(cost_cmp);

    let greedy_name = format!("system/full_run_{}k_greedy_policy", queries / 1_000);
    let (greedy_run, _) = greedy_acc.results(&greedy_name, queries, pair_reps);
    let policy_cmp = compare("default_gc_policy_vs_greedy", &greedy_run, &plain);
    let policy_speedup = policy_cmp.speedup;
    results.push(greedy_run);
    comparisons.push(policy_cmp);

    let config = full_run_config(queries, 16);
    let name = format!("system/batched_admission_{}k", queries / 1_000);
    let (batched, batched_total) = full_run_split(&name, &config, reps);
    let batched_cmp = compare_recorded(
        "batched_admission_speedup",
        baseline_label,
        baseline_ns,
        &batched,
    );
    // Ungated: the batching advantage (~10-15%) sits inside host noise
    // for a single pair of runs, so it is tracked rather than enforced.
    comparisons.push(compare("batched_vs_plain_admission", &plain, &batched));

    // Cross-host context: total wall time (construction included, the
    // seed's metric) relative to the qps recorded in the seed
    // BENCH_perf.json. Informational — the gates above compare same-host.
    if !quick {
        let vs_seed = compare_recorded(
            "full_run_total_vs_seed_recorded_qps",
            "seed-recorded 858,457 qps full run",
            1e9 / SEED_FULL_RUN_QPS,
            &batched_total,
        );
        comparisons.push(vs_seed);
        results.push(batched_total);
    }

    let out = (
        plain_cmp.speedup,
        batched_cmp.speedup,
        checksum_overhead,
        policy_speedup,
    );
    results.extend([plain, batched]);
    comparisons.extend([plain_cmp, batched_cmp]);
    out
}

fn bench_parallel_sweep(
    quick: bool,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) -> (f64, bool) {
    let queries: u64 = if quick { 2_000 } else { 8_000 };
    // Work-steal over more configurations than workers so long runs
    // (Baseline's host-driven checkpoints) cannot convoy the batch, and
    // always use at least two workers — `default_jobs()` is 1 on a
    // single-core host, which made the old 5-config comparison measure
    // serial-vs-serial (0.99-1.1x, i.e. nothing).
    let jobs = default_jobs().max(2);
    let seeds = [0x5EEDu64, 0xA11CE, 0xB0B5];
    section(&format!(
        "Strategy-comparison sweep: serial vs {jobs} worker threads, 15 configs"
    ));
    let configs: Vec<SystemConfig> = Strategy::all()
        .into_iter()
        .flat_map(|s| {
            seeds.map(|seed| {
                let mut c = SystemConfig::for_strategy(s);
                c.total_queries = queries;
                c.threads = 32;
                c.workload.record_count = 6_000;
                c.workload.seed = seed;
                c
            })
        })
        .collect();
    let n = configs.len() as u64;

    let serial = one_shot("sweep/fifteen_configs_serial", n, 1, || {
        for r in run_configs(&configs, 1) {
            r.expect("sweep config runs");
        }
    });
    let parallel = one_shot("sweep/fifteen_configs_parallel", n, 1, || {
        for r in run_configs(&configs, jobs) {
            r.expect("sweep config runs");
        }
    });
    let cmp = compare("sweep_parallel_speedup", &serial, &parallel);
    let speedup = cmp.speedup;
    results.extend([serial, parallel]);
    comparisons.push(cmp);
    // The floor applies only where parallelism exists to be had.
    (speedup, default_jobs() >= 2)
}

fn section(title: &str) {
    println!("\n== {title}");
}

/// Records a PASS/FAIL line for a gated comparison.
fn gate(failures: &mut Vec<String>, what: &str, speedup: f64, floor: f64) {
    if speedup >= floor {
        println!("PASS: {what} is {speedup:.2}x (required {floor:.2}x)");
    } else {
        let msg = format!("{what} is only {speedup:.2}x (required {floor:.2}x)");
        eprintln!("FAIL: {msg}");
        failures.push(msg);
    }
}

/// Records a PASS/FAIL line for an overhead ceiling (fraction, not ratio).
fn gate_ceiling(failures: &mut Vec<String>, what: &str, overhead: f64, ceiling: f64) {
    if overhead <= ceiling {
        println!(
            "PASS: {what} is {:.1}% (ceiling {:.0}%)",
            overhead * 100.0,
            ceiling * 100.0
        );
    } else {
        let msg = format!(
            "{what} is {:.1}% (ceiling {:.0}%)",
            overhead * 100.0,
            ceiling * 100.0
        );
        eprintln!("FAIL: {msg}");
        failures.push(msg);
    }
}

fn main() {
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_perf.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match argv.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: perfsuite [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let opts = if quick {
        BenchOpts::quick()
    } else {
        BenchOpts::full()
    };
    println!("perfsuite ({mode}) -> {}", out.display());

    let mut results = Vec::new();
    let mut comparisons = Vec::new();

    let l2p_speedup = bench_l2p(opts, &mut results, &mut comparisons);
    let queue_speedup = bench_event_queue(opts, &mut results, &mut comparisons);
    bench_journal_append(opts, &mut results);
    bench_ftl_write(opts, &mut results);
    let remap_speedup = bench_checkpoint(opts, &mut results, &mut comparisons);
    bench_tracer(opts, &mut results, &mut comparisons);
    let (full_run_speedup, batched_speedup, checksum_overhead, policy_speedup) =
        bench_full_run(quick, &mut results, &mut comparisons);
    let (sweep_speedup, sweep_gated) = bench_parallel_sweep(quick, &mut results, &mut comparisons);

    harnessed_write(&out, mode, &results, &comparisons);

    println!();
    let mut failures = Vec::new();
    gate(
        &mut failures,
        "dense L2P lookup vs HashMap baseline",
        l2p_speedup,
        REQUIRED_L2P_SPEEDUP,
    );
    gate(
        &mut failures,
        "timing-wheel event queue vs BinaryHeap at 64k",
        queue_speedup,
        if quick {
            // Quick batches are short enough for one scheduler hiccup to
            // dominate; keep a floor, but a forgiving one.
            REQUIRED_QUEUE_SPEEDUP * 0.8
        } else {
            REQUIRED_QUEUE_SPEEDUP
        },
    );
    gate(
        &mut failures,
        "checkpoint remap vs copy (64 entries)",
        remap_speedup,
        REQUIRED_REMAP_VS_COPY,
    );
    gate(
        &mut failures,
        "full run vs same-host pre-overhaul loop",
        full_run_speedup,
        if quick {
            QUICK_FULL_RUN_SPEEDUP
        } else {
            REQUIRED_FULL_RUN_SPEEDUP
        },
    );
    gate(
        &mut failures,
        "batched admission run vs same-host pre-overhaul loop",
        batched_speedup,
        if quick {
            QUICK_BATCHED_SPEEDUP
        } else {
            REQUIRED_BATCHED_SPEEDUP
        },
    );
    gate(
        &mut failures,
        "default GC policy vs greedy-forced full run",
        policy_speedup,
        if quick {
            QUICK_DEFAULT_POLICY_VS_GREEDY
        } else {
            REQUIRED_DEFAULT_POLICY_VS_GREEDY
        },
    );
    gate_ceiling(
        &mut failures,
        "checksum verification overhead on the query loop",
        checksum_overhead,
        if quick {
            QUICK_CHECKSUM_OVERHEAD_CEILING
        } else {
            CHECKSUM_OVERHEAD_CEILING
        },
    );
    if sweep_gated {
        gate(
            &mut failures,
            "15-config sweep parallel vs serial",
            sweep_speedup,
            REQUIRED_SWEEP_SPEEDUP,
        );
    } else {
        println!(
            "NOTE: sweep parallel speedup {sweep_speedup:.2}x not gated \
             (single-core host; nothing to overlap)"
        );
    }

    if !failures.is_empty() {
        eprintln!("\nperfsuite: {} gate(s) failed", failures.len());
        std::process::exit(1);
    }
}

fn harnessed_write(
    out: &std::path::Path,
    mode: &str,
    results: &[BenchResult],
    comparisons: &[Comparison],
) {
    if let Err(e) = checkin_bench::harness::write_json(out, "perfsuite", mode, results, comparisons)
    {
        eprintln!("error: could not write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", out.display());
}
