//! `perfsuite` — the wall-clock performance suite behind `BENCH_perf.json`.
//!
//! Times the hot paths the dense-table / allocation-free refactors target:
//!
//! 1. **L2P lookup & remap** — the dense `MappingTable` against an in-binary
//!    `HashMap`-backed baseline replicating the pre-refactor layout (forward
//!    `HashMap<Lpn, Location>` plus reverse `HashMap<_, Vec<Lpn>>`). The
//!    suite fails (exit 1) unless the dense lookup is at least 2x faster.
//! 2. **Journal append** — sector-aligned appends through `JournalManager`
//!    with the double-buffered zone swap on overflow.
//! 3. **Checkpoint remap** — a 64-entry in-storage checkpoint command
//!    against a fully modelled SSD.
//! 4. **Trace emit** — the disabled-tracer hot-path cost (one branch)
//!    against the ring-buffered sink, guarding the zero-overhead claim.
//! 5. **Full system run** — a 50k-query Check-In run (10k under `--quick`).
//! 6. **Parallel sweep** — the five-strategy comparison batch, serial vs.
//!    `run_configs` across all cores.
//!
//! Results land in `BENCH_perf.json` (override with `--out PATH`) so later
//! changes can regress against recorded numbers.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use checkin_bench::harness::{bench, compare, BenchOpts, BenchResult, Comparison};
use checkin_core::{default_jobs, run_configs, JournalManager, Layout, Strategy, SystemConfig};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind, UnitPayload};
use checkin_ftl::{BufSlot, Ftl, FtlConfig, Location, Lpn, MappingTable, Pun, UnitWrite};
use checkin_sim::{SimRng, SimTime, TraceEvent, TraceLayer, Tracer};
use checkin_ssd::{CheckpointMode, CowEntry, Ssd, SsdTiming};

/// Mapped LPNs in the L2P benches — the paper-default device has ~400k
/// 4-sector mapping units, so this is a realistically full table.
const L2P_ENTRIES: u64 = 400_000;

/// Required dense-vs-HashMap lookup speedup (the acceptance bar).
const REQUIRED_L2P_SPEEDUP: f64 = 2.0;

/// The pre-refactor mapping table: hashed forward map plus hashed
/// reverse referrer lists. Kept here, out of the library, purely as the
/// measurement baseline for the dense [`MappingTable`].
#[derive(Default)]
struct HashMapTable {
    forward: HashMap<Lpn, Location>,
    flash_refs: HashMap<Pun, Vec<Lpn>>,
    buf_refs: HashMap<BufSlot, Vec<Lpn>>,
}

impl HashMapTable {
    fn lookup(&self, lpn: Lpn) -> Option<Location> {
        self.forward.get(&lpn).copied()
    }

    fn map(&mut self, lpn: Lpn, loc: Location) {
        self.unmap(lpn);
        self.forward.insert(lpn, loc);
        match loc {
            Location::Flash(pun) => self.flash_refs.entry(pun).or_default().push(lpn),
            Location::Buffer(slot) => self.buf_refs.entry(slot).or_default().push(lpn),
        }
    }

    fn unmap(&mut self, lpn: Lpn) {
        let Some(loc) = self.forward.remove(&lpn) else {
            return;
        };
        match loc {
            Location::Flash(pun) => {
                if let Some(refs) = self.flash_refs.get_mut(&pun) {
                    refs.retain(|&l| l != lpn);
                    if refs.is_empty() {
                        self.flash_refs.remove(&pun);
                    }
                }
            }
            Location::Buffer(slot) => {
                if let Some(refs) = self.buf_refs.get_mut(&slot) {
                    refs.retain(|&l| l != lpn);
                    if refs.is_empty() {
                        self.buf_refs.remove(&slot);
                    }
                }
            }
        }
    }
}

/// Same population for both tables: every LPN mapped, a few PUN aliases.
fn populate_dense() -> MappingTable {
    let mut t = MappingTable::with_capacity(L2P_ENTRIES as usize);
    for i in 0..L2P_ENTRIES {
        t.map(Lpn(i), Location::Flash(Pun(i)));
    }
    t
}

fn populate_hashed() -> HashMapTable {
    let mut t = HashMapTable::default();
    for i in 0..L2P_ENTRIES {
        t.map(Lpn(i), Location::Flash(Pun(i)));
    }
    t
}

fn bench_l2p(
    opts: BenchOpts,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) -> f64 {
    section("L2P mapping table: dense Vec vs HashMap baseline");
    let dense = populate_dense();
    let hashed = populate_hashed();

    let mut rng = SimRng::seed_from(11);
    let hashed_lookup = bench("l2p/lookup_hashmap_baseline", opts, || {
        hashed.lookup(Lpn(rng.gen_range(L2P_ENTRIES)))
    });
    let mut rng = SimRng::seed_from(11);
    let dense_lookup = bench("l2p/lookup_dense", opts, || {
        dense.lookup(Lpn(rng.gen_range(L2P_ENTRIES)))
    });
    let lookup_cmp = compare("l2p_lookup_speedup", &hashed_lookup, &dense_lookup);
    let speedup = lookup_cmp.speedup;

    // Remap churn: every iteration moves a random LPN to a fresh PUN,
    // exercising forward update plus reverse unlink/link — the write path
    // the FTL takes on every host program and GC relocation.
    let mut hashed = hashed;
    let mut rng = SimRng::seed_from(12);
    let mut next_pun = L2P_ENTRIES;
    let hashed_remap = bench("l2p/remap_hashmap_baseline", opts, || {
        let lpn = Lpn(rng.gen_range(L2P_ENTRIES));
        hashed.map(lpn, Location::Flash(Pun(next_pun)));
        next_pun += 1;
    });
    let mut dense = dense;
    let mut rng = SimRng::seed_from(12);
    // Recycle PUNs within a bounded window so the dense reverse array
    // stays device-sized, as it does in the real FTL.
    let mut next_pun = L2P_ENTRIES;
    let dense_remap = bench("l2p/remap_dense", opts, || {
        let lpn = Lpn(rng.gen_range(L2P_ENTRIES));
        dense.map(lpn, Location::Flash(Pun(next_pun % (2 * L2P_ENTRIES))));
        next_pun += 1;
    });
    let remap_cmp = compare("l2p_remap_speedup", &hashed_remap, &dense_remap);

    results.extend([hashed_lookup, dense_lookup, hashed_remap, dense_remap]);
    comparisons.extend([lookup_cmp, remap_cmp]);
    speedup
}

fn bench_journal_append(opts: BenchOpts, results: &mut Vec<BenchResult>) {
    section("Journal append path (sector-aligned, Algorithm 2)");
    let layout = Layout::new(1_024, 4096, 512, 1 << 14);
    let mut jm = JournalManager::new(layout, true, 0.7);
    let mut rng = SimRng::seed_from(21);
    let mut version = 0u64;
    results.push(bench("journal/append_aligned", opts, || {
        version += 1;
        let key = rng.gen_range(1_024);
        match jm.append(key, version, 300) {
            Ok(req) => req.sectors,
            Err(_) => {
                // Zone full: swap to the other journal half and recycle
                // the retiring zone's entry buffer, as the engine does.
                let zone = jm.begin_checkpoint();
                jm.recycle_zone(zone);
                0
            }
        }
    }));
}

fn bench_checkpoint_remap(opts: BenchOpts, results: &mut Vec<BenchResult>) {
    section("Checkpoint remap command (64 live entries)");
    let flash = FlashArray::new(FlashGeometry::paper_default(), FlashTiming::mlc());
    let ftl = Ftl::new(flash, FtlConfig::default()).unwrap();
    let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(1_024, 4096, 512, 1 << 14);
    let mut jm = JournalManager::new(layout, true, 0.7);
    let mut t = SimTime::ZERO;
    for key in 0..64u64 {
        let req = jm.append(key, 1, 512).unwrap();
        t = ssd.write(&req, OobKind::Journal, t).unwrap();
    }
    let zone = jm.begin_checkpoint();
    let entries: Vec<CowEntry> = zone
        .entries
        .iter()
        .map(|(key, e)| CowEntry {
            src_lba: e.journal_lba,
            dst_lba: layout.home_lba(*key),
            sectors: e.sectors,
            dst_sectors: e.sectors,
            key: *key,
            merged: e.merged,
        })
        .collect();
    results.push(bench("ssd/checkpoint_remap_64_entries", opts, || {
        ssd.checkpoint(&entries, CheckpointMode::Remap, SimTime::ZERO)
            .unwrap()
    }));
}

fn bench_ftl_write(opts: BenchOpts, results: &mut Vec<BenchResult>) {
    section("FTL unit write (journal stream)");
    let flash = FlashArray::new(FlashGeometry::paper_default(), FlashTiming::mlc());
    let mut ftl = Ftl::new(flash, FtlConfig::default()).unwrap();
    let mut lpn = 0u64;
    results.push(bench("ftl/unit_write", opts, || {
        let w = UnitWrite {
            lpn: Lpn(lpn % L2P_ENTRIES),
            payload: UnitPayload::single(lpn, 1, 512),
            whole_unit: true,
        };
        lpn += 1;
        ftl.write(w, OobKind::Journal, SimTime::ZERO).unwrap()
    }));
}

fn bench_tracer(
    opts: BenchOpts,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) {
    section("Trace emit: disabled (hot-path cost) vs ring-buffered");
    let disabled = Tracer::disabled();
    let mut x = 0u64;
    let off = bench("trace/emit_disabled", opts, || {
        x += 1;
        disabled.emit(|| {
            TraceEvent::new(SimTime::from_nanos(x), TraceLayer::Flash, "program").with("ppn", x)
        });
        x
    });
    let ring = Tracer::ring_buffered(4_096);
    let mut y = 0u64;
    let on = bench("trace/emit_ring_buffered", opts, || {
        y += 1;
        ring.emit(|| {
            TraceEvent::new(SimTime::from_nanos(y), TraceLayer::Flash, "program").with("ppn", y)
        });
        y
    });
    comparisons.push(compare("trace_disabled_speedup", &on, &off));
    results.extend([off, on]);
}

/// Wraps a one-shot measurement in a [`BenchResult`]: `units` is the work
/// count (queries, configs) so `ns_per_op` reads as time per unit.
fn one_shot(name: &str, units: u64, run: impl FnOnce()) -> BenchResult {
    let start = Instant::now();
    run();
    let ns = start.elapsed().as_nanos().max(1);
    let result = BenchResult {
        name: name.to_string(),
        iters: units,
        best_batch_ns: ns,
        total_iters: units,
        total_ns: ns,
    };
    println!(
        "  {:<44} {:>12.1} ns/op   ({:.3} s total)",
        result.name,
        result.ns_per_op(),
        ns as f64 / 1e9
    );
    result
}

fn bench_full_run(quick: bool, results: &mut Vec<BenchResult>) {
    let queries: u64 = if quick { 10_000 } else { 50_000 };
    section(&format!("Full system run ({queries} queries, Check-In)"));
    let mut config = SystemConfig::for_strategy(Strategy::CheckIn);
    config.total_queries = queries;
    config.threads = 32;
    config.workload.record_count = 6_000;
    let name = format!("system/full_run_{}k_queries", queries / 1_000);
    results.push(one_shot(&name, queries, || {
        let report = checkin_bench::run(config);
        assert!(report.throughput > 0.0);
    }));
}

fn bench_parallel_sweep(
    quick: bool,
    results: &mut Vec<BenchResult>,
    comparisons: &mut Vec<Comparison>,
) {
    let queries: u64 = if quick { 4_000 } else { 20_000 };
    let jobs = default_jobs();
    section(&format!(
        "Strategy-comparison sweep: serial vs {jobs} worker threads"
    ));
    let configs: Vec<SystemConfig> = Strategy::all()
        .into_iter()
        .map(|s| {
            let mut c = SystemConfig::for_strategy(s);
            c.total_queries = queries;
            c.threads = 32;
            c.workload.record_count = 6_000;
            c
        })
        .collect();
    let n = configs.len() as u64;

    let serial = one_shot("sweep/five_strategies_serial", n, || {
        for r in run_configs(&configs, 1) {
            r.expect("sweep config runs");
        }
    });
    let parallel = one_shot("sweep/five_strategies_parallel", n, || {
        for r in run_configs(&configs, jobs) {
            r.expect("sweep config runs");
        }
    });
    comparisons.push(compare("sweep_parallel_speedup", &serial, &parallel));
    results.extend([serial, parallel]);
}

fn section(title: &str) {
    println!("\n== {title}");
}

fn main() {
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_perf.json");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match argv.next() {
                Some(path) => out = PathBuf::from(path),
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: perfsuite [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let mode = if quick { "quick" } else { "full" };
    let opts = if quick {
        BenchOpts::quick()
    } else {
        BenchOpts::full()
    };
    println!("perfsuite ({mode}) -> {}", out.display());

    let mut results = Vec::new();
    let mut comparisons = Vec::new();

    let l2p_speedup = bench_l2p(opts, &mut results, &mut comparisons);
    bench_journal_append(opts, &mut results);
    bench_ftl_write(opts, &mut results);
    bench_checkpoint_remap(opts, &mut results);
    bench_tracer(opts, &mut results, &mut comparisons);
    bench_full_run(quick, &mut results);
    bench_parallel_sweep(quick, &mut results, &mut comparisons);

    harnessed_write(&out, mode, &results, &comparisons);

    println!();
    if l2p_speedup >= REQUIRED_L2P_SPEEDUP {
        println!(
            "PASS: dense L2P lookup is {l2p_speedup:.2}x the HashMap baseline \
             (required {REQUIRED_L2P_SPEEDUP:.1}x)"
        );
    } else {
        eprintln!(
            "FAIL: dense L2P lookup is only {l2p_speedup:.2}x the HashMap \
             baseline (required {REQUIRED_L2P_SPEEDUP:.1}x)"
        );
        std::process::exit(1);
    }
}

fn harnessed_write(
    out: &std::path::Path,
    mode: &str,
    results: &[BenchResult],
    comparisons: &[Comparison],
) {
    if let Err(e) = checkin_bench::harness::write_json(out, "perfsuite", mode, results, comparisons)
    {
        eprintln!("error: could not write {}: {e}", out.display());
        std::process::exit(1);
    }
    println!("\nwrote {}", out.display());
}
