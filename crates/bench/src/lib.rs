//! Shared harness utilities for the figure/table reproduction benches.
//!
//! Each `benches/figXX_*.rs` target is a standalone binary (Criterion-free,
//! `harness = false`) that sweeps the parameters of one paper figure and
//! prints the same rows/series the paper reports, next to the paper's
//! claims. Run them all with `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use checkin_core::{KvSystem, RunReport, Strategy, SystemConfig};
use checkin_flash::FlashGeometry;

/// Builds and runs a system, panicking on configuration errors (benches
/// are developer-facing).
///
/// # Panics
///
/// Panics when the configuration is invalid or the run fails.
pub fn run(config: SystemConfig) -> RunReport {
    KvSystem::new(config)
        .unwrap_or_else(|e| panic!("bench config invalid: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("bench run failed: {e}"))
}

/// Paper-scale defaults shared by the overall-performance figures:
/// the full 1.5 GiB device, zipfian workload A, scaled query counts.
pub fn paper_config(strategy: Strategy) -> SystemConfig {
    let mut c = SystemConfig::for_strategy(strategy);
    c.total_queries = 30_000;
    c.threads = 32;
    c.workload.record_count = 6_000;
    c
}

/// A deliberately small device (~50 MiB) that keeps the FTL under
/// garbage-collection pressure — the regime behind Fig. 8's redundant
/// write and GC comparisons.
pub fn gc_pressured_config(strategy: Strategy) -> SystemConfig {
    let mut c = SystemConfig::for_strategy(strategy);
    c.total_queries = 150_000;
    c.threads = 32;
    c.workload.record_count = 3_000;
    c.workload.mix = checkin_workload::OpMix::A;
    c.geometry = FlashGeometry {
        channels: 2,
        dies_per_channel: 2,
        planes_per_die: 1,
        blocks_per_plane: 24,
        pages_per_block: 128,
        page_bytes: 4096,
    };
    c.journal_trigger_sectors = 8_192;
    c.gc_threshold_blocks = 6;
    c.gc_soft_threshold_blocks = 20;
    c
}

/// Prints a figure banner with the paper's claim for quick comparison.
pub fn banner(figure: &str, claim: &str) {
    println!("\n==============================================================");
    println!("{figure}");
    println!("paper: {claim}");
    println!("==============================================================");
}

/// Formats a ratio as `x.xx` with a guard for non-finite values.
pub fn ratio(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.2}x")
    } else {
        "inf".to_string()
    }
}

/// Percent reduction of `new` relative to `old` (positive = improvement).
pub fn reduction_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (1.0 - new / old) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        assert!((reduction_pct(100.0, 8.0) - 92.0).abs() < 1e-9);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(1.5), "1.50x");
        assert_eq!(ratio(f64::INFINITY), "inf");
    }

    #[test]
    fn configs_validate() {
        for s in Strategy::all() {
            paper_config(s).validate().unwrap();
            gc_pressured_config(s).validate().unwrap();
        }
    }
}
