//! Minimal wall-clock microbenchmark harness.
//!
//! Criterion cannot be used here (the build must succeed with no network
//! and an empty registry cache), so this module provides the small slice
//! the perf suite needs: warmup, batched timing with `Instant`, best-batch
//! reporting to damp scheduler noise, and a hand-rolled JSON emitter for
//! `BENCH_perf.json` so future PRs can regress against recorded numbers.

use std::fmt::Write as _;
use std::hint::black_box;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// Timing knobs for one measurement.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Time spent running the closure before measurement starts.
    pub warmup: Duration,
    /// Total measured time budget, split across batches.
    pub measure: Duration,
    /// Number of batches the budget is split into (best batch wins).
    pub batches: u32,
}

impl BenchOpts {
    /// Full-fidelity defaults used by `perfsuite` without flags.
    pub fn full() -> Self {
        BenchOpts {
            warmup: Duration::from_millis(200),
            measure: Duration::from_millis(1_000),
            batches: 10,
        }
    }

    /// Fast settings for `perfsuite --quick` and CI smoke runs.
    pub fn quick() -> Self {
        BenchOpts {
            warmup: Duration::from_millis(30),
            measure: Duration::from_millis(150),
            batches: 5,
        }
    }
}

/// Outcome of one measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (stable key in `BENCH_perf.json`).
    pub name: String,
    /// Iterations executed in the best batch.
    pub iters: u64,
    /// Wall-clock nanoseconds of the best batch.
    pub best_batch_ns: u128,
    /// Iterations across all batches.
    pub total_iters: u64,
    /// Wall-clock nanoseconds across all batches.
    pub total_ns: u128,
}

impl BenchResult {
    /// Best-batch nanoseconds per operation (the headline number).
    pub fn ns_per_op(&self) -> f64 {
        if self.iters == 0 {
            f64::NAN
        } else {
            self.best_batch_ns as f64 / self.iters as f64
        }
    }

    /// Mean nanoseconds per operation across every batch.
    pub fn mean_ns_per_op(&self) -> f64 {
        if self.total_iters == 0 {
            f64::NAN
        } else {
            self.total_ns as f64 / self.total_iters as f64
        }
    }

    /// Best-batch operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        1e9 / self.ns_per_op()
    }
}

/// Times `f` under `opts` and prints a one-line summary.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench<R>(name: &str, opts: BenchOpts, mut f: impl FnMut() -> R) -> BenchResult {
    // Warmup, and calibrate how many iterations fit in one batch.
    let warmup_start = Instant::now();
    let mut warm_iters: u64 = 0;
    while warmup_start.elapsed() < opts.warmup || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
    }
    let warm_ns = warmup_start.elapsed().as_nanos().max(1);
    let batch_budget_ns = (opts.measure.as_nanos() / opts.batches.max(1) as u128).max(1);
    let mut per_batch = ((warm_iters as u128 * batch_budget_ns) / warm_ns).max(1) as u64;

    let mut best_batch_ns = 0u128;
    let mut best_iters = 0u64;
    let mut total_iters = 0u64;
    let mut total_ns = 0u128;
    for _ in 0..opts.batches.max(1) {
        let start = Instant::now();
        for _ in 0..per_batch {
            black_box(f());
        }
        let elapsed = start.elapsed().as_nanos().max(1);
        total_iters += per_batch;
        total_ns += elapsed;
        let this_per_op = elapsed as f64 / per_batch as f64;
        let best_per_op = best_batch_ns as f64 / best_iters.max(1) as f64;
        if best_iters == 0 || this_per_op < best_per_op {
            best_batch_ns = elapsed;
            best_iters = per_batch;
        }
        // Re-calibrate toward the budget using the freshest timing.
        per_batch = ((per_batch as u128 * batch_budget_ns) / elapsed).max(1) as u64;
    }

    let result = BenchResult {
        name: name.to_string(),
        iters: best_iters,
        best_batch_ns,
        total_iters,
        total_ns,
    };
    println!(
        "  {:<44} {:>12.1} ns/op   {:>14.0} ops/s   ({} iters)",
        result.name,
        result.ns_per_op(),
        result.ops_per_sec(),
        result.total_iters
    );
    result
}

/// A derived headline number (e.g. a speedup ratio between two benches).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Stable key in `BENCH_perf.json`.
    pub name: String,
    /// Name of the baseline bench.
    pub baseline: String,
    /// Name of the candidate bench.
    pub candidate: String,
    /// `baseline_ns_per_op / candidate_ns_per_op` (>1 is a win).
    pub speedup: f64,
}

/// Builds a [`Comparison`] from two results (baseline first).
pub fn compare(name: &str, baseline: &BenchResult, candidate: &BenchResult) -> Comparison {
    let speedup = baseline.ns_per_op() / candidate.ns_per_op();
    println!(
        "  {:<44} {:>11.2}x  ({} vs {})",
        name, speedup, candidate.name, baseline.name
    );
    Comparison {
        name: name.to_string(),
        baseline: baseline.name.clone(),
        candidate: candidate.name.clone(),
        speedup,
    }
}

/// A measured scalar that is not a wall-clock timing — one cell of a
/// metric matrix (WAF, lifetime score, tail latency, ...). The values
/// come from the deterministic simulation, so unlike `benches` entries
/// they are reproducible bit-for-bit on any host.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Stable key in `BENCH_perf.json` (e.g. `gclab/zipfian/greedy/waf`).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit label (`"x"`, `"us"`, `"score"`, ...).
    pub unit: String,
}

/// Builds a [`Metric`] and prints a one-line summary.
pub fn metric(name: &str, value: f64, unit: &str) -> Metric {
    println!("  {name:<52} {value:>14.3} {unit}");
    Metric {
        name: name.to_string(),
        value,
        unit: unit.to_string(),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.3}");
    } else {
        out.push_str("null");
    }
}

/// Serializes a full suite run to the `BENCH_perf.json` format documented
/// in README.md (no metric matrix — see [`render_json_with`]).
pub fn render_json(
    suite: &str,
    mode: &str,
    results: &[BenchResult],
    comparisons: &[Comparison],
) -> String {
    render_json_with(suite, mode, results, comparisons, &[])
}

/// Serializes a full suite run, including a `metrics` section with the
/// simulation-derived scalar matrix.
pub fn render_json_with(
    suite: &str,
    mode: &str,
    results: &[BenchResult],
    comparisons: &[Comparison],
    metrics: &[Metric],
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"suite\": ");
    push_json_str(&mut out, suite);
    out.push_str(",\n  \"mode\": ");
    push_json_str(&mut out, mode);
    out.push_str(",\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\"name\": ");
        push_json_str(&mut out, &r.name);
        let _ = write!(
            out,
            ", \"iters\": {}, \"best_batch_ns\": {}, \"ns_per_op\": ",
            r.total_iters, r.best_batch_ns
        );
        push_json_f64(&mut out, r.ns_per_op());
        out.push_str(", \"mean_ns_per_op\": ");
        push_json_f64(&mut out, r.mean_ns_per_op());
        out.push_str(", \"ops_per_sec\": ");
        push_json_f64(&mut out, r.ops_per_sec());
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"comparisons\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        out.push_str("    {\"name\": ");
        push_json_str(&mut out, &c.name);
        out.push_str(", \"baseline\": ");
        push_json_str(&mut out, &c.baseline);
        out.push_str(", \"candidate\": ");
        push_json_str(&mut out, &c.candidate);
        out.push_str(", \"speedup\": ");
        push_json_f64(&mut out, c.speedup);
        out.push('}');
        if i + 1 < comparisons.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"metrics\": [\n");
    for (i, m) in metrics.iter().enumerate() {
        out.push_str("    {\"name\": ");
        push_json_str(&mut out, &m.name);
        out.push_str(", \"value\": ");
        push_json_f64(&mut out, m.value);
        out.push_str(", \"unit\": ");
        push_json_str(&mut out, &m.unit);
        out.push('}');
        if i + 1 < metrics.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the suite report to `path` as JSON.
pub fn write_json(
    path: &Path,
    suite: &str,
    mode: &str,
    results: &[BenchResult],
    comparisons: &[Comparison],
) -> io::Result<()> {
    write_json_with(path, suite, mode, results, comparisons, &[])
}

/// Writes the suite report plus its metric matrix to `path` as JSON.
pub fn write_json_with(
    path: &Path,
    suite: &str,
    mode: &str,
    results: &[BenchResult],
    comparisons: &[Comparison],
    metrics: &[Metric],
) -> io::Result<()> {
    std::fs::write(
        path,
        render_json_with(suite, mode, results, comparisons, metrics),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let opts = BenchOpts {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
            batches: 2,
        };
        let mut acc = 0u64;
        let r = bench("noop_add", opts, || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(r.iters > 0);
        assert!(r.ns_per_op().is_finite());
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn json_render_is_wellformed_enough() {
        let r = BenchResult {
            name: "a\"b".into(),
            iters: 10,
            best_batch_ns: 1000,
            total_iters: 20,
            total_ns: 2500,
        };
        let c = Comparison {
            name: "speedup".into(),
            baseline: "old".into(),
            candidate: "new".into(),
            speedup: 2.5,
        };
        let s = render_json(
            "perfsuite",
            "quick",
            std::slice::from_ref(&r),
            std::slice::from_ref(&c),
        );
        assert!(s.contains("\"suite\": \"perfsuite\""));
        assert!(s.contains("a\\\"b"));
        assert!(s.contains("\"speedup\": 2.500"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());

        let m = Metric {
            name: "gclab/zipfian/greedy/waf".into(),
            value: 1.875,
            unit: "x".into(),
        };
        let s = render_json_with("gclab", "full", &[r], &[c], &[m]);
        assert!(s.contains("\"name\": \"gclab/zipfian/greedy/waf\""));
        assert!(s.contains("\"value\": 1.875"));
        assert!(s.contains("\"unit\": \"x\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn comparison_speedup_ratio() {
        let base = BenchResult {
            name: "base".into(),
            iters: 1,
            best_batch_ns: 200,
            total_iters: 1,
            total_ns: 200,
        };
        let cand = BenchResult {
            name: "cand".into(),
            iters: 1,
            best_batch_ns: 100,
            total_iters: 1,
            total_ns: 100,
        };
        let c = compare("x", &base, &cand);
        assert!((c.speedup - 2.0).abs() < 1e-9);
    }
}
