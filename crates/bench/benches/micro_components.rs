//! Micro-benchmarks of the substrate components: zipfian key generation,
//! FTL write/remap paths, and whole-checkpoint execution. Uses the
//! in-repo harness (`checkin_bench::harness`) — criterion is unavailable
//! in offline builds.

use checkin_bench::harness::{bench, BenchOpts};
use checkin_core::{JournalManager, Layout, Strategy};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind, UnitPayload};
use checkin_ftl::{Ftl, FtlConfig, Lpn, UnitWrite};
use checkin_sim::{SimRng, SimTime};
use checkin_ssd::{CheckpointMode, CowEntry, Ssd, SsdTiming};
use checkin_workload::ZipfianGenerator;

fn fresh_ftl(unit_bytes: u32) -> Ftl {
    let flash = FlashArray::new(FlashGeometry::paper_default(), FlashTiming::mlc());
    Ftl::new(
        flash,
        FtlConfig {
            unit_bytes,
            ..FtlConfig::default()
        },
    )
    .unwrap()
}

fn bench_zipfian(opts: BenchOpts) {
    let mut z = ZipfianGenerator::scrambled(1_000_000, 0.99);
    let mut rng = SimRng::seed_from(7);
    bench("workload/zipfian_next_key", opts, || z.next_key(&mut rng));
}

fn bench_ftl_write(opts: BenchOpts) {
    let mut ftl = fresh_ftl(512);
    let mut lpn = 0u64;
    bench("ftl/sequential_unit_write", opts, || {
        let w = UnitWrite {
            lpn: Lpn(lpn % 400_000),
            payload: UnitPayload::single(lpn, 1, 512),
            whole_unit: true,
        };
        lpn += 1;
        ftl.write(w, OobKind::Data, SimTime::ZERO).unwrap()
    });
}

fn bench_remap(opts: BenchOpts) {
    let mut ftl = fresh_ftl(512);
    for i in 0..4_096u64 {
        ftl.write(
            UnitWrite {
                lpn: Lpn(i),
                payload: UnitPayload::single(i, 1, 512),
                whole_unit: true,
            },
            OobKind::Journal,
            SimTime::ZERO,
        )
        .unwrap();
    }
    ftl.flush(SimTime::ZERO).unwrap();
    let mut i = 0u64;
    bench("ftl/remap", opts, || {
        let dst = Lpn(1_000_000 + i);
        ftl.remap(dst, Lpn(i % 4_096)).unwrap();
        i += 1;
        i
    });
}

fn bench_checkpoint_command(opts: BenchOpts) {
    let ftl = fresh_ftl(512);
    let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
    let layout = Layout::new(1_024, 4096, 512, 1 << 14);
    let mut jm = JournalManager::new(layout, true, 0.7);
    let mut t = SimTime::ZERO;
    for key in 0..64u64 {
        {
            let req = jm.append(key, 1, 512).unwrap();
            t = ssd.write(&req, OobKind::Journal, t).unwrap();
        }
    }
    let zone = jm.begin_checkpoint();
    let entries: Vec<CowEntry> = zone
        .entries
        .iter()
        .map(|(key, e)| CowEntry {
            src_lba: e.journal_lba,
            dst_lba: layout.home_lba(*key),
            sectors: e.sectors,
            dst_sectors: e.sectors,
            key: *key,
            merged: e.merged,
        })
        .collect();
    bench("ssd/checkpoint_batch_64_remaps", opts, || {
        ssd.checkpoint(&entries, CheckpointMode::Remap, SimTime::ZERO)
            .unwrap()
    });
}

fn bench_end_to_end_small(opts: BenchOpts) {
    bench("system/kv_system_2000_queries", opts, || {
        let mut config = checkin_core::SystemConfig::for_strategy(Strategy::CheckIn);
        config.total_queries = 2_000;
        config.threads = 8;
        config.workload.record_count = 500;
        let report = checkin_core::KvSystem::new(config).unwrap().run().unwrap();
        report.throughput
    });
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let opts = if quick {
        BenchOpts::quick()
    } else {
        BenchOpts::full()
    };
    println!(
        "micro_components ({})",
        if quick { "quick" } else { "full" }
    );
    bench_zipfian(opts);
    bench_ftl_write(opts);
    bench_remap(opts);
    bench_checkpoint_command(opts);
    bench_end_to_end_small(opts);
}
