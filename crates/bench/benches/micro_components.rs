//! Criterion micro-benchmarks of the substrate components: zipfian key
//! generation, FTL write/remap paths, and whole-checkpoint execution.

use checkin_core::{JournalManager, Layout, Strategy};
use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind, UnitPayload};
use checkin_ftl::{Ftl, FtlConfig, Lpn, UnitWrite};
use checkin_sim::{SimRng, SimTime};
use checkin_ssd::{CheckpointMode, CowEntry, Ssd, SsdTiming};
use checkin_workload::ZipfianGenerator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fresh_ftl(unit_bytes: u32) -> Ftl {
    let flash = FlashArray::new(FlashGeometry::paper_default(), FlashTiming::mlc());
    Ftl::new(
        flash,
        FtlConfig {
            unit_bytes,
            ..FtlConfig::default()
        },
    )
    .unwrap()
}

fn bench_zipfian(c: &mut Criterion) {
    c.bench_function("workload/zipfian_next_key", |b| {
        let mut z = ZipfianGenerator::scrambled(1_000_000, 0.99);
        let mut rng = SimRng::seed_from(7);
        b.iter(|| black_box(z.next_key(&mut rng)));
    });
}

fn bench_ftl_write(c: &mut Criterion) {
    c.bench_function("ftl/sequential_unit_write", |b| {
        let mut ftl = fresh_ftl(512);
        let mut lpn = 0u64;
        b.iter(|| {
            let w = UnitWrite {
                lpn: Lpn(lpn % 400_000),
                payload: UnitPayload::single(lpn, 1, 512),
                whole_unit: true,
            };
            lpn += 1;
            black_box(ftl.write(w, OobKind::Data, SimTime::ZERO).unwrap());
        });
    });
}

fn bench_remap(c: &mut Criterion) {
    c.bench_function("ftl/remap", |b| {
        let mut ftl = fresh_ftl(512);
        for i in 0..4_096u64 {
            ftl.write(
                UnitWrite {
                    lpn: Lpn(i),
                    payload: UnitPayload::single(i, 1, 512),
                    whole_unit: true,
                },
                OobKind::Journal,
                SimTime::ZERO,
            )
            .unwrap();
        }
        ftl.flush(SimTime::ZERO).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            let dst = Lpn(1_000_000 + i);
            ftl.remap(dst, Lpn(i % 4_096)).unwrap();
            black_box(());
            i += 1;
        });
    });
}

fn bench_checkpoint_command(c: &mut Criterion) {
    c.bench_function("ssd/checkpoint_batch_64_remaps", |b| {
        let ftl = fresh_ftl(512);
        let mut ssd = Ssd::new(ftl, SsdTiming::paper_default());
        let layout = Layout::new(1_024, 4096, 512, 1 << 14);
        let mut jm = JournalManager::new(layout, true, 0.7);
        let mut t = SimTime::ZERO;
        for key in 0..64u64 {
            for req in jm.append(key, 1, 512).unwrap() {
                t = ssd.write(&req, OobKind::Journal, t).unwrap();
            }
        }
        let zone = jm.begin_checkpoint();
        let entries: Vec<CowEntry> = zone
            .entries
            .iter()
            .map(|(key, e)| CowEntry {
                src_lba: e.journal_lba,
                dst_lba: layout.home_lba(*key),
                sectors: e.sectors,
                dst_sectors: e.sectors,
                key: *key,
                merged: e.merged,
            })
            .collect();
        b.iter(|| {
            black_box(
                ssd.checkpoint(&entries, CheckpointMode::Remap, SimTime::ZERO)
                    .unwrap(),
            );
        });
    });
}

fn bench_end_to_end_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.sample_size(10);
    group.bench_function("kv_system_2000_queries", |b| {
        b.iter(|| {
            let mut config = checkin_core::SystemConfig::for_strategy(Strategy::CheckIn);
            config.total_queries = 2_000;
            config.threads = 8;
            config.workload.record_count = 500;
            let report = checkin_core::KvSystem::new(config).unwrap().run().unwrap();
            black_box(report.throughput);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_zipfian,
    bench_ftl_write,
    bench_remap,
    bench_checkpoint_command,
    bench_end_to_end_small
);
criterion_main!(benches);
