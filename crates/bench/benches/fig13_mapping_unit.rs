//! Figure 13 — mapping-unit sensitivity: (a) throughput vs mapping-unit
//! size for ISC-C and Check-In; (b) journal space overhead of Check-In vs
//! ISC-C over four mixed record-size patterns.

use checkin_bench::{banner, paper_config, run};
use checkin_core::Strategy;
use checkin_workload::{OpMix, RecordSizes};

fn main() {
    part_a();
    part_b();
}

fn part_a() {
    banner(
        "Fig. 13(a): query throughput vs mapping-unit size",
        "throughput rises with the mapping unit (less metadata to process); \
         ISC-C's gain is limited by low reusability, Check-In's is largest \
         at 4096 B",
    );
    println!(
        "{:<10} {:>8} {:>14} {:>12} {:>10} {:>10}",
        "config", "unit", "throughput", "mean lat", "remap", "copy"
    );
    for strategy in [Strategy::IscC, Strategy::CheckIn] {
        for unit in [512u32, 1024, 2048, 4096] {
            let mut c = paper_config(strategy);
            c.unit_bytes = Some(unit);
            c.workload.sizes = RecordSizes::pattern2();
            c.total_queries = 25_000;
            // A finite map cache so smaller units pay their metadata cost.
            c.map_cache_entries = Some(16_384);
            let r = run(c);
            println!(
                "{:<10} {:>7}B {:>12.0}/s {:>12} {:>10} {:>10}",
                strategy.label(),
                unit,
                r.throughput,
                format!("{}", r.latency.mean),
                r.remapped_entries,
                r.copied_entries
            );
        }
        println!();
    }
}

fn part_b() {
    banner(
        "Fig. 13(b): journal space overhead, Check-In vs ISC-C (4 KiB unit)",
        "Check-In costs ~3% extra space at the 4 KiB mapping unit from class \
         rounding, in exchange for its reusability",
    );
    let patterns = [
        ("P1 small", RecordSizes::pattern1()),
        ("P2 mixed", RecordSizes::pattern2()),
        ("P3 medium", RecordSizes::pattern3()),
        ("P4 uniform", RecordSizes::pattern4()),
    ];
    println!(
        "{:<12} {:>14} {:>14} {:>12}",
        "pattern", "ISC-C space", "Check-In space", "delta"
    );
    for (name, sizes) in patterns {
        let mut overheads = Vec::new();
        for strategy in [Strategy::IscC, Strategy::CheckIn] {
            let mut c = paper_config(strategy);
            c.unit_bytes = Some(4096);
            c.workload.sizes = sizes.clone();
            c.workload.mix = OpMix::WRITE_ONLY;
            c.total_queries = 20_000;
            let r = run(c);
            overheads.push(r.journal_space_overhead);
        }
        println!(
            "{:<12} {:>13.3}x {:>13.3}x {:>+11.1}%",
            name,
            overheads[0],
            overheads[1],
            (overheads[1] / overheads[0] - 1.0) * 100.0
        );
    }
}
