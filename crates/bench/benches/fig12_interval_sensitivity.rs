//! Figure 12 — sensitivity of throughput and latency to the checkpoint
//! interval (baseline vs Check-In).

use checkin_bench::{banner, paper_config, run};
use checkin_core::Strategy;
use checkin_sim::SimDuration;

fn main() {
    banner(
        "Fig. 12: checkpoint-interval sensitivity",
        "the baseline improves as the interval grows (hot keys dedup in the \
         journal, checkpoints amortise); Check-In stays fast and steady \
         regardless of the interval",
    );
    let intervals_ms = [62u64, 125, 250, 500, 1000];
    println!(
        "{:<10} {:>10} {:>14} {:>12} {:>12} {:>8}",
        "config", "interval", "throughput", "mean lat", "p99.9", "cps"
    );
    for strategy in [Strategy::Baseline, Strategy::CheckIn] {
        for ms in intervals_ms {
            let mut c = paper_config(strategy);
            c.checkpoint_interval = SimDuration::from_millis(ms);
            c.total_queries = 30_000;
            let r = run(c);
            println!(
                "{:<10} {:>8}ms {:>12.0}/s {:>12} {:>12} {:>8}",
                strategy.label(),
                ms,
                r.throughput,
                format!("{}", r.latency.mean),
                format!("{}", r.latency.p999),
                r.checkpoints
            );
        }
        println!();
    }
}
