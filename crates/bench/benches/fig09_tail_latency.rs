//! Figure 9 — tail query latency before/after applying Check-In.

use checkin_bench::{banner, paper_config, reduction_pct, run};
use checkin_core::{RunReport, Strategy};
use checkin_workload::AccessPattern;

/// Renders a worst-latency-over-time strip: one character per 20 ms
/// bucket, log-scaled — checkpoint windows show up as the tall columns of
/// the paper's Fig. 9 plots.
fn sparkline(report: &RunReport, buckets: usize) -> String {
    const GLYPHS: [char; 7] = ['.', ':', '-', '=', '+', '*', '#'];
    report
        .timeline
        .iter()
        .take(buckets)
        .map(|p| {
            let us = p.worst.as_micros_f64().max(1.0);
            // ~decades: <1ms '.', 1-3ms ':', .., >300ms '#'
            let idx = ((us / 1000.0).log10() * 2.0).clamp(0.0, 6.0) as usize;
            GLYPHS[idx]
        })
        .collect()
}

fn main() {
    banner(
        "Fig. 9: tail latency (99.9th / 99.99th percentile)",
        "Check-In cuts p99.9 by 92.1% (uniform) / 92.4% (zipfian) vs baseline, \
         and p99.99 by 51.3% / 50.8% vs ISC-C",
    );
    for pattern in [AccessPattern::Uniform, AccessPattern::Zipfian] {
        println!("\n--- {} distribution ---", pattern.label());
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            "config", "p99", "p99.9", "p99.99", "max"
        );
        let mut reports: Vec<(Strategy, RunReport)> = Vec::new();
        for strategy in Strategy::all() {
            let mut c = paper_config(strategy);
            c.workload.pattern = pattern;
            c.total_queries = 60_000;
            let r = run(c);
            println!(
                "{:<10} {:>12} {:>12} {:>12} {:>12}",
                strategy.label(),
                format!("{}", r.latency.p99),
                format!("{}", r.latency.p999),
                format!("{}", r.latency.p9999),
                format!("{}", r.latency.max),
            );
            reports.push((strategy, r));
        }
        let get = |s: Strategy| {
            reports
                .iter()
                .find(|(x, _)| *x == s)
                .map(|(_, r)| r)
                .unwrap()
        };
        let base = get(Strategy::Baseline);
        let iscc = get(Strategy::IscC);
        let ci = get(Strategy::CheckIn);
        println!(
            "Check-In p99.9 vs baseline: {:>6.1}% lower   (paper: ~92%)",
            reduction_pct(
                base.latency.p999.as_micros_f64(),
                ci.latency.p999.as_micros_f64()
            )
        );
        println!(
            "Check-In p99.99 vs ISC-C:   {:>6.1}% lower   (paper: ~51%)",
            reduction_pct(
                iscc.latency.p9999.as_micros_f64(),
                ci.latency.p9999.as_micros_f64()
            )
        );
        println!("\nworst latency over time (20 ms buckets; . <1ms  : <3ms  - <10ms  = <30ms  + <100ms  * <300ms  # >300ms):");
        println!("  baseline  {}", sparkline(base, 90));
        println!("  check-in  {}", sparkline(ci, 90));
    }
}
