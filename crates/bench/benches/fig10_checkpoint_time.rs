//! Figure 10 — checkpointing time vs thread count, per configuration.
//!
//! As in the paper, query processing is locked while a checkpoint runs so
//! that checkpoint duration is measured cleanly.

use checkin_bench::{banner, paper_config, run};
use checkin_core::Strategy;
use checkin_workload::OpMix;

fn main() {
    banner(
        "Fig. 10: checkpointing time vs threads (query processing locked)",
        "in-storage checkpointing stays nearly flat as threads grow; the \
         baseline's time climbs with the journal volume per interval",
    );
    let threads = [4u32, 16, 32, 64, 128];
    print!("{:<10}", "config");
    for t in threads {
        print!(" {:>11}", format!("{t} thr"));
    }
    println!();
    for strategy in Strategy::all() {
        print!("{:<10}", strategy.label());
        for t in threads {
            let mut c = paper_config(strategy);
            c.workload.mix = OpMix::WRITE_ONLY;
            c.threads = t;
            c.total_queries = 30_000;
            c.lock_queries_during_checkpoint = true;
            let r = run(c);
            print!(" {:>11}", format!("{}", r.checkpoint_mean));
        }
        println!();
    }
    println!(
        "\n(checkpoint work per interval grows with thread count because a \
         faster client pool\n journals more data between triggers — the \
         paper's mechanism for the rising curves)"
    );
}
