//! Extension study (not a paper figure): how Check-In's advantage over
//! the baseline scales with the NAND generation. Slower cells make every
//! redundant program more expensive, so the paper's argument should
//! *strengthen* from SLC to TLC.

use checkin_bench::{banner, paper_config, reduction_pct, run};
use checkin_core::Strategy;
use checkin_flash::FlashTiming;

fn main() {
    banner(
        "Extension: cell-type sensitivity (SLC / MLC / TLC)",
        "implied by the paper's motivation — checkpoint copies cost tPROG, \
         so slower cells widen Check-In's margin",
    );
    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "cells", "tPROG", "base p99.9", "ci p99.9", "p99.9 gain", "thr gain"
    );
    for (name, timing) in [
        ("SLC", FlashTiming::slc()),
        ("MLC", FlashTiming::mlc()),
        ("TLC", FlashTiming::tlc()),
    ] {
        let mut base_cfg = paper_config(Strategy::Baseline);
        base_cfg.flash_timing = timing;
        let base = run(base_cfg);
        let mut ci_cfg = paper_config(Strategy::CheckIn);
        ci_cfg.flash_timing = timing;
        let ci = run(ci_cfg);
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>13.1}% {:>+11.1}%",
            name,
            format!("{}", timing.t_program),
            format!("{}", base.latency.p999),
            format!("{}", ci.latency.p999),
            reduction_pct(
                base.latency.p999.as_micros_f64(),
                ci.latency.p999.as_micros_f64()
            ),
            (ci.throughput / base.throughput - 1.0) * 100.0,
        );
    }
}
