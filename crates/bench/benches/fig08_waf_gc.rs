//! Figure 8 + Equation 1 — redundant writes, GC invocations, and flash
//! lifetime under sustained GC pressure.

use checkin_bench::{banner, gc_pressured_config, ratio, reduction_pct, run};
use checkin_core::{RunReport, Strategy};
use checkin_sim::SimDuration;

/// Mapping-unit bytes in effect for a strategy's default configuration.
fn c_unit_bytes(strategy: Strategy) -> u32 {
    strategy.default_unit_bytes()
}

fn main() {
    let by_interval = part_a();
    part_b();
    lifetime(&by_interval);
}

/// Fig. 8(a): redundant writes vs checkpoint interval per configuration.
/// "Redundant writes" = flash programs attributed to checkpoint copies
/// plus GC migration traffic (both rewrite data that already exists).
fn part_a() -> Vec<(Strategy, RunReport)> {
    banner(
        "Fig. 8(a): redundant writes on the SSD vs checkpoint interval",
        "Check-In reduces redundant writes by 94.3% vs baseline and 45.6% vs ISC-C",
    );
    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>12} {:>14}",
        "config", "interval", "cp sectors", "gc moved", "redundant", "vs baseline"
    );
    let mut defaults = Vec::new();
    for strategy in Strategy::all() {
        let mut baseline_red = None;
        for interval_ms in [125u64, 250, 500] {
            let mut c = gc_pressured_config(strategy);
            c.checkpoint_interval = SimDuration::from_millis(interval_ms);
            let r = run(c);
            let unit = c_unit_bytes(strategy) as u64;
            let redundant = r.redundant_write_bytes / 512 + r.flash.gc_units_moved * unit / 512;
            // Compare each strategy at 250ms against baseline at 250ms.
            if interval_ms == 250 {
                defaults.push((strategy, r.clone()));
            }
            let base = *baseline_red.get_or_insert(redundant);
            let _ = base;
            println!(
                "{:<10} {:>7}ms {:>12} {:>12} {:>12}",
                strategy.label(),
                interval_ms,
                r.redundant_write_bytes / 512,
                r.flash.gc_units_moved,
                redundant,
            );
        }
    }
    let base_red = defaults
        .iter()
        .find(|(s, _)| *s == Strategy::Baseline)
        .map(|(_, r)| {
            (r.redundant_write_bytes / 512
                + r.flash.gc_units_moved * c_unit_bytes(Strategy::Baseline) as u64 / 512)
                as f64
        })
        .unwrap();
    println!("\nreduction vs baseline at 250ms interval:");
    for (s, r) in &defaults {
        let red = (r.redundant_write_bytes / 512
            + r.flash.gc_units_moved * c_unit_bytes(*s) as u64 / 512) as f64;
        println!(
            "  {:<10} {:>7.1}%  (paper: Check-In -94.3%)",
            s.label(),
            reduction_pct(base_red, red)
        );
    }
    defaults
}

/// Fig. 8(b): GC invocations as write-query volume grows.
fn part_b() {
    banner(
        "Fig. 8(b): GC invocations vs write query count",
        "Check-In cuts GC count by 74.1% vs baseline and 44.8% vs ISC-C \
         (fewer invalid pages thanks to sector-aligned journaling)",
    );
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>10}",
        "config", "queries", "gc", "invalid", "erases"
    );
    for strategy in [
        Strategy::Baseline,
        Strategy::IscB,
        Strategy::IscC,
        Strategy::CheckIn,
    ] {
        for queries in [75_000u64, 150_000, 300_000] {
            let mut c = gc_pressured_config(strategy);
            c.total_queries = queries;
            let r = run(c);
            println!(
                "{:<10} {:>10} {:>8} {:>12} {:>10}",
                strategy.label(),
                queries,
                r.flash.gc_invocations,
                r.flash.invalid_units,
                r.flash.erases
            );
        }
    }
}

/// Equation (1): lifetime = PEC_max * T_op / BEC, compared as ratios at
/// equal work.
fn lifetime(defaults: &[(Strategy, RunReport)]) {
    banner(
        "Equation (1): flash lifetime ratios",
        "Check-In extends lifetime 3.86x vs baseline, 1.81x vs ISC-C",
    );
    let base = defaults
        .iter()
        .find(|(s, _)| *s == Strategy::Baseline)
        .map(|(_, r)| r)
        .unwrap();
    let iscc = defaults
        .iter()
        .find(|(s, _)| *s == Strategy::IscC)
        .map(|(_, r)| r)
        .unwrap();
    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "config", "erases", "vs baseline", "vs ISC-C"
    );
    for (s, r) in defaults {
        println!(
            "{:<10} {:>10} {:>14} {:>12}",
            s.label(),
            r.flash.erases,
            ratio(r.lifetime_vs(base)),
            ratio(r.lifetime_vs(iscc))
        );
    }
}
