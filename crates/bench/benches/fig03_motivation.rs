//! Figure 3 — checkpointing-overhead motivation study (baseline system).
//!
//! (a) I/O and flash-operation amplification caused by checkpointing,
//!     uniform vs zipfian;
//! (b) normalized checkpointing time as thread count grows;
//! (c) query latency during checkpointing vs overall average.

use checkin_bench::{banner, paper_config, run};
use checkin_core::Strategy;
use checkin_workload::{AccessPattern, OpMix};

fn main() {
    part_a();
    part_b();
    part_c();
}

fn part_a() {
    banner(
        "Fig. 3(a): I/O and flash-op amplification due to checkpointing",
        "total I/O = 2.98x (uniform) / 1.91x (zipfian) of write-query data; \
         flash ops 7.9x / 4.7x",
    );
    println!(
        "{:<10} {:>14} {:>18}",
        "pattern", "I/O amplif.", "flash-op amplif."
    );
    for pattern in [AccessPattern::Uniform, AccessPattern::Zipfian] {
        let mut c = paper_config(Strategy::Baseline);
        c.workload.mix = OpMix::WRITE_ONLY;
        c.workload.pattern = pattern;
        let r = run(c);
        println!(
            "{:<10} {:>13.2}x {:>17.2}x",
            pattern.label(),
            r.io_amplification,
            r.flash_amplification
        );
    }
}

fn part_b() {
    banner(
        "Fig. 3(b): normalized checkpointing time vs thread count",
        "grows with threads; steeper under uniform (more distinct latest \
         versions) than zipfian (latest-version count saturates)",
    );
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>12}",
        "pattern", "threads", "cp time", "normalized", "live keys/cp"
    );
    for pattern in [AccessPattern::Uniform, AccessPattern::Zipfian] {
        let mut base_time = None;
        for threads in [4u32, 16, 32, 64, 128] {
            let mut c = paper_config(Strategy::Baseline);
            c.workload.mix = OpMix::WRITE_ONLY;
            c.workload.pattern = pattern;
            c.threads = threads;
            c.lock_queries_during_checkpoint = true;
            let r = run(c);
            let t = r.checkpoint_mean.as_micros_f64();
            let norm = t / *base_time.get_or_insert(t);
            let live_per_cp = r.checkpoint_entries / r.checkpoints.max(1);
            println!(
                "{:<10} {:>8} {:>14} {:>13.2}x {:>12}",
                pattern.label(),
                threads,
                r.checkpoint_mean,
                norm,
                live_per_cp
            );
        }
    }
}

fn part_c() {
    banner(
        "Fig. 3(c): query latency during checkpointing vs average",
        "reads ~4x average, writes ~21x average while a checkpoint runs",
    );
    let mut c = paper_config(Strategy::Baseline);
    c.workload.mix = OpMix::A;
    c.workload.pattern = AccessPattern::Zipfian;
    let r = run(c);
    let read_ratio =
        r.latency_read_during_cp.mean.as_micros_f64() / r.latency_read.mean.as_micros_f64();
    let write_ratio =
        r.latency_write_during_cp.mean.as_micros_f64() / r.latency_write.mean.as_micros_f64();
    println!(
        "{:<8} {:>14} {:>16} {:>10}",
        "query", "avg latency", "during checkpoint", "ratio"
    );
    println!(
        "{:<8} {:>14} {:>16} {:>9.1}x",
        "read", r.latency_read.mean, r.latency_read_during_cp.mean, read_ratio
    );
    println!(
        "{:<8} {:>14} {:>16} {:>9.1}x",
        "write", r.latency_write.mean, r.latency_write_during_cp.mean, write_ratio
    );
}
