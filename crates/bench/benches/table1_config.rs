//! Table I — simulated machine configuration, as instantiated by the
//! reproduction's defaults.

use checkin_core::{Strategy, SystemConfig};

fn main() {
    let c = SystemConfig::for_strategy(Strategy::CheckIn);
    let g = c.geometry;
    let f = c.flash_timing;
    let s = c.ssd_timing;
    println!("Table I: simulated machine configuration (reproduction defaults)\n");
    println!("DBMS configuration");
    println!(
        "  record size            {:>20}",
        "128 B - 4 KiB (weighted mix)"
    );
    println!(
        "  checkpoint interval    {:>20}",
        format!("{} (scaled from 60 s)", c.checkpoint_interval)
    );
    println!(
        "  journal trigger        {:>20}",
        format!("{} sectors", c.journal_trigger_sectors)
    );
    println!("  total query count      {:>20}", c.total_queries);
    println!("\nHost system configuration");
    println!("  client threads         {:>20}", c.threads);
    println!("  host cores             {:>20}", c.host_cores);
    println!(
        "  per-query host work    {:>20}",
        format!("{}", c.host_cpu_per_op)
    );
    println!(
        "  interface              {:>20}",
        format!(
            "{:.1} GB/s + {} per cmd",
            s.link_bytes_per_sec as f64 / 1e9,
            s.cmd_overhead
        )
    );
    println!("  queue depth            {:>20}", s.queue_depth);
    println!("\nStorage configuration");
    println!(
        "  flash topology         {:>20}",
        format!(
            "{} ch x {} die x {} plane",
            g.channels, g.dies_per_channel, g.planes_per_die
        )
    );
    println!(
        "  block / page           {:>20}",
        format!("{} pages x {} B", g.pages_per_block, g.page_bytes)
    );
    println!(
        "  capacity               {:>20}",
        format!("{} MiB", g.capacity_bytes() / (1 << 20))
    );
    println!(
        "  flash timing (MLC)     {:>20}",
        format!(
            "tR {} / tPROG {} / tBER {}",
            f.t_read, f.t_program, f.t_erase
        )
    );
    println!(
        "  channel bus            {:>20}",
        format!("{} MB/s", f.bus_bytes_per_sec / 1_000_000)
    );
    println!("\nMapping unit per configuration");
    for strategy in Strategy::all() {
        println!(
            "  {:<10}           {:>20}",
            strategy.label(),
            format!("{} B", strategy.default_unit_bytes())
        );
    }
    println!(
        "\nwrite buffer            {:>20}",
        format!("{} units (power-protected)", c.write_buffer_units)
    );
}
