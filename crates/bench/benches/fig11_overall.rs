//! Figure 11 — overall query throughput and latency for workloads A, F
//! and write-only, as the thread count grows.

use checkin_bench::{banner, paper_config, reduction_pct, run};
use checkin_core::Strategy;
use checkin_workload::OpMix;

fn main() {
    let threads = [4u32, 16, 32, 64, 128];
    for mix in [OpMix::A, OpMix::F, OpMix::WRITE_ONLY] {
        banner(
            &format!(
                "Fig. 11: workload {} — throughput (queries/s) and mean latency",
                mix.label()
            ),
            "throughput rises then saturates with threads; Check-In gains ~8.1% \
             average throughput and ~10.2% lower latency at 128 threads vs baseline",
        );
        print!("{:<10}", "config");
        for t in threads {
            print!(" {:>16}", format!("{t} thr"));
        }
        println!();
        let mut at_128: Vec<(Strategy, f64, f64)> = Vec::new();
        for strategy in Strategy::all() {
            print!("{:<10}", strategy.label());
            for t in threads {
                let mut c = paper_config(strategy);
                c.workload.mix = mix;
                c.threads = t;
                c.total_queries = 20_000;
                let r = run(c);
                print!(" {:>16}", format!("{:.0}/{}", r.throughput, r.latency.mean));
                if t == 128 {
                    at_128.push((strategy, r.throughput, r.latency.mean.as_micros_f64()));
                }
            }
            println!();
        }
        let base = at_128
            .iter()
            .find(|(s, _, _)| *s == Strategy::Baseline)
            .unwrap();
        let ci = at_128
            .iter()
            .find(|(s, _, _)| *s == Strategy::CheckIn)
            .unwrap();
        println!(
            "at 128 threads: Check-In throughput {:+.1}% vs baseline (paper +8.1%), \
             latency {:.1}% lower (paper -10.2%)",
            (ci.1 / base.1 - 1.0) * 100.0,
            reduction_pct(base.2, ci.2),
        );
    }
}
