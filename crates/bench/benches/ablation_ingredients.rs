//! Ablation study: isolate the contribution of Check-In's two ingredients
//! (Algorithm 2's compression and partial-log merging) plus the remapping
//! substrate itself. Not a paper figure — it backs the design-choice
//! discussion in DESIGN.md §6.

use checkin_bench::{banner, gc_pressured_config, run};
use checkin_core::Strategy;

fn main() {
    banner(
        "Ablation: Check-In ingredients under GC pressure",
        "derived from the paper's design discussion (§III-D..F): remapping \
         removes copies, alignment makes remapping applicable, merging and \
         compression cut journal volume (and with it invalid pages and GC)",
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "variant", "thr (q/s)", "p99.9", "cp redund", "gc", "erases", "space"
    );
    let variants: Vec<(&str, Strategy, bool, bool)> = vec![
        ("Baseline (host copy)", Strategy::Baseline, false, false),
        ("ISC-C (remap only)", Strategy::IscC, false, false),
        ("Check-In -merge -compress", Strategy::CheckIn, true, true),
        ("Check-In -merge", Strategy::CheckIn, true, false),
        ("Check-In -compress", Strategy::CheckIn, false, true),
        ("Check-In (full)", Strategy::CheckIn, false, false),
    ];
    for (name, strategy, no_merge, no_compress) in variants {
        let mut c = gc_pressured_config(strategy);
        c.ablate_partial_merging = no_merge;
        c.ablate_compression = no_compress;
        let r = run(c);
        println!(
            "{:<26} {:>10.0} {:>10} {:>10} {:>8} {:>10} {:>9.2}x",
            name,
            r.throughput,
            format!("{}", r.latency.p999),
            r.redundant_write_bytes / 512,
            r.flash.gc_invocations,
            r.flash.erases,
            r.journal_space_overhead,
        );
    }
    println!(
        "\nreading guide: '-merge' pads small logs to full units (remappable, \
         more space);\n'-compress' stores large logs raw. The full scheme \
         minimises journal volume,\ninvalid pages and erases."
    );
}
