//! Property tests pinning the dense Vec-backed `MappingTable` to a
//! map-based shadow model (the pre-refactor representation): random
//! soups of map/unmap/alias/relocate must produce identical forward
//! mappings, identical `Unlink` outcomes, consistent reverse referrer
//! sets, and the same ascending-LPN iteration order.

use std::collections::BTreeMap;

use checkin_ftl::{BufSlot, Location, Lpn, MappingTable, Pun, Unlink};
use checkin_testkit::{check, soup, TestRng};

/// Dense logical units (the hot region).
const DENSE_LPNS: u64 = 200;
/// Sparse LPNs per high region, exercising the sorted overflow path. The
/// regions sit above the table's dense limit (`1 << 26`) and around the
/// device-metadata band near `u64::MAX / 2`.
const SPARSE_LPNS: u64 = 6;
/// Physical units — deliberately small so aliases pile up.
const PUNS: u64 = 48;
/// Buffer slots.
const SLOTS: u64 = 12;

#[derive(Debug, Clone, Copy)]
enum Op {
    Map { lpn: Lpn, loc: Location },
    Unmap { lpn: Lpn },
    Alias { dst: Lpn, src: Lpn },
    Relocate { from: Location, to: Location },
}

fn any_lpn(rng: &mut TestRng) -> Lpn {
    match rng.weighted(&[12, 1, 1]) {
        0 => Lpn(rng.below(DENSE_LPNS)),
        1 => Lpn((1 << 26) + rng.below(SPARSE_LPNS)),
        _ => Lpn(u64::MAX / 2 + rng.below(SPARSE_LPNS)),
    }
}

fn any_loc(rng: &mut TestRng) -> Location {
    if rng.chance(0.75) {
        Location::Flash(Pun(rng.below(PUNS)))
    } else {
        Location::Buffer(BufSlot(rng.below(SLOTS)))
    }
}

fn any_op(rng: &mut TestRng) -> Op {
    match rng.weighted(&[6, 3, 3, 1]) {
        0 => Op::Map {
            lpn: any_lpn(rng),
            loc: any_loc(rng),
        },
        1 => Op::Unmap { lpn: any_lpn(rng) },
        2 => Op::Alias {
            dst: any_lpn(rng),
            src: any_lpn(rng),
        },
        _ => Op::Relocate {
            from: any_loc(rng),
            to: any_loc(rng),
        },
    }
}

/// The shadow: a plain ordered map LPN -> location, with the reverse
/// direction and all counters derived from it on demand. Everything the
/// dense table tracks incrementally must agree with this ground truth.
#[derive(Default)]
struct Shadow {
    forward: BTreeMap<u64, Location>,
}

impl Shadow {
    fn referrers(&self, loc: Location) -> Vec<Lpn> {
        self.forward
            .iter()
            .filter(|&(_, &l)| l == loc)
            .map(|(&lpn, _)| Lpn(lpn))
            .collect()
    }

    fn unmap(&mut self, lpn: Lpn) -> Unlink {
        match self.forward.remove(&lpn.0) {
            None => Unlink::NotMapped,
            Some(loc) => {
                if self.referrers(loc).is_empty() {
                    Unlink::Orphaned(loc)
                } else {
                    Unlink::StillReferenced(loc)
                }
            }
        }
    }

    fn map(&mut self, lpn: Lpn, loc: Location) -> Unlink {
        let prev = self.unmap(lpn);
        self.forward.insert(lpn.0, loc);
        prev
    }

    fn alias(&mut self, dst: Lpn, src: Lpn) -> Result<Unlink, Lpn> {
        let loc = *self.forward.get(&src.0).ok_or(src)?;
        if self.forward.get(&dst.0) == Some(&loc) {
            return Ok(Unlink::StillReferenced(loc));
        }
        Ok(self.map(dst, loc))
    }

    fn relocate(&mut self, from: Location, to: Location) -> usize {
        let movers: Vec<u64> = self
            .forward
            .iter()
            .filter(|&(_, &l)| l == from)
            .map(|(&lpn, _)| lpn)
            .collect();
        for lpn in &movers {
            self.forward.insert(*lpn, to);
        }
        movers.len()
    }

    fn occupied(&self) -> usize {
        let mut locs: Vec<Location> = self.forward.values().copied().collect();
        locs.sort_by_key(|l| match l {
            Location::Flash(p) => (0u8, p.0),
            Location::Buffer(s) => (1u8, s.0),
        });
        locs.dedup();
        locs.len()
    }
}

fn assert_equivalent(table: &MappingTable, shadow: &Shadow) {
    // Forward direction, including iteration order: ascending LPN in both.
    let from_table: Vec<(u64, Location)> = table.iter().map(|(l, loc)| (l.0, loc)).collect();
    let from_shadow: Vec<(u64, Location)> =
        shadow.forward.iter().map(|(&l, &loc)| (l, loc)).collect();
    assert_eq!(from_table, from_shadow, "forward map / iteration order");

    assert_eq!(table.live_entries(), shadow.forward.len(), "live counter");
    assert_eq!(
        table.occupied_locations(),
        shadow.occupied(),
        "occupied counter"
    );

    // Reverse direction over the whole location universe: same referrer
    // sets (the table keeps insertion order, so compare as sorted sets).
    let locs = (0..PUNS)
        .map(|p| Location::Flash(Pun(p)))
        .chain((0..SLOTS).map(|s| Location::Buffer(BufSlot(s))));
    for loc in locs {
        let mut got: Vec<Lpn> = table.referrers(loc).to_vec();
        got.sort_by_key(|l| l.0);
        assert_eq!(got, shadow.referrers(loc), "referrers of {loc}");
    }

    table.check_consistency().unwrap();
}

fn run_ops(ops: &[Op]) {
    let mut table = MappingTable::new();
    let mut shadow = Shadow::default();
    for op in ops {
        match *op {
            Op::Map { lpn, loc } => {
                assert_eq!(table.map(lpn, loc), shadow.map(lpn, loc), "map {lpn}");
            }
            Op::Unmap { lpn } => {
                assert_eq!(table.unmap(lpn), shadow.unmap(lpn), "unmap {lpn}");
            }
            Op::Alias { dst, src } => {
                assert_eq!(
                    table.alias(dst, src),
                    shadow.alias(dst, src),
                    "alias {dst} -> {src}"
                );
            }
            Op::Relocate { from, to } => {
                let moved = table.relocate(from, to);
                assert_eq!(moved, shadow.relocate(from, to), "relocate {from}");
            }
        }
    }
    assert_equivalent(&table, &shadow);
}

#[test]
fn mapping_table_matches_map_shadow_under_random_ops() {
    check("mapping_table_matches_map_shadow", 96, |rng| {
        let len = rng.range_usize(1, 299);
        let ops = soup(rng, len, any_op);
        run_ops(&ops);
    });
}

/// Long soups: the reverse slots cycle through Empty/One/Many many times
/// and the overflow vector sees repeated insert/remove churn.
#[test]
fn mapping_table_matches_map_shadow_under_long_churn() {
    check("mapping_table_long_churn", 12, |rng| {
        let len = rng.range_usize(2_000, 2_999);
        let ops = soup(rng, len, any_op);
        run_ops(&ops);
    });
}

/// Equivalence checked after *every* op, not just at the end — catches
/// transient counter drift that later ops could mask.
#[test]
fn mapping_table_stays_equivalent_at_every_step() {
    check("mapping_table_stepwise_equivalence", 16, |rng| {
        let len = rng.range_usize(1, 79);
        let ops = soup(rng, len, any_op);
        let mut table = MappingTable::new();
        let mut shadow = Shadow::default();
        for op in &ops {
            match *op {
                Op::Map { lpn, loc } => {
                    table.map(lpn, loc);
                    shadow.map(lpn, loc);
                }
                Op::Unmap { lpn } => {
                    table.unmap(lpn);
                    shadow.unmap(lpn);
                }
                Op::Alias { dst, src } => {
                    let _ = table.alias(dst, src);
                    let _ = shadow.alias(dst, src);
                }
                Op::Relocate { from, to } => {
                    table.relocate(from, to);
                    shadow.relocate(from, to);
                }
            }
            assert_equivalent(&table, &shadow);
        }
    });
}
