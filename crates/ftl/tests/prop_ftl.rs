//! Property tests driving the FTL directly with random operation soups,
//! mirrored against a shadow model. Randomized via `checkin-testkit`
//! (deterministic seeds, offline-safe — no external crates).

use std::collections::{BTreeMap, HashMap};

use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind, UnitPayload};
use checkin_ftl::{Ftl, FtlConfig, FtlError, GcTrigger, Lpn, UnitWrite, VictimPolicy};
use checkin_sim::SimTime;
use checkin_testkit::{check, soup, TestRng};

const LPNS: u64 = 192;

#[derive(Debug, Clone)]
enum Op {
    /// Whole-unit write of a fresh version.
    Write { lpn: u8 },
    /// Remap dst to alias src's copy.
    Remap { dst: u8, src: u8 },
    /// Trim one unit.
    Deallocate { lpn: u8 },
    /// Force the buffer out to flash.
    Flush,
    /// One GC round (if a victim exists).
    Gc,
    /// One wear-leveling round.
    WearLevel,
}

fn op(rng: &mut TestRng) -> Op {
    match rng.weighted(&[6, 2, 2, 1, 1, 1]) {
        0 => Op::Write { lpn: rng.any_u8() },
        1 => Op::Remap {
            dst: rng.any_u8(),
            src: rng.any_u8(),
        },
        2 => Op::Deallocate { lpn: rng.any_u8() },
        3 => Op::Flush,
        4 => Op::Gc,
        _ => Op::WearLevel,
    }
}

fn build(victim_policy: VictimPolicy, stream_separation: bool) -> Ftl {
    let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
    Ftl::new(
        flash,
        FtlConfig {
            unit_bytes: 512,
            write_points: 2,
            gc_threshold_blocks: 4,
            gc_soft_threshold_blocks: 8,
            write_buffer_units: 16,
            wear_leveling_threshold: Some(8),
            victim_policy,
            stream_separation,
            ..FtlConfig::default()
        },
    )
    .unwrap()
}

/// Shadow: lpn -> (key, version) of the expected current copy.
fn run_ops(ops: &[Op]) {
    run_ops_with(ops, VictimPolicy::default(), false);
}

/// Runs the soup under the given victim policy and placement, verifying
/// against the shadow throughout, and returns the final logical contents
/// read back from the device.
fn run_ops_with(
    ops: &[Op],
    victim_policy: VictimPolicy,
    stream_separation: bool,
) -> BTreeMap<u64, (u64, u64)> {
    let mut ftl = build(victim_policy, stream_separation);
    let mut shadow: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut next_version = 1u64;
    let t = SimTime::ZERO;

    for op in ops {
        match op {
            Op::Write { lpn } => {
                let lpn = *lpn as u64 % LPNS;
                let version = next_version;
                next_version += 1;
                ftl.write(
                    UnitWrite {
                        lpn: Lpn(lpn),
                        payload: UnitPayload::single(lpn, version, 512),
                        whole_unit: true,
                    },
                    OobKind::Data,
                    t,
                )
                .unwrap();
                shadow.insert(lpn, (lpn, version));
            }
            Op::Remap { dst, src } => {
                let dst = *dst as u64 % LPNS;
                let src = *src as u64 % LPNS;
                match ftl.remap(Lpn(dst), Lpn(src)) {
                    Ok(()) => {
                        let copy = shadow.get(&src).copied();
                        assert!(copy.is_some(), "remap of unmapped src succeeded");
                        shadow.insert(dst, copy.unwrap());
                    }
                    Err(FtlError::Unmapped(_)) => {
                        assert!(!shadow.contains_key(&src));
                    }
                    Err(e) => panic!("{e}"),
                }
            }
            Op::Deallocate { lpn } => {
                let lpn = *lpn as u64 % LPNS;
                let existed = ftl.deallocate(Lpn(lpn));
                assert_eq!(existed, shadow.remove(&lpn).is_some());
            }
            Op::Flush => {
                ftl.flush(t).unwrap();
            }
            Op::Gc => {
                ftl.run_gc_round(t, GcTrigger::Background).unwrap();
            }
            Op::WearLevel => {
                ftl.run_wear_leveling_round(t).unwrap();
            }
        }
    }

    // Final sweep: every shadow entry readable with the right content.
    // The read-back map (not the shadow) is returned, so cross-policy
    // comparisons check what the device actually serves.
    let mut contents = BTreeMap::new();
    for (&lpn, &(key, version)) in &shadow {
        let (payload, _) = ftl.read(Lpn(lpn), t).unwrap();
        let f = payload
            .fragments
            .iter()
            .find(|f| f.key == key)
            .unwrap_or_else(|| panic!("lpn {lpn}: key {key} missing"));
        assert_eq!(f.version, version, "lpn {lpn}");
        contents.insert(lpn, (f.key, f.version));
    }
    // And nothing else is mapped.
    for lpn in 0..LPNS {
        assert_eq!(
            ftl.is_mapped(Lpn(lpn)),
            shadow.contains_key(&lpn),
            "mapping presence mismatch at {lpn}"
        );
    }
    assert!(ftl.check_invariants().is_ok());

    contents
}

#[test]
fn ftl_matches_shadow_under_random_ops() {
    check("ftl_matches_shadow_under_random_ops", 64, |rng| {
        let len = rng.range_usize(1, 399);
        let ops = soup(rng, len, op);
        run_ops(&ops);
    });
}

/// Long soups hit GC and wear leveling organically.
#[test]
fn ftl_matches_shadow_under_long_churn() {
    check("ftl_matches_shadow_under_long_churn", 8, |rng| {
        let len = rng.range_usize(2_000, 2_999);
        let ops = soup(rng, len, op);
        run_ops(&ops);
    });
}

/// Victim selection and data placement are performance knobs, never
/// semantics: the same seeded soup must leave logically identical KV
/// contents under every policy, with stream separation on or off. Each
/// run is also independently verified against the shadow model.
#[test]
fn victim_policies_are_logically_invariant() {
    const VARIANTS: [(VictimPolicy, bool); 5] = [
        (VictimPolicy::Greedy, false),
        (VictimPolicy::CostBenefit, false),
        (VictimPolicy::WindowedGreedy { window: 4 }, false),
        (VictimPolicy::Greedy, true),
        (VictimPolicy::CostBenefit, true),
    ];
    check("victim_policies_are_logically_invariant", 12, |rng| {
        let len = rng.range_usize(500, 1_499);
        let ops = soup(rng, len, op);
        let baseline = run_ops_with(&ops, VARIANTS[0].0, VARIANTS[0].1);
        for (policy, separation) in &VARIANTS[1..] {
            let contents = run_ops_with(&ops, *policy, *separation);
            assert_eq!(
                baseline, contents,
                "{policy} (separation {separation}) diverged from greedy"
            );
        }
    });
}

#[test]
fn gc_pressure_soup_deterministic_regression() {
    // A fixed soup heavy on writes: exercises GC + WL deterministically.
    let ops: Vec<Op> = (0..6_000)
        .map(|i| match i % 17 {
            0 => Op::Flush,
            1 => Op::Gc,
            2 => Op::WearLevel,
            3 => Op::Deallocate {
                lpn: (i % 251) as u8,
            },
            4 => Op::Remap {
                dst: (i % 241) as u8,
                src: (i % 239) as u8,
            },
            _ => Op::Write {
                lpn: (i % 251) as u8,
            },
        })
        .collect();
    run_ops(&ops);
}
