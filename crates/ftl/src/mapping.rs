//! The flash mapping table: forward map plus reverse referrer tracking.
//!
//! The distinctive requirement of Check-In is that **several logical units
//! may reference one physical unit** (after a checkpoint remap, the journal
//! LPN and the data LPN alias the same flash copy). The table therefore
//! keeps, for every occupied location, the list of logical units referring
//! to it; a physical unit is *valid* while at least one referrer remains.
//!
//! Both directions are stored as flat `Vec`s indexed by the dense integer
//! key (LPN on the forward side, PUN / buffer-slot id on the reverse side),
//! exactly like the page-mapped L2P array of the paper's FTL (§II): the
//! address spaces are dense and bounded, so an array lookup replaces
//! hashing on the hottest path in the simulator. Tables grow lazily as
//! high addresses are touched, so small configurations stay small.

use crate::location::{BufSlot, Location, Lpn, Pun};

/// Sentinel in the forward array for "not mapped".
const UNMAPPED: u64 = u64::MAX;

/// LPNs below this bound live in the dense forward array; anything higher
/// (the SSD's device-metadata LPN region sits near `u64::MAX / 2`) goes to
/// a small sorted overflow vector.
const DENSE_LPN_LIMIT: u64 = 1 << 26;

/// Packs a location into a forward-array word: flash PUNs get even codes,
/// buffer slots odd ones. `UNMAPPED` is never produced because address
/// spaces stay far below 2^63.
fn pack(loc: Location) -> u64 {
    match loc {
        Location::Flash(pun) => {
            debug_assert!(pun.0 < (1 << 62), "pun out of packable range");
            pun.0 << 1
        }
        Location::Buffer(slot) => {
            debug_assert!(slot.0 < (1 << 62), "buffer slot out of packable range");
            (slot.0 << 1) | 1
        }
    }
}

fn unpack(word: u64) -> Location {
    if word & 1 == 0 {
        Location::Flash(Pun(word >> 1))
    } else {
        Location::Buffer(BufSlot(word >> 1))
    }
}

/// Referrer set of one physical location. Almost every occupied location
/// has exactly one referrer (aliases only appear around checkpoints), so
/// the single-referrer case is stored inline without heap allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
enum RefSlot {
    #[default]
    Empty,
    One(Lpn),
    // Boxed so the enum stays two words: Many is rare (checkpoint
    // aliases only) and the whole reverse array is sized by it.
    #[allow(clippy::box_collection)]
    Many(Box<Vec<Lpn>>),
}

impl RefSlot {
    fn as_slice(&self) -> &[Lpn] {
        match self {
            RefSlot::Empty => &[],
            RefSlot::One(lpn) => std::slice::from_ref(lpn),
            RefSlot::Many(lpns) => lpns,
        }
    }

    fn is_empty(&self) -> bool {
        matches!(self, RefSlot::Empty)
    }

    fn push(&mut self, lpn: Lpn) {
        match self {
            RefSlot::Empty => *self = RefSlot::One(lpn),
            RefSlot::One(first) => *self = RefSlot::Many(Box::new(vec![*first, lpn])),
            RefSlot::Many(lpns) => lpns.push(lpn),
        }
    }

    /// Removes one occurrence of `lpn`; collapses back to the inline
    /// representations where possible.
    fn remove(&mut self, lpn: Lpn) {
        match self {
            RefSlot::Empty => {}
            RefSlot::One(only) => {
                if *only == lpn {
                    *self = RefSlot::Empty;
                }
            }
            RefSlot::Many(lpns) => {
                lpns.retain(|&l| l != lpn);
                match lpns.as_slice() {
                    [] => *self = RefSlot::Empty,
                    &[only] => *self = RefSlot::One(only),
                    _ => {}
                }
            }
        }
    }
}

/// Result of removing a referrer from a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unlink {
    /// The location still has other referrers (remains valid).
    StillReferenced(Location),
    /// The location lost its last referrer (became invalid).
    Orphaned(Location),
    /// The logical unit was not mapped.
    NotMapped,
}

/// Forward (LPN → location) and reverse (location → LPNs) mapping,
/// stored as dense flat arrays.
///
/// # Examples
///
/// ```
/// use checkin_ftl::{MappingTable, Location, Lpn, Pun};
///
/// let mut t = MappingTable::new();
/// t.map(Lpn(1), Location::Flash(Pun(100)));
/// t.alias(Lpn(2), Lpn(1)).unwrap(); // lpn 2 shares lpn 1's copy
/// assert_eq!(t.lookup(Lpn(2)), Some(Location::Flash(Pun(100))));
/// assert_eq!(t.referrers(Location::Flash(Pun(100))).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MappingTable {
    /// LPN-indexed packed locations for LPNs below [`DENSE_LPN_LIMIT`];
    /// `UNMAPPED` marks holes. Grows lazily to the highest LPN touched.
    forward: Vec<u64>,
    /// Sparse LPNs at or above [`DENSE_LPN_LIMIT`], sorted by LPN.
    forward_overflow: Vec<(u64, u64)>,
    /// PUN-indexed referrer sets.
    flash_refs: Vec<RefSlot>,
    /// Buffer-slot-indexed referrer sets.
    buf_refs: Vec<RefSlot>,
    /// Count of mapped LPNs.
    live: usize,
    /// Count of non-empty referrer slots across both reverse arrays.
    occupied: usize,
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with the forward array pre-reserved for
    /// `lpn_hint` logical units (avoids regrowth during load).
    pub fn with_capacity(lpn_hint: usize) -> Self {
        let mut t = Self::default();
        t.forward.reserve(lpn_hint);
        t
    }

    fn forward_word(&self, lpn: Lpn) -> u64 {
        if lpn.0 < DENSE_LPN_LIMIT {
            self.forward
                .get(lpn.0 as usize)
                .copied()
                .unwrap_or(UNMAPPED)
        } else {
            self.forward_overflow
                .binary_search_by_key(&lpn.0, |&(l, _)| l)
                .ok()
                .and_then(|pos| self.forward_overflow.get(pos))
                .map_or(UNMAPPED, |&(_, word)| word)
        }
    }

    fn forward_set(&mut self, lpn: Lpn, word: u64) {
        debug_assert_ne!(word, UNMAPPED);
        if lpn.0 < DENSE_LPN_LIMIT {
            let idx = lpn.0 as usize;
            if idx >= self.forward.len() {
                self.forward.resize(idx + 1, UNMAPPED);
            }
            if let Some(slot) = self.forward.get_mut(idx) {
                *slot = word;
            }
        } else {
            match self
                .forward_overflow
                .binary_search_by_key(&lpn.0, |&(l, _)| l)
            {
                Ok(pos) => {
                    if let Some(entry) = self.forward_overflow.get_mut(pos) {
                        entry.1 = word;
                    }
                }
                Err(pos) => self.forward_overflow.insert(pos, (lpn.0, word)),
            }
        }
    }

    fn forward_clear(&mut self, lpn: Lpn) {
        if lpn.0 < DENSE_LPN_LIMIT {
            if let Some(word) = self.forward.get_mut(lpn.0 as usize) {
                *word = UNMAPPED;
            }
        } else if let Ok(pos) = self
            .forward_overflow
            .binary_search_by_key(&lpn.0, |&(l, _)| l)
        {
            self.forward_overflow.remove(pos);
        }
    }

    fn ref_slot(&self, loc: Location) -> Option<&RefSlot> {
        match loc {
            Location::Flash(pun) => self.flash_refs.get(pun.0 as usize),
            Location::Buffer(slot) => self.buf_refs.get(slot.0 as usize),
        }
    }

    fn ref_slot_mut(&mut self, loc: Location) -> &mut RefSlot {
        let (vec, idx) = match loc {
            Location::Flash(pun) => (&mut self.flash_refs, pun.0 as usize),
            Location::Buffer(slot) => (&mut self.buf_refs, slot.0 as usize),
        };
        if idx >= vec.len() {
            vec.resize(idx + 1, RefSlot::Empty);
        }
        &mut vec[idx]
    }

    /// Current location of a logical unit.
    pub fn lookup(&self, lpn: Lpn) -> Option<Location> {
        let word = self.forward_word(lpn);
        if word == UNMAPPED {
            None
        } else {
            Some(unpack(word))
        }
    }

    /// Logical units referencing `loc` (empty slice when unoccupied).
    pub fn referrers(&self, loc: Location) -> &[Lpn] {
        self.ref_slot(loc).map(RefSlot::as_slice).unwrap_or(&[])
    }

    /// Number of live forward entries (drives the map-cache model).
    pub fn live_entries(&self) -> usize {
        self.live
    }

    /// Number of occupied physical/buffer locations.
    pub fn occupied_locations(&self) -> usize {
        self.occupied
    }

    /// Points `lpn` at `loc`, unlinking any previous mapping. Returns the
    /// outcome for the *previous* location so the caller can update block
    /// validity counters.
    pub fn map(&mut self, lpn: Lpn, loc: Location) -> Unlink {
        let prev = self.unmap(lpn);
        self.forward_set(lpn, pack(loc));
        self.live += 1;
        let slot = self.ref_slot_mut(loc);
        let was_empty = slot.is_empty();
        slot.push(lpn);
        if was_empty {
            self.occupied += 1;
        }
        prev
    }

    /// Removes `lpn`'s mapping entirely (trim). Returns what happened to
    /// the location it referenced.
    pub fn unmap(&mut self, lpn: Lpn) -> Unlink {
        let word = self.forward_word(lpn);
        if word == UNMAPPED {
            return Unlink::NotMapped;
        }
        self.forward_clear(lpn);
        self.live -= 1;
        let loc = unpack(word);
        let slot = self.ref_slot_mut(loc);
        slot.remove(lpn);
        if slot.is_empty() {
            self.occupied -= 1;
            Unlink::Orphaned(loc)
        } else {
            Unlink::StillReferenced(loc)
        }
    }

    /// Makes `dst` reference the same location as `src` (the remap /
    /// copy-on-write primitive). Returns the outcome for `dst`'s previous
    /// location.
    ///
    /// # Errors
    ///
    /// Returns `Err(src)` when `src` is unmapped.
    pub fn alias(&mut self, dst: Lpn, src: Lpn) -> Result<Unlink, Lpn> {
        let loc = self.lookup(src).ok_or(src)?;
        if self.lookup(dst) == Some(loc) {
            // dst already aliases src: nothing changes.
            return Ok(Unlink::StillReferenced(loc));
        }
        Ok(self.map(dst, loc))
    }

    /// Re-homes every referrer of `from` onto `to` (used when the write
    /// buffer drains to flash, and when GC migrates a unit). Returns how
    /// many referrers moved.
    pub fn relocate(&mut self, from: Location, to: Location) -> usize {
        let from_slot = self.ref_slot_mut(from);
        if from_slot.is_empty() {
            return 0;
        }
        let moved = std::mem::take(from_slot);
        self.occupied -= 1;
        let packed_to = pack(to);
        for &lpn in moved.as_slice() {
            self.forward_set(lpn, packed_to);
        }
        let n = moved.as_slice().len();
        let to_slot = self.ref_slot_mut(to);
        let was_empty = to_slot.is_empty();
        match (to_slot, moved) {
            (slot @ RefSlot::Empty, moved) => *slot = moved,
            (slot, moved) => {
                for &lpn in moved.as_slice() {
                    slot.push(lpn);
                }
            }
        }
        if was_empty {
            self.occupied += 1;
        }
        n
    }

    /// Iterates all forward entries in ascending LPN order (diagnostics /
    /// recovery; the deterministic order keeps checkpoint processing and
    /// report output reproducible).
    pub fn iter(&self) -> impl Iterator<Item = (Lpn, Location)> + '_ {
        self.forward
            .iter()
            .enumerate()
            .filter_map(|(idx, &word)| {
                if word == UNMAPPED {
                    None
                } else {
                    Some((Lpn(idx as u64), unpack(word)))
                }
            })
            .chain(
                self.forward_overflow
                    .iter()
                    .map(|&(lpn, word)| (Lpn(lpn), unpack(word))),
            )
    }

    /// Verifies forward/reverse symmetry and counter accounting; returns a
    /// description of the first inconsistency found. Used by tests and
    /// debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut live = 0usize;
        for (lpn, loc) in self.iter() {
            live += 1;
            if !self.referrers(loc).contains(&lpn) {
                return Err(format!("{lpn} maps to {loc} but is not a referrer"));
            }
        }
        if live != self.live {
            return Err(format!(
                "live counter {} but {live} forward entries",
                self.live
            ));
        }
        let mut occupied = 0usize;
        let sides = [(&self.flash_refs, true), (&self.buf_refs, false)];
        for (vec, is_flash) in sides {
            for (idx, slot) in vec.iter().enumerate() {
                if slot.is_empty() {
                    continue;
                }
                occupied += 1;
                let loc = if is_flash {
                    Location::Flash(Pun(idx as u64))
                } else {
                    Location::Buffer(BufSlot(idx as u64))
                };
                for &lpn in slot.as_slice() {
                    if self.lookup(lpn) != Some(loc) {
                        return Err(format!("{loc} lists {lpn} but forward disagrees"));
                    }
                }
            }
        }
        if occupied != self.occupied {
            return Err(format!(
                "occupied counter {} but {occupied} non-empty slots",
                self.occupied
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::{BufSlot, Pun};

    #[test]
    fn map_and_lookup() {
        let mut t = MappingTable::new();
        assert_eq!(t.map(Lpn(1), Location::Flash(Pun(5))), Unlink::NotMapped);
        assert_eq!(t.lookup(Lpn(1)), Some(Location::Flash(Pun(5))));
        assert_eq!(t.live_entries(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn remap_orphans_old_location() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        let prev = t.map(Lpn(1), Location::Flash(Pun(9)));
        assert_eq!(prev, Unlink::Orphaned(Location::Flash(Pun(5))));
        assert!(t.referrers(Location::Flash(Pun(5))).is_empty());
        t.check_consistency().unwrap();
    }

    #[test]
    fn alias_shares_location() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        assert_eq!(t.referrers(Location::Flash(Pun(5))).len(), 2);
        // Unmapping one leaves the location referenced.
        assert_eq!(
            t.unmap(Lpn(1)),
            Unlink::StillReferenced(Location::Flash(Pun(5)))
        );
        assert_eq!(t.unmap(Lpn(2)), Unlink::Orphaned(Location::Flash(Pun(5))));
        t.check_consistency().unwrap();
    }

    #[test]
    fn alias_unmapped_source_fails() {
        let mut t = MappingTable::new();
        assert_eq!(t.alias(Lpn(2), Lpn(1)), Err(Lpn(1)));
    }

    #[test]
    fn alias_is_idempotent() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        t.alias(Lpn(2), Lpn(1)).unwrap();
        assert_eq!(t.referrers(Location::Flash(Pun(5))).len(), 2);
        t.check_consistency().unwrap();
    }

    #[test]
    fn relocate_moves_all_referrers() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Buffer(BufSlot(0)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        let moved = t.relocate(Location::Buffer(BufSlot(0)), Location::Flash(Pun(7)));
        assert_eq!(moved, 2);
        assert_eq!(t.lookup(Lpn(1)), Some(Location::Flash(Pun(7))));
        assert_eq!(t.lookup(Lpn(2)), Some(Location::Flash(Pun(7))));
        t.check_consistency().unwrap();
    }

    #[test]
    fn relocate_unoccupied_is_noop() {
        let mut t = MappingTable::new();
        assert_eq!(
            t.relocate(Location::Flash(Pun(1)), Location::Flash(Pun(2))),
            0
        );
    }

    #[test]
    fn relocate_merges_into_occupied_target() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(3)));
        t.map(Lpn(2), Location::Flash(Pun(4)));
        let moved = t.relocate(Location::Flash(Pun(3)), Location::Flash(Pun(4)));
        assert_eq!(moved, 1);
        assert_eq!(t.referrers(Location::Flash(Pun(4))).len(), 2);
        assert_eq!(t.occupied_locations(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn unmap_missing_is_not_mapped() {
        let mut t = MappingTable::new();
        assert_eq!(t.unmap(Lpn(42)), Unlink::NotMapped);
    }

    #[test]
    fn occupied_locations_counts_distinct() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        t.map(Lpn(3), Location::Flash(Pun(6)));
        assert_eq!(t.occupied_locations(), 2);
        assert_eq!(t.live_entries(), 3);
    }

    #[test]
    fn iter_is_ascending_by_lpn() {
        let mut t = MappingTable::new();
        t.map(Lpn(9), Location::Flash(Pun(1)));
        t.map(Lpn(2), Location::Flash(Pun(2)));
        t.map(Lpn(5), Location::Buffer(BufSlot(0)));
        let lpns: Vec<u64> = t.iter().map(|(l, _)| l.0).collect();
        assert_eq!(lpns, vec![2, 5, 9]);
    }

    #[test]
    fn sparse_meta_lpns_use_overflow() {
        // The SSD maps device-metadata units near u64::MAX / 2; those LPNs
        // must not blow up the dense array.
        let mut t = MappingTable::new();
        let meta = Lpn(u64::MAX / 2 + 3);
        t.map(Lpn(1), Location::Flash(Pun(5)));
        t.map(meta, Location::Flash(Pun(6)));
        assert_eq!(t.lookup(meta), Some(Location::Flash(Pun(6))));
        assert_eq!(t.live_entries(), 2);
        let lpns: Vec<u64> = t.iter().map(|(l, _)| l.0).collect();
        assert_eq!(lpns, vec![1, meta.0]);
        assert_eq!(t.unmap(meta), Unlink::Orphaned(Location::Flash(Pun(6))));
        t.check_consistency().unwrap();
    }

    #[test]
    fn flash_and_buffer_addresses_do_not_collide() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(7)));
        t.map(Lpn(2), Location::Buffer(BufSlot(7)));
        assert_eq!(t.lookup(Lpn(1)), Some(Location::Flash(Pun(7))));
        assert_eq!(t.lookup(Lpn(2)), Some(Location::Buffer(BufSlot(7))));
        assert_eq!(t.referrers(Location::Flash(Pun(7))), &[Lpn(1)]);
        assert_eq!(t.referrers(Location::Buffer(BufSlot(7))), &[Lpn(2)]);
        t.check_consistency().unwrap();
    }
}
