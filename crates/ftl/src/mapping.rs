//! The flash mapping table: forward map plus reverse referrer tracking.
//!
//! The distinctive requirement of Check-In is that **several logical units
//! may reference one physical unit** (after a checkpoint remap, the journal
//! LPN and the data LPN alias the same flash copy). The table therefore
//! keeps, for every occupied location, the list of logical units referring
//! to it; a physical unit is *valid* while at least one referrer remains.

use std::collections::HashMap;

use crate::location::{Location, Lpn};

/// Result of removing a referrer from a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unlink {
    /// The location still has other referrers (remains valid).
    StillReferenced(Location),
    /// The location lost its last referrer (became invalid).
    Orphaned(Location),
    /// The logical unit was not mapped.
    NotMapped,
}

/// Forward (LPN → location) and reverse (location → LPNs) mapping.
///
/// # Examples
///
/// ```
/// use checkin_ftl::{MappingTable, Location, Lpn, Pun};
///
/// let mut t = MappingTable::new();
/// t.map(Lpn(1), Location::Flash(Pun(100)));
/// t.alias(Lpn(2), Lpn(1)).unwrap(); // lpn 2 shares lpn 1's copy
/// assert_eq!(t.lookup(Lpn(2)), Some(Location::Flash(Pun(100))));
/// assert_eq!(t.referrers(Location::Flash(Pun(100))).len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MappingTable {
    forward: HashMap<Lpn, Location>,
    reverse: HashMap<Location, Vec<Lpn>>,
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current location of a logical unit.
    pub fn lookup(&self, lpn: Lpn) -> Option<Location> {
        self.forward.get(&lpn).copied()
    }

    /// Logical units referencing `loc` (empty slice when unoccupied).
    pub fn referrers(&self, loc: Location) -> &[Lpn] {
        self.reverse.get(&loc).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of live forward entries (drives the map-cache model).
    pub fn live_entries(&self) -> usize {
        self.forward.len()
    }

    /// Number of occupied physical/buffer locations.
    pub fn occupied_locations(&self) -> usize {
        self.reverse.len()
    }

    /// Points `lpn` at `loc`, unlinking any previous mapping. Returns the
    /// outcome for the *previous* location so the caller can update block
    /// validity counters.
    pub fn map(&mut self, lpn: Lpn, loc: Location) -> Unlink {
        let prev = self.unmap(lpn);
        self.forward.insert(lpn, loc);
        self.reverse.entry(loc).or_default().push(lpn);
        prev
    }

    /// Removes `lpn`'s mapping entirely (trim). Returns what happened to
    /// the location it referenced.
    pub fn unmap(&mut self, lpn: Lpn) -> Unlink {
        let Some(loc) = self.forward.remove(&lpn) else {
            return Unlink::NotMapped;
        };
        let list = self
            .reverse
            .get_mut(&loc)
            .expect("reverse entry exists for mapped location");
        list.retain(|&l| l != lpn);
        if list.is_empty() {
            self.reverse.remove(&loc);
            Unlink::Orphaned(loc)
        } else {
            Unlink::StillReferenced(loc)
        }
    }

    /// Makes `dst` reference the same location as `src` (the remap /
    /// copy-on-write primitive). Returns the outcome for `dst`'s previous
    /// location.
    ///
    /// # Errors
    ///
    /// Returns `Err(src)` when `src` is unmapped.
    pub fn alias(&mut self, dst: Lpn, src: Lpn) -> Result<Unlink, Lpn> {
        let loc = self.lookup(src).ok_or(src)?;
        if self.lookup(dst) == Some(loc) {
            // dst already aliases src: nothing changes.
            return Ok(Unlink::StillReferenced(loc));
        }
        Ok(self.map(dst, loc))
    }

    /// Re-homes every referrer of `from` onto `to` (used when the write
    /// buffer drains to flash, and when GC migrates a unit). Returns how
    /// many referrers moved.
    pub fn relocate(&mut self, from: Location, to: Location) -> usize {
        let Some(lpns) = self.reverse.remove(&from) else {
            return 0;
        };
        let n = lpns.len();
        for &lpn in &lpns {
            self.forward.insert(lpn, to);
        }
        self.reverse.entry(to).or_default().extend(lpns);
        n
    }

    /// Iterates all forward entries (diagnostics / recovery).
    pub fn iter(&self) -> impl Iterator<Item = (Lpn, Location)> + '_ {
        self.forward.iter().map(|(&l, &loc)| (l, loc))
    }

    /// Verifies forward/reverse symmetry; returns a description of the
    /// first inconsistency found. Used by tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (&lpn, &loc) in &self.forward {
            let refs = self.referrers(loc);
            if !refs.contains(&lpn) {
                return Err(format!("{lpn} maps to {loc} but is not a referrer"));
            }
        }
        for (&loc, lpns) in &self.reverse {
            if lpns.is_empty() {
                return Err(format!("{loc} has an empty referrer list"));
            }
            for &lpn in lpns {
                if self.forward.get(&lpn) != Some(&loc) {
                    return Err(format!("{loc} lists {lpn} but forward disagrees"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::{BufSlot, Pun};

    #[test]
    fn map_and_lookup() {
        let mut t = MappingTable::new();
        assert_eq!(t.map(Lpn(1), Location::Flash(Pun(5))), Unlink::NotMapped);
        assert_eq!(t.lookup(Lpn(1)), Some(Location::Flash(Pun(5))));
        assert_eq!(t.live_entries(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn remap_orphans_old_location() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        let prev = t.map(Lpn(1), Location::Flash(Pun(9)));
        assert_eq!(prev, Unlink::Orphaned(Location::Flash(Pun(5))));
        assert!(t.referrers(Location::Flash(Pun(5))).is_empty());
        t.check_consistency().unwrap();
    }

    #[test]
    fn alias_shares_location() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        assert_eq!(t.referrers(Location::Flash(Pun(5))).len(), 2);
        // Unmapping one leaves the location referenced.
        assert_eq!(
            t.unmap(Lpn(1)),
            Unlink::StillReferenced(Location::Flash(Pun(5)))
        );
        assert_eq!(t.unmap(Lpn(2)), Unlink::Orphaned(Location::Flash(Pun(5))));
        t.check_consistency().unwrap();
    }

    #[test]
    fn alias_unmapped_source_fails() {
        let mut t = MappingTable::new();
        assert_eq!(t.alias(Lpn(2), Lpn(1)), Err(Lpn(1)));
    }

    #[test]
    fn alias_is_idempotent() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        t.alias(Lpn(2), Lpn(1)).unwrap();
        assert_eq!(t.referrers(Location::Flash(Pun(5))).len(), 2);
        t.check_consistency().unwrap();
    }

    #[test]
    fn relocate_moves_all_referrers() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Buffer(BufSlot(0)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        let moved = t.relocate(Location::Buffer(BufSlot(0)), Location::Flash(Pun(7)));
        assert_eq!(moved, 2);
        assert_eq!(t.lookup(Lpn(1)), Some(Location::Flash(Pun(7))));
        assert_eq!(t.lookup(Lpn(2)), Some(Location::Flash(Pun(7))));
        t.check_consistency().unwrap();
    }

    #[test]
    fn relocate_unoccupied_is_noop() {
        let mut t = MappingTable::new();
        assert_eq!(t.relocate(Location::Flash(Pun(1)), Location::Flash(Pun(2))), 0);
    }

    #[test]
    fn unmap_missing_is_not_mapped() {
        let mut t = MappingTable::new();
        assert_eq!(t.unmap(Lpn(42)), Unlink::NotMapped);
    }

    #[test]
    fn occupied_locations_counts_distinct() {
        let mut t = MappingTable::new();
        t.map(Lpn(1), Location::Flash(Pun(5)));
        t.alias(Lpn(2), Lpn(1)).unwrap();
        t.map(Lpn(3), Location::Flash(Pun(6)));
        assert_eq!(t.occupied_locations(), 2);
        assert_eq!(t.live_entries(), 3);
    }
}
