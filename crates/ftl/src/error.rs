//! FTL error type.
//!
//! # How the FTL applies the flash retry policy
//!
//! The flash layer classifies its failures via
//! [`checkin_flash::FlashError::classification`]; the FTL is the firmware
//! that acts on that classification, so *transient* media failures are
//! normally invisible above this crate:
//!
//! * **Transient read/program/erase** — retried internally with
//!   exponential backoff, up to the per-class attempt budget in
//!   [`crate::FtlConfig::retry_read`] / `retry_program` / `retry_erase`
//!   (counted in `ftl.media_retries`). Only when the budget is exhausted
//!   does the error escape as [`FtlError::Flash`] (counted per class in
//!   `ftl.retry_exhausted_read` / `_program` / `_erase`).
//! * **Grown bad block on program** — the block is retired: still-valid
//!   units are salvaged into the capacitor-backed write buffer and the
//!   page-out simply moves to a healthy block (`ftl.blocks_retired`).
//! * **Grown bad block / worn-out / exhausted retries on erase** — the
//!   fully migrated victim is retired instead of recycled; capacity
//!   shrinks but no data is affected.
//! * **Power loss** — escapes as [`FtlError::Flash`] with
//!   [`checkin_flash::FlashError::PowerLoss`]; the caller answers with
//!   `Ftl::rebuild_after_power_loss`, not with a retry.
//! * **Rule violations** — always escape; they indicate FTL bugs.
//! * **Failed checksum verification** — never retried (re-reading the
//!   same rotten cells cannot help): the unit is quarantined and the
//!   read fails with [`FtlError::Integrity`], so corruption is always
//!   *detected*, never silently served.

use std::error::Error;
use std::fmt;

use crate::location::Lpn;

/// A failed end-to-end integrity verification: the device detected
/// corruption and reports it instead of serving wrong data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The stored checksum of the unit backing this logical unit no
    /// longer matches its content. The unit is quarantined: the mapping
    /// is kept (so reads keep failing loudly instead of silently
    /// zero-filling) until the block is erased or retired.
    CorruptUnit(Lpn),
    /// The only physical copy of this logical unit was corrupt when its
    /// block was reclaimed (GC or retirement); the data is lost, and the
    /// loss is permanent but *detected*. Cleared by a fresh write, remap,
    /// or deallocate of the logical unit.
    Poisoned(Lpn),
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::CorruptUnit(lpn) => {
                write!(f, "checksum mismatch reading {lpn} (unit quarantined)")
            }
            IntegrityError::Poisoned(lpn) => {
                write!(f, "{lpn} lost: its only copy was corrupt when reclaimed")
            }
        }
    }
}

impl Error for IntegrityError {}

/// Failures surfaced by the flash translation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// No free blocks remain and no block has reclaimable space.
    OutOfSpace,
    /// Read of a logical unit that has never been written (or was trimmed).
    Unmapped(Lpn),
    /// A flash-level failure that the FTL could not absorb: a rule
    /// violation (FTL bug), a power loss, or a media failure that survived
    /// retry and retirement (see the module docs).
    Flash(checkin_flash::FlashError),
    /// Internal state contradicted itself (e.g. a mapping pointing at an
    /// empty buffer slot). Always indicates an FTL bug; surfaced as an
    /// error instead of a panic so callers — recovery above all — can
    /// fail the one operation rather than the whole process.
    Inconsistent(&'static str),
    /// End-to-end verification failed: corruption detected and withheld.
    Integrity(IntegrityError),
}

impl FtlError {
    /// True when this error is a device power loss — the one failure a
    /// fault-injection harness treats as expected (answered by recovery).
    pub fn is_power_loss(&self) -> bool {
        matches!(self, FtlError::Flash(e) if e.is_power_loss())
    }

    /// True when this error is a detected integrity failure — the typed
    /// outcome the corruption harness accepts in place of data (silent
    /// wrong data is never acceptable).
    pub fn is_integrity(&self) -> bool {
        matches!(self, FtlError::Integrity(_))
    }
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::OutOfSpace => write!(f, "device out of space: no reclaimable blocks"),
            FtlError::Unmapped(lpn) => write!(f, "read of unmapped logical unit {lpn}"),
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
            FtlError::Inconsistent(what) => write!(f, "inconsistent FTL state: {what}"),
            FtlError::Integrity(e) => write!(f, "integrity failure: {e}"),
        }
    }
}

/// Failures during sudden-power-off recovery
/// ([`crate::Ftl::rebuild_after_power_loss`]).
///
/// Recovery runs when the system is least able to tolerate a panic, so
/// every impossible-state branch on that path reports through this type
/// instead of `unwrap`/`assert` (checked by `checkin-analyze` rule A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryError {
    /// Rebuild was requested while the flash array is still powered off;
    /// call `FlashArray::power_on` first.
    PoweredOff,
    /// The surviving state contradicts itself (named invariant violated).
    Inconsistent(&'static str),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::PoweredOff => {
                write!(f, "recovery requested while the array is powered off")
            }
            RecoveryError::Inconsistent(what) => {
                write!(f, "inconsistent recovered state: {what}")
            }
        }
    }
}

impl Error for RecoveryError {}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Flash(e) => Some(e),
            FtlError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<checkin_flash::FlashError> for FtlError {
    fn from(e: checkin_flash::FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_flash::{FlashError, Ppn};

    #[test]
    fn display_and_source() {
        let e = FtlError::Flash(FlashError::ProgramDirtyPage(Ppn(1)));
        assert!(e.to_string().contains("flash error"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&FtlError::OutOfSpace).is_none());
    }

    #[test]
    fn from_flash_error() {
        let e: FtlError = FlashError::OutOfRange(Ppn(9)).into();
        assert!(matches!(e, FtlError::Flash(_)));
    }

    #[test]
    fn unmapped_names_lpn() {
        assert!(FtlError::Unmapped(Lpn(77)).to_string().contains("lpn:77"));
    }

    #[test]
    fn inconsistent_and_recovery_display() {
        assert!(FtlError::Inconsistent("slot empty")
            .to_string()
            .contains("slot empty"));
        assert!(RecoveryError::PoweredOff
            .to_string()
            .contains("powered off"));
        assert!(RecoveryError::Inconsistent("bad block ref")
            .to_string()
            .contains("bad block ref"));
    }

    #[test]
    fn integrity_errors_are_typed_and_displayed() {
        let e = FtlError::Integrity(IntegrityError::CorruptUnit(Lpn(4)));
        assert!(e.is_integrity());
        assert!(!e.is_power_loss());
        assert!(e.to_string().contains("quarantined"));
        assert!(Error::source(&e).is_some());
        let p = FtlError::Integrity(IntegrityError::Poisoned(Lpn(9)));
        assert!(p.is_integrity());
        assert!(p.to_string().contains("lost"));
        assert!(!FtlError::OutOfSpace.is_integrity());
    }

    #[test]
    fn power_loss_is_recognized() {
        assert!(FtlError::Flash(FlashError::PowerLoss).is_power_loss());
        assert!(!FtlError::OutOfSpace.is_power_loss());
        assert!(!FtlError::Flash(FlashError::OutOfRange(Ppn(0))).is_power_loss());
    }
}
