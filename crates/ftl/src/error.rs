//! FTL error type.

use std::error::Error;
use std::fmt;

use crate::location::Lpn;

/// Failures surfaced by the flash translation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtlError {
    /// No free blocks remain and no block has reclaimable space.
    OutOfSpace,
    /// Read of a logical unit that has never been written (or was trimmed).
    Unmapped(Lpn),
    /// A flash-level rule was violated (indicates an FTL bug).
    Flash(checkin_flash::FlashError),
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::OutOfSpace => write!(f, "device out of space: no reclaimable blocks"),
            FtlError::Unmapped(lpn) => write!(f, "read of unmapped logical unit {lpn}"),
            FtlError::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl Error for FtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FtlError::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<checkin_flash::FlashError> for FtlError {
    fn from(e: checkin_flash::FlashError) -> Self {
        FtlError::Flash(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_flash::{FlashError, Ppn};

    #[test]
    fn display_and_source() {
        let e = FtlError::Flash(FlashError::ProgramDirtyPage(Ppn(1)));
        assert!(e.to_string().contains("flash error"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&FtlError::OutOfSpace).is_none());
    }

    #[test]
    fn from_flash_error() {
        let e: FtlError = FlashError::OutOfRange(Ppn(9)).into();
        assert!(matches!(e, FtlError::Flash(_)));
    }

    #[test]
    fn unmapped_names_lpn() {
        assert!(FtlError::Unmapped(Lpn(77)).to_string().contains("lpn:77"));
    }
}
