//! Analytic model of the in-device mapping-table cache.
//!
//! Smaller mapping units mean more table entries for the same capacity, so
//! a fixed DRAM budget caches a smaller fraction of the table and mapping
//! operations slow down. This is the effect behind the paper's Figure 13(a)
//! (throughput rises with mapping-unit size). We model it analytically:
//! hit rate = min(1, capacity / live_entries), with distinct hit and miss
//! service times.

use checkin_sim::SimDuration;

/// Cost model for one mapping-table access.
///
/// # Examples
///
/// ```
/// use checkin_ftl::MapCacheModel;
///
/// let m = MapCacheModel::with_capacity(Some(1000));
/// // With 4000 live entries only a quarter of lookups hit.
/// assert!(m.access_cost(4000) > m.access_cost(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapCacheModel {
    /// Cached entries; `None` = entire table in DRAM (all hits).
    pub capacity_entries: Option<u64>,
    /// Service time on a cache hit (SRAM/DRAM lookup + firmware).
    pub hit_cost: SimDuration,
    /// Service time on a miss (fetch a mapping segment from DRAM/flash
    /// metadata region).
    pub miss_cost: SimDuration,
}

impl MapCacheModel {
    /// Default costs with the given capacity.
    pub fn with_capacity(capacity_entries: Option<u64>) -> Self {
        MapCacheModel {
            capacity_entries,
            hit_cost: SimDuration::from_nanos(200),
            miss_cost: SimDuration::from_nanos(2_500),
        }
    }

    /// Fraction of accesses served from cache given the live table size.
    pub fn hit_rate(&self, live_entries: u64) -> f64 {
        match self.capacity_entries {
            None => 1.0,
            Some(cap) => {
                if live_entries == 0 {
                    1.0
                } else {
                    (cap as f64 / live_entries as f64).min(1.0)
                }
            }
        }
    }

    /// Expected cost of one mapping access at the current table size.
    pub fn access_cost(&self, live_entries: u64) -> SimDuration {
        let h = self.hit_rate(live_entries);
        let nanos =
            h * self.hit_cost.as_nanos() as f64 + (1.0 - h) * self.miss_cost.as_nanos() as f64;
        SimDuration::from_nanos(nanos.round() as u64)
    }
}

impl Default for MapCacheModel {
    fn default() -> Self {
        MapCacheModel::with_capacity(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_cache_always_hits() {
        let m = MapCacheModel::with_capacity(None);
        assert_eq!(m.hit_rate(1_000_000), 1.0);
        assert_eq!(m.access_cost(1_000_000), m.hit_cost);
    }

    #[test]
    fn hit_rate_shrinks_with_table_growth() {
        let m = MapCacheModel::with_capacity(Some(100));
        assert_eq!(m.hit_rate(50), 1.0);
        assert_eq!(m.hit_rate(0), 1.0);
        assert!((m.hit_rate(400) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn access_cost_interpolates() {
        let m = MapCacheModel::with_capacity(Some(100));
        let all_hit = m.access_cost(100);
        let half = m.access_cost(200);
        let mostly_miss = m.access_cost(10_000);
        assert!(all_hit < half && half < mostly_miss);
        assert_eq!(all_hit, m.hit_cost);
    }
}
