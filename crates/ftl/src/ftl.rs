//! The flash translation layer.
//!
//! Responsibilities:
//!
//! * translate logical-unit writes into page programs through a
//!   power-protected write buffer that packs `units_per_page` sub-units
//!   into each NAND program (the paper's sub-page mapping, §III-D);
//! * serve the **remap** primitive that Check-In's checkpoint processor
//!   uses: make a data-area LPN alias the physical unit already written by
//!   journaling, so a checkpoint costs a mapping update instead of a copy;
//! * reclaim space with greedy garbage collection, migrating valid units
//!   and preserving sharing;
//! * account every statistic the paper's evaluation needs (host vs flash
//!   bytes, invalid-unit generation, GC invocations, RMW operations).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use checkin_flash::{
    BlockId, ErrorClass, FaultPhase, FlashArray, FlashError, Fragment, OobEntry, OobKind, OpPhase,
    PageContent, Ppn, UnitPayload,
};
use checkin_sim::{CounterSet, SimTime, TraceEvent, TraceLayer, Tracer, Window};

use crate::config::FtlConfig;
use crate::error::{FtlError, IntegrityError, RecoveryError};
use crate::location::{BufSlot, Location, Lpn, Pun};
use crate::map_cache::MapCacheModel;
use crate::mapping::{MappingTable, Unlink};
use crate::policy::VictimCandidate;

/// Number of write streams hot/cold separation distinguishes: journal
/// (hot, short-lived), data, and metadata/GC relocation (cold).
const STREAMS: usize = 3;

/// Why a garbage-collection round was started. Each invocation is
/// counted under a per-trigger key and recorded in the trace, which is
/// what makes GC cost attributable (foreground GC stalls host writes;
/// background and wear-leveling rounds run in idle windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcTrigger {
    /// Free-block headroom ran out during allocation; the host write
    /// path is stalled behind this round.
    Foreground,
    /// Idle-window collection requested by the device front end.
    Background,
    /// Static wear-leveling migration of a cold block.
    WearLevel,
}

impl GcTrigger {
    /// Stable lowercase label (trace annotation).
    pub fn label(self) -> &'static str {
        match self {
            GcTrigger::Foreground => "foreground",
            GcTrigger::Background => "background",
            GcTrigger::WearLevel => "wear_level",
        }
    }

    /// Counter key for rounds started by this trigger.
    pub fn counter_key(self) -> &'static str {
        match self {
            GcTrigger::Foreground => "ftl.gc_foreground",
            GcTrigger::Background => "ftl.gc_background",
            GcTrigger::WearLevel => "ftl.gc_wear_level",
        }
    }
}

/// One logical-unit write request.
#[derive(Debug, Clone)]
pub struct UnitWrite {
    /// Destination logical unit.
    pub lpn: Lpn,
    /// New content for (part of) the unit.
    pub payload: UnitPayload,
    /// True when the write covers the whole mapping unit. Partial writes
    /// trigger a read-modify-write merge with the unit's old content.
    pub whole_unit: bool,
}

/// Lifecycle of a physical block from the FTL's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Free,
    Active,
    Closed,
    /// Permanently out of service (grown defect or failed erase). Never
    /// selected as a GC or wear-leveling victim and never recycled into
    /// the free pool.
    Retired,
}

#[derive(Debug, Clone)]
struct SlotData {
    payload: UnitPayload,
    oob: OobEntry,
}

/// Where a mapping entry pointed when the mapping log was persisted.
#[derive(Debug, Clone, Copy)]
enum SnapLoc {
    /// Directly addressable flash copy.
    Flash(Pun),
    /// Capacitor-backed buffer copy, identified by its OOB sequence
    /// number — stable across drains and slot-id recycling, unlike the
    /// slot id itself.
    Buffered {
        /// OOB sequence the unit carried when snapshotted.
        oob_seq: u64,
    },
}

/// The persisted mapping log: the firmware state behind the periodic
/// ISCE metadata writes (§III-F) and the pre-erase flush. Recovery
/// resolves this first and replays only OOB records written after it.
#[derive(Debug, Clone)]
struct MappingSnapshot {
    /// Global write-sequence value at persist time.
    seq: u64,
    /// Mapping entries in ascending-lpn order.
    entries: Vec<(Lpn, SnapLoc)>,
}

/// Outcome counts of a post-power-loss FTL rebuild
/// ([`Ftl::rebuild_after_power_loss`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Persisted-snapshot entries resolved into the fresh mapping table.
    pub snapshot_entries_resolved: u64,
    /// Persisted-snapshot entries dropped (target no longer readable).
    pub snapshot_entries_dropped: u64,
    /// Post-snapshot OOB records replayed (newest-wins per lpn).
    pub oob_records_replayed: u64,
    /// Capacitor-backed buffer slots re-linked into the table.
    pub buffered_units_recovered: u64,
    /// OOB records rejected by checksum verification during the scan
    /// (torn tails, rotted metadata). Rejected records never replay and
    /// never advance the recovered sequence floor.
    pub oob_records_rejected: u64,
}

/// Outcome counts of one background scrub round ([`Ftl::scrub_round`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Programmed pages whose data units were verified this round.
    pub pages_scanned: u64,
    /// Units whose checksum mismatched and were newly marked corrupt.
    pub detected: u64,
    /// Detected units still referenced by the mapping table: the data is
    /// quarantined and reads of it fail with a typed error.
    pub quarantined: u64,
    /// Detected units no longer referenced (stale copies): no logical
    /// data was at risk, the mark only keeps GC from copying rot.
    pub corrected: u64,
}

/// The flash translation layer over a [`FlashArray`].
///
/// # Examples
///
/// ```
/// use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind, UnitPayload};
/// use checkin_ftl::{Ftl, FtlConfig, Lpn, UnitWrite};
/// use checkin_sim::SimTime;
///
/// let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
/// let mut ftl = Ftl::new(flash, FtlConfig { unit_bytes: 512, write_points: 2, ..FtlConfig::default() }).unwrap();
/// let w = UnitWrite { lpn: Lpn(0), payload: UnitPayload::single(9, 1, 512), whole_unit: true };
/// ftl.write(w, OobKind::Data, SimTime::ZERO)?;
/// let (payload, _done) = ftl.read(Lpn(0), SimTime::ZERO)?;
/// assert_eq!(payload.fragments[0].key, 9);
/// # Ok::<(), checkin_ftl::FtlError>(())
/// ```
#[derive(Debug)]
pub struct Ftl {
    config: FtlConfig,
    upp: u32,
    flash: FlashArray,
    table: MappingTable,
    /// Slot-id-indexed buffered units; freed ids are recycled via
    /// `free_slot_ids` so this array (and the mapping table's buffer-side
    /// reverse array) stays bounded by the write-buffer depth instead of
    /// growing with total writes.
    slots: Vec<Option<SlotData>>,
    free_slot_ids: Vec<u64>,
    next_slot: u64,
    /// Reusable buffers for the page-out and GC loops (no per-page
    /// allocation in steady state). Stacks rather than single buffers:
    /// GC triggered inside `drain_one_page` re-enters `drain_one_page`
    /// for the migrated units, so up to two invocations are live at
    /// once and each needs its own scratch vector.
    scratch_batches: Vec<Vec<BufSlot>>,
    scratch_placements: Vec<Vec<(BufSlot, u32)>>,
    scratch_valid: Vec<(u32, UnitPayload, Lpn)>,
    /// Per-write-point active block and next page cursor.
    actives: Vec<Option<(BlockId, u32)>>,
    /// Buffered units in arrival order. Updated units are re-queued at the
    /// tail, so the head naturally holds units that stopped receiving
    /// writes (complete journal units, cold data) — those page out first.
    pending: VecDeque<BufSlot>,
    next_wp: usize,
    /// Per-stream round-robin cursors over each stream's write-point
    /// lanes (only advanced when stream separation is on).
    stream_rr: [usize; STREAMS],
    /// Scratch for the same-stream batch scan (indices into `pending`).
    scratch_indices: Vec<usize>,
    free_blocks: VecDeque<BlockId>,
    block_kind: Vec<BlockKind>,
    valid_units: Vec<u32>,
    /// Write-sequence value when each block last received a unit — the
    /// deterministic age base for cost-benefit victim selection.
    block_write_seq: Vec<u64>,
    /// Monotone close rank per block (lower closed earlier); feeds
    /// windowed-greedy victim selection.
    block_close_seq: Vec<u64>,
    close_counter: u64,
    counters: CounterSet,
    map_cache: MapCacheModel,
    seq: u64,
    in_gc: bool,
    /// Last persisted mapping log (only maintained under fault injection).
    persisted: Option<MappingSnapshot>,
    /// Physical units whose checksum verification failed. The mapping is
    /// *kept* — unmapping would make reads silently zero-fill — so every
    /// read keeps failing with a typed [`IntegrityError`] until the block
    /// is erased or retired (which clears its marks). Empty in healthy
    /// runs, so the hot-path membership test is one branch.
    quarantined: BTreeSet<Pun>,
    /// Logical units whose only physical copy was corrupt when its block
    /// was reclaimed: data is gone, and reads must say so (typed error)
    /// rather than report "never written". Cleared by a fresh write,
    /// remap, or deallocate.
    poisoned: BTreeSet<Lpn>,
    /// Next page the background scrubber will visit (wraps around).
    scrub_cursor: u64,
    /// Structured trace sink (no-op unless enabled).
    tracer: Tracer,
}

impl Ftl {
    /// Wraps a flash array with translation state.
    ///
    /// # Errors
    ///
    /// Returns a description when `config` is inconsistent with the
    /// array's geometry.
    pub fn new(flash: FlashArray, config: FtlConfig) -> Result<Self, String> {
        let g = *flash.geometry();
        config.validate(g.page_bytes, g.total_blocks())?;
        let upp = config.units_per_page(g.page_bytes);
        let total_blocks = g.total_blocks();
        Ok(Ftl {
            upp,
            map_cache: MapCacheModel::with_capacity(config.map_cache_entries),
            config,
            flash,
            // Pre-reserve the forward array for the physical unit count:
            // the host LPN space in steady state tracks the device size.
            table: MappingTable::with_capacity((g.total_pages() * upp as u64) as usize),
            slots: Vec::new(),
            free_slot_ids: Vec::new(),
            next_slot: 0,
            scratch_batches: Vec::new(),
            scratch_placements: Vec::new(),
            scratch_valid: Vec::new(),
            actives: vec![None; config.write_points as usize],
            pending: VecDeque::new(),
            next_wp: 0,
            stream_rr: [0; STREAMS],
            scratch_indices: Vec::new(),
            free_blocks: (0..total_blocks).map(BlockId).collect(),
            block_kind: vec![BlockKind::Free; total_blocks as usize],
            valid_units: vec![0; total_blocks as usize],
            block_write_seq: vec![0; total_blocks as usize],
            block_close_seq: vec![0; total_blocks as usize],
            close_counter: 0,
            counters: CounterSet::new(),
            seq: 0,
            in_gc: false,
            persisted: None,
            quarantined: BTreeSet::new(),
            poisoned: BTreeSet::new(),
            scrub_cursor: 0,
            tracer: Tracer::disabled(),
        })
    }

    /// Installs a trace sink on this layer and the flash array below it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.flash.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Mapping unit size in bytes.
    pub fn unit_bytes(&self) -> u32 {
        self.config.unit_bytes
    }

    /// Units per physical page.
    pub fn units_per_page(&self) -> u32 {
        self.upp
    }

    /// The underlying flash array (stats, geometry).
    pub fn flash(&self) -> &FlashArray {
        &self.flash
    }

    /// FTL configuration in effect.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// FTL counters (`ftl.*`), separate from the flash array's.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Live mapping entries (drives the map-cache cost model).
    pub fn live_entries(&self) -> u64 {
        self.table.live_entries() as u64
    }

    /// Expected firmware cost of one mapping-table access right now.
    pub fn map_access_cost(&self) -> checkin_sim::SimDuration {
        self.map_cache.access_cost(self.live_entries())
    }

    /// Blocks currently in the free pool.
    pub fn free_block_count(&self) -> usize {
        self.free_blocks.len()
    }

    /// True if the free pool is at or below the soft (background) GC
    /// threshold (raised by any configured over-provisioning).
    pub fn wants_background_gc(&self) -> bool {
        self.free_blocks.len()
            <= (self.config.gc_soft_threshold_blocks + self.config.overprovision_blocks) as usize
    }

    /// Write-amplification factor: flash bytes programmed over host bytes
    /// written (including RMW and GC traffic). Zero before any host write.
    pub fn waf(&self) -> f64 {
        let host = self.counters.get("ftl.host_bytes");
        if host == 0 {
            return 0.0;
        }
        let programmed =
            self.flash.counters().get("flash.program") * self.flash.geometry().page_bytes as u64;
        programmed as f64 / host as f64
    }

    fn note_unlink(&mut self, u: Unlink) {
        match u {
            Unlink::Orphaned(Location::Flash(pun)) => {
                let block = self.flash.geometry().block_of(pun.page(self.upp));
                let v = &mut self.valid_units[block.0 as usize];
                debug_assert!(*v > 0, "valid count underflow on {block}");
                *v = v.saturating_sub(1);
                self.counters.incr("ftl.invalid_units");
            }
            Unlink::Orphaned(Location::Buffer(slot)) => {
                // The old copy never reached flash: discard it from DRAM so
                // it does not waste a unit of the next page program.
                let _ = self.release_slot(slot);
                self.pending.retain(|&s| s != slot);
            }
            Unlink::StillReferenced(_) | Unlink::NotMapped => {}
        }
    }

    /// Marks a physical unit as corrupt (checksum mismatch). Returns
    /// `Some(referenced)` when the mark is new — `referenced` says
    /// whether the mapping table still pointed at the unit, which is the
    /// difference between quarantined logical data and a harmlessly
    /// rotted stale copy — or `None` when the unit was already marked.
    ///
    /// Counter semantics: every new mark counts in
    /// `ftl.integrity_detected`, and exactly one of
    /// `ftl.integrity_quarantined` (referenced) or
    /// `ftl.integrity_corrected` (stale — nothing to lose, the mark just
    /// keeps GC from copying rot forward).
    fn note_corrupt(&mut self, pun: Pun) -> Option<bool> {
        if !self.quarantined.insert(pun) {
            return None;
        }
        let referenced = !self.table.referrers(Location::Flash(pun)).is_empty();
        self.counters.incr("ftl.integrity_detected");
        if referenced {
            self.counters.incr("ftl.integrity_quarantined");
        } else {
            self.counters.incr("ftl.integrity_corrected");
        }
        Some(referenced)
    }

    /// Quarantined units currently marked inside `block`.
    fn quarantined_in_block(&self, block: BlockId) -> u32 {
        let g = self.flash.geometry();
        let mut n = 0u32;
        for &pun in &self.quarantined {
            if g.block_of(pun.page(self.upp)) == block {
                n += 1;
            }
        }
        n
    }

    /// Drops every quarantine mark inside `block` — called when the block
    /// is erased or retired, after which its physical units hold no data
    /// (and any logical loss has been converted to poisoned lpns).
    fn clear_block_quarantine(&mut self, block: BlockId) {
        if self.quarantined.is_empty() {
            return;
        }
        let g = *self.flash.geometry();
        let upp = self.upp;
        self.quarantined
            .retain(|pun| g.block_of(pun.page(upp)) != block);
    }

    /// A referenced-but-corrupt unit is about to be destroyed (its block
    /// erased by GC or retired): the logical data is unrecoverable. Every
    /// referrer is unmapped and poisoned so later reads report the loss
    /// with a typed error instead of "never written", and the event is
    /// counted in `ftl.integrity_unrecoverable`.
    fn poison_destroyed_unit(&mut self, pun: Pun, at: SimTime) {
        if !self.quarantined.remove(&pun) {
            // Corruption first observed here (during the GC salvage scan
            // itself): still one detected + quarantined event, keeping
            // `detected == quarantined + corrected` as an invariant.
            self.counters.incr("ftl.integrity_detected");
            self.counters.incr("ftl.integrity_quarantined");
        }
        let referrers: Vec<Lpn> = self.table.referrers(Location::Flash(pun)).to_vec();
        for lpn in referrers {
            let u = self.table.unmap(lpn);
            self.note_unlink(u);
            self.poisoned.insert(lpn);
        }
        self.counters.incr("ftl.integrity_unrecoverable");
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Ftl, "integrity_unrecoverable")
                .with("page", pun.page(self.upp).0)
                .with("offset", u64::from(pun.offset(self.upp)))
        });
    }

    /// Foreground-read reaction to a corrupt unit: quarantine it, retire
    /// the surrounding block once enough of it has rotted (a page's worth
    /// of marks), and produce the typed error the read returns.
    fn quarantine_and_report(&mut self, lpn: Lpn, pun: Pun) -> FtlError {
        let _ = self.note_corrupt(pun);
        let block = self.flash.geometry().block_of(pun.page(self.upp));
        let kind = self
            .block_kind
            .get(block.0 as usize)
            .copied()
            .unwrap_or(BlockKind::Free);
        if kind == BlockKind::Closed && !self.in_gc && self.quarantined_in_block(block) >= self.upp
        {
            // The block is decaying wholesale: salvage what still
            // verifies and take it out of service.
            self.retire_block(block);
        }
        FtlError::Integrity(IntegrityError::CorruptUnit(lpn))
    }

    /// True when `pun`'s stored unit fails checksum verification (only
    /// ever called with verification enabled and the page readable).
    /// Used on the background salvage paths; the foreground read/write
    /// paths fold this check into their single page borrow instead.
    fn unit_is_corrupt(&self, pun: Pun) -> bool {
        self.flash
            .read(pun.page(self.upp))
            .map(|pc| !pc.unit_intact(pun.offset(self.upp) as usize))
            .unwrap_or(false)
    }

    /// Clears the poisoned mark of `lpn` — its loss record — once a fresh
    /// write, remap, or deallocate supersedes the lost data.
    fn clear_poison(&mut self, lpn: Lpn) {
        if !self.poisoned.is_empty() {
            self.poisoned.remove(&lpn);
        }
    }

    /// Data held by a referenced buffer slot, or `None` when the mapping
    /// points at an empty slot (an internal inconsistency the caller
    /// reports as [`FtlError::Inconsistent`] rather than panicking over).
    fn slot_data(&self, slot: BufSlot) -> Option<&SlotData> {
        self.slots.get(slot.0 as usize)?.as_ref()
    }

    /// Removes a slot's data and recycles its id for reuse. The caller
    /// must ensure no mapping references the slot anymore. Returns `None`
    /// when the slot was already empty (see [`Ftl::slot_data`]).
    fn release_slot(&mut self, slot: BufSlot) -> Option<SlotData> {
        let data = self.slots.get_mut(slot.0 as usize)?.take()?;
        self.free_slot_ids.push(slot.0);
        Some(data)
    }

    fn new_slot(&mut self, payload: UnitPayload, lpn: Lpn, kind: OobKind) -> BufSlot {
        let id = self.free_slot_ids.pop().unwrap_or_else(|| {
            self.next_slot += 1;
            self.slots.push(None);
            self.next_slot - 1
        });
        self.seq += 1;
        let data = SlotData {
            payload,
            oob: OobEntry {
                lpn: lpn.0,
                sequence: self.seq,
                kind,
            },
        };
        debug_assert!(self.slots[id as usize].is_none(), "slot id double use");
        self.slots[id as usize] = Some(data);
        BufSlot(id)
    }

    /// Writes one logical unit. Partial writes merge with existing content
    /// (read-modify-write); the RMW read is charged to flash timing when
    /// the old copy is on flash.
    ///
    /// Returns the completion instant: `at` for buffered writes, or the
    /// page-program finish when this write filled a page.
    ///
    /// # Errors
    ///
    /// Propagates [`FtlError::OutOfSpace`] when a required program cannot
    /// allocate a block.
    pub fn write(&mut self, w: UnitWrite, kind: OobKind, at: SimTime) -> Result<SimTime, FtlError> {
        self.flash.logical_tick()?;
        self.counters.incr("ftl.host_unit_writes");
        self.counters
            .add("ftl.host_bytes", w.payload.bytes() as u64);
        let mut done = at;

        let payload = if w.whole_unit {
            w.payload
        } else {
            // Read-modify-write merge with the old unit content.
            match self.table.lookup(w.lpn) {
                None => w.payload,
                Some(Location::Buffer(slot)) => {
                    let old = self
                        .slot_data(slot)
                        .ok_or(FtlError::Inconsistent("mapped buffer slot is empty"))?;
                    merge_payload(&old.payload, &w.payload)
                }
                Some(Location::Flash(pun)) => {
                    // A partial write merging with a corrupt old copy
                    // would launder rot into a freshly-checksummed unit:
                    // fail the write instead.
                    if !self.quarantined.is_empty() && self.quarantined.contains(&pun) {
                        return Err(FtlError::Integrity(IntegrityError::CorruptUnit(w.lpn)));
                    }
                    self.counters.incr("ftl.rmw_reads");
                    let win = self.read_with_retry(pun.page(self.upp), at)?;
                    done = done.max(win.finish);
                    // One borrow of the page serves both the checksum
                    // check and the old-payload fetch.
                    let offset = pun.offset(self.upp) as usize;
                    let verify = self.config.verify_checksums;
                    let (corrupt, old) = match self.flash.read(pun.page(self.upp)) {
                        Some(pc) if verify && !pc.unit_intact(offset) => (true, None),
                        Some(pc) => (false, pc.units.get(offset).and_then(|u| u.clone())),
                        None => (false, None),
                    };
                    if corrupt {
                        return Err(self.quarantine_and_report(w.lpn, pun));
                    }
                    merge_payload(&old.unwrap_or_default(), &w.payload)
                }
            }
        };

        let slot = self.new_slot(payload, w.lpn, kind);
        let prev = self.table.map(w.lpn, Location::Buffer(slot));
        self.note_unlink(prev);
        self.clear_poison(w.lpn);

        self.pending.push_back(slot);
        done = done.max(self.drain_to_watermark(at)?);
        Ok(done)
    }

    /// Reads one logical unit. Returns its content and the completion
    /// instant (equal to `at` for buffer hits).
    ///
    /// # Errors
    ///
    /// [`FtlError::Unmapped`] when the unit has never been written;
    /// [`FtlError::Integrity`] when its flash copy fails checksum
    /// verification (quarantined) or was destroyed while corrupt
    /// (poisoned).
    pub fn read(&mut self, lpn: Lpn, at: SimTime) -> Result<(UnitPayload, SimTime), FtlError> {
        self.counters.incr("ftl.host_unit_reads");
        match self.table.lookup(lpn) {
            None if !self.poisoned.is_empty() && self.poisoned.contains(&lpn) => {
                Err(FtlError::Integrity(IntegrityError::Poisoned(lpn)))
            }
            None => Err(FtlError::Unmapped(lpn)),
            Some(Location::Buffer(slot)) => {
                let data = self
                    .slot_data(slot)
                    .ok_or(FtlError::Inconsistent("mapped buffer slot is empty"))?;
                Ok((data.payload.clone(), at))
            }
            Some(Location::Flash(pun)) => {
                if !self.quarantined.is_empty() && self.quarantined.contains(&pun) {
                    return Err(FtlError::Integrity(IntegrityError::CorruptUnit(lpn)));
                }
                let win = self.read_with_retry(pun.page(self.upp), at)?;
                // One borrow of the page serves both the checksum check
                // and the payload fetch — this is the foreground path.
                let offset = pun.offset(self.upp) as usize;
                let verify = self.config.verify_checksums;
                let (corrupt, payload) = match self.flash.read(pun.page(self.upp)) {
                    Some(pc) if verify && !pc.unit_intact(offset) => (true, None),
                    Some(pc) => (false, pc.units.get(offset).and_then(|u| u.clone())),
                    None => (false, None),
                };
                if corrupt {
                    let _ = self.note_corrupt(pun);
                    return Err(FtlError::Integrity(IntegrityError::CorruptUnit(lpn)));
                }
                debug_assert!(
                    payload.is_some(),
                    "mapped unit {lpn} -> {pun} has no flash content (erased while referenced?)"
                );
                Ok((payload.unwrap_or_default(), win.finish))
            }
        }
    }

    /// Reads one logical unit, appending its fragments — filtered by
    /// `key` when given — to `out` without cloning the payload. Timing,
    /// counters, and errors match [`Ftl::read`]; this is the hot-path
    /// variant that keeps the steady-state read loop allocation-free.
    ///
    /// # Errors
    ///
    /// [`FtlError::Unmapped`] when the unit has never been written;
    /// [`FtlError::Integrity`] for quarantined or poisoned units.
    pub fn read_fragments_into(
        &mut self,
        lpn: Lpn,
        at: SimTime,
        key: Option<u64>,
        out: &mut Vec<Fragment>,
    ) -> Result<SimTime, FtlError> {
        self.counters.incr("ftl.host_unit_reads");
        match self.table.lookup(lpn) {
            None if !self.poisoned.is_empty() && self.poisoned.contains(&lpn) => {
                Err(FtlError::Integrity(IntegrityError::Poisoned(lpn)))
            }
            None => Err(FtlError::Unmapped(lpn)),
            Some(Location::Buffer(slot)) => {
                let data = self
                    .slot_data(slot)
                    .ok_or(FtlError::Inconsistent("mapped buffer slot is empty"))?;
                push_matching(&data.payload, key, out);
                Ok(at)
            }
            Some(Location::Flash(pun)) => {
                if !self.quarantined.is_empty() && self.quarantined.contains(&pun) {
                    return Err(FtlError::Integrity(IntegrityError::CorruptUnit(lpn)));
                }
                let win = self.read_with_retry(pun.page(self.upp), at)?;
                // Single page borrow: verify and copy fragments out in
                // one pass — this is the allocation-free read hot loop.
                let offset = pun.offset(self.upp) as usize;
                let verify = self.config.verify_checksums;
                let mut corrupt = false;
                let mut found = false;
                if let Some(pc) = self.flash.read(pun.page(self.upp)) {
                    if verify && !pc.unit_intact(offset) {
                        corrupt = true;
                    } else if let Some(payload) = pc.units.get(offset).and_then(|u| u.as_ref()) {
                        found = true;
                        push_matching(payload, key, out);
                    }
                }
                if corrupt {
                    return Err(self.quarantine_and_report(lpn, pun));
                }
                debug_assert!(
                    found,
                    "mapped unit {lpn} -> {pun} has no flash content (erased while referenced?)"
                );
                Ok(win.finish)
            }
        }
    }

    /// True when `lpn` currently maps to something.
    pub fn is_mapped(&self, lpn: Lpn) -> bool {
        self.table.lookup(lpn).is_some()
    }

    /// Current location of `lpn` (diagnostics).
    pub fn location_of(&self, lpn: Lpn) -> Option<Location> {
        self.table.lookup(lpn)
    }

    /// The remap primitive: make `dst` reference the same physical copy as
    /// `src` (checkpoint by copy-on-write, Algorithm 1's
    /// `MapToTarget` step). No flash traffic; only mapping metadata.
    ///
    /// # Errors
    ///
    /// [`FtlError::Unmapped`] when `src` has no mapping.
    pub fn remap(&mut self, dst: Lpn, src: Lpn) -> Result<(), FtlError> {
        self.flash.logical_tick()?;
        let prev = self.table.alias(dst, src).map_err(FtlError::Unmapped)?;
        self.note_unlink(prev);
        self.clear_poison(dst);
        self.counters.incr("ftl.remap_ops");
        Ok(())
    }

    /// Removes `lpn`'s mapping (deallocate/trim). Returns true when a
    /// mapping existed.
    pub fn deallocate(&mut self, lpn: Lpn) -> bool {
        // A power cut on this tick silently drops the trim: the device is
        // off and the caller observes the loss on its next fallible op.
        if self.flash.logical_tick().is_err() {
            return false;
        }
        let u = self.table.unmap(lpn);
        let existed = u != Unlink::NotMapped;
        if matches!(u, Unlink::Orphaned(Location::Buffer(_))) {
            // Metadata-before-data-discard: a buffered unit never reached
            // flash, so the capacitor-backed slot is its only copy and it
            // has no OOB record. Persist the unmapping before the slot is
            // destroyed — otherwise a post-cut rebuild resolves the stale
            // mapping-log entry to nothing and leaves a one-unit hole in a
            // zone whose neighbours all resurrect, which breaks the
            // engine's journal-scan recovery (a trimmed tombstone vanishes
            // while the older value it deleted survives).
            self.persist_mapping_log();
        }
        self.note_unlink(u);
        // Trimming a poisoned lpn acknowledges the loss: the caller no
        // longer wants the data, so the loss record clears too.
        self.clear_poison(lpn);
        if existed {
            self.counters.incr("ftl.deallocations");
        }
        existed
    }

    /// Pads and programs every partially filled write-point buffer.
    /// Returns the last program's finish time (or `at` when nothing was
    /// pending).
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn flush(&mut self, at: SimTime) -> Result<SimTime, FtlError> {
        let mut done = at;
        while !self.pending.is_empty() {
            done = done.max(self.drain_one_page(at)?);
        }
        Ok(done)
    }

    /// Pages out buffered units while the buffer exceeds its watermark.
    fn drain_to_watermark(&mut self, at: SimTime) -> Result<SimTime, FtlError> {
        let mut done = at;
        while self.pending.len() >= self.config.write_buffer_units as usize {
            done = done.max(self.drain_one_page(at)?);
        }
        Ok(done)
    }

    /// Write stream of an OOB page class: journal traffic is the hottest
    /// (short-lived, trimmed at checkpoint), data is warm, and FTL
    /// metadata plus GC-relocated (survivor) units are the coldest.
    fn stream_of(kind: OobKind) -> usize {
        match kind {
            OobKind::Journal => 0,
            OobKind::Data => 1,
            OobKind::Meta | OobKind::GcCopy => 2,
        }
    }

    /// Stream of a pending buffer slot.
    fn slot_stream(&self, slot: BufSlot) -> Result<usize, FtlError> {
        self.slot_data(slot)
            .map(|d| Self::stream_of(d.oob.kind))
            .ok_or(FtlError::Inconsistent(
                "pending queue references empty slot",
            ))
    }

    /// Write point for a stream: with at least [`STREAMS`] write points
    /// each stream round-robins over its own lane set `{s, s+3, ...}` so
    /// hot and cold pages never share an active block; with fewer, the
    /// streams fold onto what exists.
    fn stream_write_point(&mut self, s: usize) -> usize {
        let wpn = self.actives.len();
        if wpn < STREAMS {
            return s % wpn;
        }
        let lanes = (wpn - s).div_ceil(STREAMS);
        let k = self.stream_rr[s] % lanes;
        self.stream_rr[s] = (k + 1) % lanes;
        s + STREAMS * k
    }

    fn drain_one_page(&mut self, at: SimTime) -> Result<SimTime, FtlError> {
        // Take the batch BEFORE allocating: block allocation may trigger
        // GC, which enqueues freshly migrated units. Those stay buffered
        // for later pages.
        if self.pending.is_empty() {
            return Ok(at);
        }
        let mut taken = self.scratch_batches.pop().unwrap_or_default();
        taken.clear();
        let wp = if self.config.stream_separation {
            // The head slot picks the stream; the batch is the first
            // page-worth of same-stream slots, in arrival order. Streams
            // drain to disjoint write points, so journal churn never
            // punches holes into blocks holding cold survivors.
            let head = *self
                .pending
                .front()
                .ok_or(FtlError::Inconsistent("pending queue emptied unexpectedly"))?;
            let stream = self.slot_stream(head)?;
            let mut indices = std::mem::take(&mut self.scratch_indices);
            indices.clear();
            for i in 0..self.pending.len() {
                if indices.len() >= self.upp as usize {
                    break;
                }
                if self.slot_stream(self.pending[i])? == stream {
                    indices.push(i);
                }
            }
            for (removed, &i) in indices.iter().enumerate() {
                // Indices are ascending; each earlier removal shifts the
                // remainder left by one.
                if let Some(slot) = self.pending.remove(i - removed) {
                    taken.push(slot);
                }
            }
            self.scratch_indices = indices;
            self.stream_write_point(stream)
        } else {
            let take_n = self.pending.len().min(self.upp as usize);
            taken.extend(self.pending.drain(..take_n));
            let wp = self.next_wp;
            self.next_wp = (self.next_wp + 1) % self.actives.len();
            wp
        };
        let (block, page) = match self.alloc_page_slot(wp, at) {
            Ok(v) => v,
            Err(e) => {
                // Put the batch back so no buffered data is lost.
                for (i, &slot) in taken.iter().enumerate() {
                    self.pending.insert(i, slot);
                }
                self.scratch_batches.push(taken);
                return Err(e);
            }
        };
        let ppn = self.flash.geometry().ppn_in_block(block, page);

        let mut content = self.flash.spare_page(self.upp as usize);
        let mut placements = self.scratch_placements.pop().unwrap_or_default();
        placements.clear();
        // Under fault injection the slots keep their data until the program
        // succeeds, so a power cut or media failure loses nothing that was
        // acknowledged. The fault-free hot path keeps its move-only,
        // allocation-free behavior.
        let faulting = self.flash.faults_armed();
        for (offset, &slot) in taken.iter().enumerate() {
            if faulting {
                let data = self.slot_data(slot).ok_or(FtlError::Inconsistent(
                    "page-out batch references empty slot",
                ))?;
                content.units[offset] = Some(data.payload.clone());
                content.oob.push(data.oob);
            } else {
                let data = self.release_slot(slot).ok_or(FtlError::Inconsistent(
                    "page-out batch references empty slot",
                ))?;
                content.units[offset] = Some(data.payload);
                content.oob.push(data.oob);
            }
            placements.push((slot, offset as u32));
        }

        let win = match self.program_with_retry(ppn, content, at) {
            Ok(w) => w,
            Err(e) => {
                if faulting {
                    // The slots still hold every unit: re-queue the batch at
                    // the head so nothing acknowledged is lost.
                    for (i, &slot) in taken.iter().enumerate() {
                        self.pending.insert(i, slot);
                    }
                }
                self.scratch_batches.push(taken);
                self.scratch_placements.push(placements);
                if let FlashError::GrownBadBlock(bad) = e {
                    // Graceful degradation: retire the block and report
                    // success; the still-queued batch drains to a healthy
                    // block on the caller's next loop iteration.
                    if let Some((b, _)) = self.actives[wp] {
                        if b == bad {
                            self.actives[wp] = None;
                        }
                    }
                    self.retire_block(bad);
                    return Ok(at);
                }
                return Err(e.into());
            }
        };
        self.counters.incr("ftl.pages_programmed");
        // The block absorbed fresh units "now" on the write-sequence
        // clock: its age (for cost-benefit victim selection) restarts.
        self.block_write_seq[block.0 as usize] = self.seq;
        let units = placements.len() as u64;
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Ftl, "page_out")
                .with("block", block.0)
                .with("page", u64::from(page))
                .with("units", units)
        });

        for &(slot, offset) in &placements {
            if faulting {
                let _ = self.release_slot(slot);
            }
            let pun = Pun::compose(ppn, offset, self.upp);
            let moved = self
                .table
                .relocate(Location::Buffer(slot), Location::Flash(pun));
            if moved > 0 {
                self.valid_units[block.0 as usize] += 1;
            }
            // moved == 0: the buffered unit died before page-out; it is now
            // padding on flash and simply never becomes valid.
        }
        self.scratch_batches.push(taken);
        self.scratch_placements.push(placements);
        Ok(win.finish)
    }

    /// Marks a fully programmed block closed and stamps its close rank
    /// (the FIFO order windowed-greedy victim selection scans by).
    fn close_block(&mut self, block: BlockId) {
        self.block_kind[block.0 as usize] = BlockKind::Closed;
        self.close_counter += 1;
        self.block_close_seq[block.0 as usize] = self.close_counter;
    }

    fn alloc_page_slot(&mut self, wp: usize, at: SimTime) -> Result<(BlockId, u32), FtlError> {
        let ppb = self.flash.geometry().pages_per_block;
        if let Some((block, page)) = self.actives[wp] {
            if page < ppb {
                self.actives[wp] = if page + 1 < ppb {
                    Some((block, page + 1))
                } else {
                    self.close_block(block);
                    None
                };
                return Ok((block, page));
            }
        }
        let block = self.alloc_block(at)?;
        self.actives[wp] = if ppb > 1 {
            Some((block, 1))
        } else {
            self.close_block(block);
            None
        };
        Ok((block, 0))
    }

    /// Free-pool size at or below which foreground GC must run: the hard
    /// threshold plus any blocks withheld as over-provisioning.
    fn gc_trigger_threshold(&self) -> usize {
        (self.config.gc_threshold_blocks + self.config.overprovision_blocks) as usize
    }

    fn alloc_block(&mut self, at: SimTime) -> Result<BlockId, FtlError> {
        if !self.in_gc && self.free_blocks.len() <= self.gc_trigger_threshold() {
            self.collect_until_headroom(at)?;
        }
        let block = self.free_blocks.pop_front().ok_or(FtlError::OutOfSpace)?;
        self.block_kind[block.0 as usize] = BlockKind::Active;
        Ok(block)
    }

    fn collect_until_headroom(&mut self, at: SimTime) -> Result<(), FtlError> {
        while self.free_blocks.len() <= self.gc_trigger_threshold() {
            if self.run_gc_round(at, GcTrigger::Foreground)?.is_none() {
                // No reclaimable victim. Not fatal yet: the caller may
                // still have free blocks to use.
                break;
            }
        }
        Ok(())
    }

    /// Selects the GC victim under the configured
    /// [`VictimPolicy`](crate::VictimPolicy): every closed block that
    /// would yield free space is offered as a candidate with its valid
    /// count, wear, write-sequence age, and close rank. Returns `None`
    /// when no block would yield free space.
    fn select_victim(&self) -> Option<BlockId> {
        let capacity = self.upp * self.flash.geometry().pages_per_block;
        let now = self.seq;
        let candidates = self
            .block_kind
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == BlockKind::Closed)
            .map(|(i, _)| BlockId(i as u64))
            .filter(|b| self.valid_units[b.0 as usize] < capacity)
            .map(|b| VictimCandidate {
                block: b,
                valid_units: self.valid_units[b.0 as usize],
                capacity,
                erase_count: self.flash.erase_count(b),
                age: now.saturating_sub(self.block_write_seq[b.0 as usize]),
                closed_rank: self.block_close_seq[b.0 as usize],
            });
        self.config.victim_policy.select(candidates)
    }

    /// Spread between the most-erased **in-service** block and the coldest
    /// block still holding data (free blocks recirculate on their own, so
    /// only closed blocks can pin cold data to barely-worn cells). Retired
    /// blocks are out of both sides of the comparison: a retired block
    /// will never be erased again, so its (often high) erase count says
    /// nothing about skew that wear leveling could still fix — using the
    /// flash array's cached global maximum here used to pin the delta
    /// above the threshold forever once a hot block retired.
    pub fn wear_delta(&self) -> u64 {
        let mut max: Option<u64> = None;
        let mut min_closed: Option<u64> = None;
        for (b, &kind) in self.block_kind.iter().enumerate() {
            if kind == BlockKind::Retired {
                continue;
            }
            let erases = self.flash.erase_count(BlockId(b as u64));
            max = Some(max.map_or(erases, |m| m.max(erases)));
            if kind == BlockKind::Closed {
                min_closed = Some(min_closed.map_or(erases, |m| m.min(erases)));
            }
        }
        match (max, min_closed) {
            (Some(max), Some(min)) => max.saturating_sub(min),
            _ => 0,
        }
    }

    /// Runs one static wear-leveling round if the wear skew exceeds the
    /// configured threshold: the *coldest* closed block (fewest erases)
    /// is migrated and erased, so its barely-worn cells rejoin the free
    /// pool while its long-lived data moves to hotter blocks. Returns
    /// `Ok(None)` when levelling is disabled, not needed, or no candidate
    /// exists.
    ///
    /// # Errors
    ///
    /// Propagates flash errors from the migration.
    pub fn run_wear_leveling_round(&mut self, at: SimTime) -> Result<Option<SimTime>, FtlError> {
        let Some(threshold) = self.config.wear_leveling_threshold else {
            return Ok(None);
        };
        if self.wear_delta() <= threshold {
            return Ok(None);
        }
        let victim = self
            .block_kind
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == BlockKind::Closed)
            .map(|(i, _)| BlockId(i as u64))
            .min_by_key(|b| self.flash.erase_count(*b));
        let Some(victim) = victim else {
            return Ok(None);
        };
        self.in_gc = true;
        self.counters.incr("ftl.wear_level_rounds");
        let prev_phase = self.flash.set_fault_phase(FaultPhase::Gc);
        let result = self.migrate_and_erase(victim, at, GcTrigger::WearLevel);
        self.flash.set_fault_phase(prev_phase);
        self.in_gc = false;
        result.map(Some)
    }

    /// Runs one garbage-collection round: migrate the victim's valid units
    /// (preserving shared references), erase it, and return the finish
    /// time. Returns `Ok(None)` when no victim is reclaimable.
    ///
    /// # Errors
    ///
    /// Propagates flash errors (FTL bugs) and out-of-space conditions from
    /// the migration writes.
    pub fn run_gc_round(
        &mut self,
        at: SimTime,
        trigger: GcTrigger,
    ) -> Result<Option<SimTime>, FtlError> {
        let Some(victim) = self.select_victim() else {
            return Ok(None);
        };
        self.in_gc = true;
        let prev_phase = self.flash.set_fault_phase(FaultPhase::Gc);
        let result = self.migrate_and_erase(victim, at, trigger);
        self.flash.set_fault_phase(prev_phase);
        self.in_gc = false;
        result.map(Some)
    }

    fn migrate_and_erase(
        &mut self,
        victim: BlockId,
        at: SimTime,
        trigger: GcTrigger,
    ) -> Result<SimTime, FtlError> {
        self.counters.incr("ftl.gc_invocations");
        self.counters.incr(trigger.counter_key());
        let moved_before = self.counters.get("ftl.gc_units_moved");
        // All flash traffic below (migration reads, page-out programs,
        // the victim erase) is attributed to the GC phase; the previous
        // phase is restored on every exit path.
        let prev_op_phase = self.flash.set_op_phase(OpPhase::Gc);
        let result = self.migrate_and_erase_inner(victim, at);
        self.flash.set_op_phase(prev_op_phase);
        let moved = self.counters.get("ftl.gc_units_moved") - moved_before;
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Ftl, "gc")
                .tag(trigger.label())
                .with("victim", victim.0)
                .with("units_moved", moved)
                .with("ok", u64::from(result.is_ok()))
        });
        result
    }

    fn migrate_and_erase_inner(
        &mut self,
        victim: BlockId,
        at: SimTime,
    ) -> Result<SimTime, FtlError> {
        let g = *self.flash.geometry();
        let verify = self.config.verify_checksums;
        let mut done = at;
        let mut corrupt: Vec<Pun> = Vec::new();
        for page in 0..g.pages_per_block {
            let ppn = g.ppn_in_block(victim, page);
            // Collect valid units of this page first (borrow rules). The
            // scratch buffer is reused across pages and GC rounds.
            let mut valid = std::mem::take(&mut self.scratch_valid);
            valid.clear();
            corrupt.clear();
            for offset in 0..self.upp {
                let pun = Pun::compose(ppn, offset, self.upp);
                let refs = self.table.referrers(Location::Flash(pun));
                if let Some(&primary) = refs.first() {
                    // Verify before salvaging: relocating a unit re-seals
                    // its checksum, which would launder rot into a copy
                    // that verifies. A corrupt referenced unit is about
                    // to lose its only copy — poison it instead.
                    if verify && self.unit_is_corrupt(pun) {
                        corrupt.push(pun);
                        continue;
                    }
                    let payload = self
                        .flash
                        .read(ppn)
                        .and_then(|pc| pc.units[offset as usize].clone())
                        .unwrap_or_default();
                    valid.push((offset, payload, primary));
                }
            }
            for &pun in &corrupt {
                self.poison_destroyed_unit(pun, at);
            }
            if valid.is_empty() {
                self.scratch_valid = valid;
                continue;
            }
            let win = match self.read_with_retry(ppn, at) {
                Ok(w) => w,
                Err(e) => {
                    self.scratch_valid = valid;
                    return Err(e.into());
                }
            };
            done = done.max(win.finish);
            let mut fail = None;
            for (offset, payload, primary) in valid.drain(..) {
                let pun = Pun::compose(ppn, offset, self.upp);
                let slot = self.new_slot(payload, primary, OobKind::GcCopy);
                let moved = self
                    .table
                    .relocate(Location::Flash(pun), Location::Buffer(slot));
                debug_assert!(moved > 0);
                self.valid_units[victim.0 as usize] -= 1;
                self.counters.incr("ftl.gc_units_moved");
                self.pending.push_back(slot);
                match self.drain_to_watermark(at) {
                    Ok(t) => done = done.max(t),
                    Err(e) => {
                        fail = Some(e);
                        break;
                    }
                }
            }
            self.scratch_valid = valid;
            if let Some(e) = fail {
                return Err(e);
            }
        }
        debug_assert_eq!(self.valid_units[victim.0 as usize], 0);
        // Persist the mapping log before the erase so a later power cut
        // never finds the persisted snapshot pointing into an erased block.
        self.persist_mapping_log();
        match self.erase_with_retry(victim, done) {
            Ok(win) => {
                self.block_kind[victim.0 as usize] = BlockKind::Free;
                self.free_blocks.push_back(victim);
                self.clear_block_quarantine(victim);
                Ok(win.finish)
            }
            Err(FlashError::PowerLoss) => Err(FlashError::PowerLoss.into()),
            Err(_) => {
                // Grown defect, worn out, or retries exhausted: the block
                // cannot be recycled. It holds no valid units any more, so
                // retiring it is pure capacity loss, not data loss.
                self.block_kind[victim.0 as usize] = BlockKind::Retired;
                self.counters.incr("ftl.blocks_retired");
                self.clear_block_quarantine(victim);
                Ok(done)
            }
        }
    }

    /// Schedules a read, retrying transient media failures with
    /// exponential backoff up to the read-class attempt budget
    /// ([`FtlConfig::retry_read`]).
    fn read_with_retry(&mut self, ppn: Ppn, at: SimTime) -> Result<Window, FlashError> {
        let policy = self.config.retry_read;
        let mut t = at;
        let mut attempt = 0u32;
        loop {
            match self.flash.schedule_read(ppn, t) {
                Ok(w) => return Ok(w),
                Err(e) if e.classification() == ErrorClass::Transient => {
                    if attempt + 1 >= policy.limit {
                        self.counters.incr("ftl.retry_exhausted_read");
                        return Err(e);
                    }
                    attempt += 1;
                    self.counters.incr("ftl.media_retries");
                    t += self.flash.timing().t_read
                        * (1u64 << attempt.min(policy.backoff_shift_cap));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Programs a page with the program-class bounded-backoff policy
    /// ([`FtlConfig::retry_program`]). The content is cloned per attempt
    /// only while a retry is still possible, and the whole wrapper
    /// collapses to a plain program when fault injection is off, so the
    /// hot path stays allocation-free.
    fn program_with_retry(
        &mut self,
        ppn: Ppn,
        content: PageContent,
        at: SimTime,
    ) -> Result<Window, FlashError> {
        let policy = self.config.retry_program;
        if policy.limit <= 1 || !self.flash.faults_armed() {
            return match self.flash.program(ppn, content, at) {
                Err(e) if e.classification() == ErrorClass::Transient => {
                    self.counters.incr("ftl.retry_exhausted_program");
                    Err(e)
                }
                other => other,
            };
        }
        let mut t = at;
        let mut attempt = 0u32;
        loop {
            if attempt + 1 >= policy.limit {
                // Final attempt: the buffer moves instead of cloning.
                return match self.flash.program(ppn, content, t) {
                    Err(e) if e.classification() == ErrorClass::Transient => {
                        self.counters.incr("ftl.retry_exhausted_program");
                        Err(e)
                    }
                    other => other,
                };
            }
            match self.flash.program(ppn, content.clone(), t) {
                Ok(w) => return Ok(w),
                Err(e) if e.classification() == ErrorClass::Transient => {
                    attempt += 1;
                    self.counters.incr("ftl.media_retries");
                    t += self.flash.timing().t_program
                        * (1u64 << attempt.min(policy.backoff_shift_cap));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Erases a block with the erase-class bounded-backoff policy
    /// ([`FtlConfig::retry_erase`]).
    fn erase_with_retry(&mut self, block: BlockId, at: SimTime) -> Result<Window, FlashError> {
        let policy = self.config.retry_erase;
        let mut t = at;
        let mut attempt = 0u32;
        loop {
            match self.flash.erase(block, t) {
                Ok(w) => return Ok(w),
                Err(e) if e.classification() == ErrorClass::Transient => {
                    if attempt + 1 >= policy.limit {
                        self.counters.incr("ftl.retry_exhausted_erase");
                        return Err(e);
                    }
                    attempt += 1;
                    self.counters.incr("ftl.media_retries");
                    t += self.flash.timing().t_erase
                        * (1u64 << attempt.min(policy.backoff_shift_cap));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Takes a block with a grown defect out of service: every unit still
    /// referenced by the table is salvaged back into the capacitor-backed
    /// write buffer (from where it re-drains to a healthy block), then the
    /// block is marked retired and counted in `ftl.blocks_retired`.
    fn retire_block(&mut self, block: BlockId) {
        let g = *self.flash.geometry();
        let verify = self.config.verify_checksums;
        let mut corrupt: Vec<Pun> = Vec::new();
        for page in 0..self.flash.write_cursor(block) {
            let ppn = g.ppn_in_block(block, page);
            let mut valid = std::mem::take(&mut self.scratch_valid);
            valid.clear();
            corrupt.clear();
            for offset in 0..self.upp {
                let pun = Pun::compose(ppn, offset, self.upp);
                let refs = self.table.referrers(Location::Flash(pun));
                if let Some(&primary) = refs.first() {
                    // Same rule as GC: never salvage (and re-seal) a copy
                    // that no longer verifies.
                    if verify && self.unit_is_corrupt(pun) {
                        corrupt.push(pun);
                        continue;
                    }
                    let payload = self
                        .flash
                        .read(ppn)
                        .and_then(|pc| pc.units[offset as usize].clone())
                        .unwrap_or_default();
                    valid.push((offset, payload, primary));
                }
            }
            for &pun in &corrupt {
                self.poison_destroyed_unit(pun, SimTime::ZERO);
            }
            for (offset, payload, primary) in valid.drain(..) {
                let pun = Pun::compose(ppn, offset, self.upp);
                let slot = self.new_slot(payload, primary, OobKind::GcCopy);
                let moved = self
                    .table
                    .relocate(Location::Flash(pun), Location::Buffer(slot));
                debug_assert!(moved > 0);
                self.valid_units[block.0 as usize] -= 1;
                self.pending.push_back(slot);
            }
            self.scratch_valid = valid;
        }
        debug_assert_eq!(self.valid_units[block.0 as usize], 0);
        self.block_kind[block.0 as usize] = BlockKind::Retired;
        self.counters.incr("ftl.blocks_retired");
        self.clear_block_quarantine(block);
    }

    /// One background-scrub round: verifies the data-unit checksums of up
    /// to `max_pages` programmed pages, resuming from where the previous
    /// round stopped (the cursor wraps). Corrupt units are marked exactly
    /// like a failed foreground read — referenced copies quarantine (the
    /// next read fails fast with a typed error instead of serving rot),
    /// stale copies are merely fenced off from GC — but scrubbing never
    /// retires blocks itself; that decision stays on the foreground path.
    ///
    /// Runs entirely under [`OpPhase::Scrub`], so its flash reads are
    /// phase-tagged (`flash.read.scrub`) and never pollute the run/GC
    /// accounting. A no-op (and no flash traffic) when checksum
    /// verification is disabled.
    ///
    /// OOB records are *not* scrubbed here: rotted OOB metadata is only
    /// ever consumed by the SPOR scan, which re-verifies and rejects it
    /// at read time ([`Ftl::rebuild_after_power_loss`]).
    ///
    /// # Errors
    ///
    /// Propagates media failures of the scrub reads themselves (retry
    /// budget exhausted, power loss). Scrubbing is recovery-adjacent
    /// code: it must never panic (rule A1).
    pub fn scrub_round(&mut self, at: SimTime, max_pages: u32) -> Result<ScrubReport, FtlError> {
        let mut report = ScrubReport::default();
        if !self.config.verify_checksums || max_pages == 0 {
            return Ok(report);
        }
        let total = self.flash.geometry().total_pages();
        if total == 0 {
            return Ok(report);
        }
        let prev = self.flash.set_op_phase(OpPhase::Scrub);
        let out = self.scrub_pages(at, max_pages, total, &mut report);
        self.flash.set_op_phase(prev);
        self.counters.incr("ftl.scrub_rounds");
        self.tracer.emit(|| {
            TraceEvent::new(at, TraceLayer::Ftl, "scrub_round")
                .with("pages", report.pages_scanned)
                .with("detected", report.detected)
        });
        out.map(|()| report)
    }

    /// The scan loop of [`Ftl::scrub_round`]: walks the wrapping cursor,
    /// pays a timed (phase-tagged) read per programmed page, and verifies
    /// every occupied data unit.
    fn scrub_pages(
        &mut self,
        at: SimTime,
        max_pages: u32,
        total: u64,
        report: &mut ScrubReport,
    ) -> Result<(), FtlError> {
        let mut t = at;
        let mut visited = 0u64;
        let budget = u64::from(max_pages).min(total);
        while report.pages_scanned < budget && visited < total {
            let ppn = Ppn(self.scrub_cursor % total);
            self.scrub_cursor = (self.scrub_cursor + 1) % total;
            visited += 1;
            if !self.flash.is_programmed(ppn) {
                continue;
            }
            let win = self.read_with_retry(ppn, t)?;
            t = win.finish;
            report.pages_scanned += 1;
            self.counters.incr("ftl.scrub_pages");
            // Verify the whole page under one borrow, collecting corrupt
            // offsets into a bitmask; quarantine (which needs `&mut self`)
            // happens after the borrow ends. Chunked so any units-per-page
            // value is covered, not just the first 128.
            let mut base = 0u32;
            while base < self.upp {
                let width = (self.upp - base).min(128);
                let mut corrupt_mask = 0u128;
                if let Some(pc) = self.flash.read(ppn) {
                    for bit in 0..width {
                        if !pc.unit_intact((base + bit) as usize) {
                            corrupt_mask |= 1u128 << bit;
                        }
                    }
                }
                for bit in 0..width {
                    if (corrupt_mask >> bit) & 1 == 0 {
                        continue;
                    }
                    let pun = Pun::compose(ppn, base + bit, self.upp);
                    match self.note_corrupt(pun) {
                        Some(true) => {
                            report.detected += 1;
                            report.quarantined += 1;
                        }
                        Some(false) => {
                            report.detected += 1;
                            report.corrected += 1;
                        }
                        None => {}
                    }
                }
                base += width;
            }
        }
        Ok(())
    }

    /// Persists the mapping log — the firmware action behind the periodic
    /// ISCE metadata writes (§III-F) and the pre-erase flush. Recovery
    /// resolves this snapshot first and replays only OOB records written
    /// after it, which is what makes *unmappings* (journal trims, tombstone
    /// trims) and remap aliases durable: both are pure metadata changes
    /// invisible to the OOB stream.
    ///
    /// Gated on fault injection being armed, so normal runs never pay for
    /// it.
    pub fn persist_mapping_log(&mut self) {
        if !self.flash.faults_armed() {
            return;
        }
        let mut entries = Vec::with_capacity(self.table.live_entries());
        for (lpn, loc) in self.table.iter() {
            let snap = match loc {
                Location::Flash(pun) => SnapLoc::Flash(pun),
                Location::Buffer(slot) => {
                    // A mapping onto an empty slot is an inconsistency;
                    // dropping it from the snapshot is safe (the entry
                    // re-resolves from the OOB stream on recovery).
                    let Some(data) = self.slot_data(slot) else {
                        continue;
                    };
                    SnapLoc::Buffered {
                        oob_seq: data.oob.sequence,
                    }
                }
            };
            entries.push((lpn, snap));
        }
        self.persisted = Some(MappingSnapshot {
            seq: self.seq,
            entries,
        });
        self.counters.incr("ftl.mapping_log_persists");
    }

    /// Rebuilds the whole FTL state after a power cut from what survives:
    /// flash contents and their OOB stream, per-block write cursors and
    /// bad-block marks, the capacitor-backed write buffer, and the last
    /// persisted mapping log.
    ///
    /// Algorithm (the paper's §III-G SPOR, extended with the mapping log):
    ///
    /// 1. resolve the persisted snapshot — flash entries directly, buffered
    ///    entries via a live slot with the recorded OOB sequence or, if the
    ///    unit drained before the cut, via the OOB record carrying that
    ///    sequence on flash (matched by sequence alone, since remap aliases
    ///    reference a unit under an lpn other than the one it was written
    ///    under);
    /// 2. replay OOB records *newer than the snapshot* in sequence order,
    ///    newest winning per lpn;
    /// 3. overlay live buffer slots newer than the snapshot — a live slot
    ///    is always the newest copy of its lpn;
    /// 4. reconstruct block lifecycle from write cursors and bad-block
    ///    marks, and recompute per-block valid-unit counts from the fresh
    ///    table. Live buffer slots re-queue for page-out in write order.
    ///
    /// # Errors
    ///
    /// [`RecoveryError::PoweredOff`] when the array has not been powered
    /// back on ([`FlashArray::power_on`]) first;
    /// [`RecoveryError::Inconsistent`] when the surviving state
    /// contradicts itself. Recovery code must never panic (rule A1), so
    /// even caller mistakes report through the error path.
    pub fn rebuild_after_power_loss(&mut self) -> Result<RebuildStats, RecoveryError> {
        if self.flash.powered_off() {
            return Err(RecoveryError::PoweredOff);
        }
        let g = *self.flash.geometry();
        let upp = self.upp;
        let mut stats = RebuildStats::default();
        let snap = self.persisted.take();
        let snap_seq = snap.as_ref().map(|s| s.seq).unwrap_or(0);

        // Live buffer slots indexed by their OOB sequence number.
        let mut slot_by_seq: BTreeMap<u64, BufSlot> = BTreeMap::new();
        for (id, data) in self.slots.iter().enumerate() {
            if let Some(d) = data {
                slot_by_seq.insert(d.oob.sequence, BufSlot(id as u64));
            }
        }

        // One full OOB scan. Post-snapshot records become the replay list;
        // older records go into an exact (lpn, seq) index used to resolve
        // snapshot entries whose buffered unit drained before the cut.
        let mut replay: Vec<(u64, Lpn, Pun)> = Vec::new();
        // Keyed by OOB sequence alone: a sequence number identifies one
        // written unit, while the record's lpn is only the lpn the unit
        // was *written* under — remap aliases (checkpointed home lpns)
        // reference the same unit under a different lpn and must still
        // resolve after the slot drains.
        let mut pre_snap: BTreeMap<u64, Pun> = BTreeMap::new();
        let mut max_seq = snap_seq;
        let verify = self.config.verify_checksums;
        for raw in 0..g.total_pages() {
            let ppn = Ppn(raw);
            let Some(content) = self.flash.read(ppn) else {
                continue;
            };
            for (offset, oob) in content.oob.iter().enumerate() {
                // A record only enters recovery when its OOB metadata AND
                // the data unit it describes both verify: a torn tail or
                // rotted record must neither replay (it would resurrect
                // corrupt data) nor advance `max_seq` (a flipped sequence
                // bit could falsely win newest-wins over good records).
                if verify && !(content.oob_intact(offset) && content.unit_intact(offset)) {
                    stats.oob_records_rejected += 1;
                    continue;
                }
                let pun = Pun::compose(ppn, offset as u32, upp);
                max_seq = max_seq.max(oob.sequence);
                if oob.sequence > snap_seq {
                    replay.push((oob.sequence, Lpn(oob.lpn), pun));
                } else {
                    pre_snap.insert(oob.sequence, pun);
                }
            }
        }
        replay.sort_unstable_by_key(|&(seq, _, _)| seq);

        let mut table = MappingTable::with_capacity((g.total_pages() * upp as u64) as usize);
        if let Some(snap) = &snap {
            for &(lpn, loc) in &snap.entries {
                let resolved = match loc {
                    // A snapshot entry whose flash copy no longer
                    // verifies is dropped, not resolved: recovery must
                    // never re-link a mapping onto corrupt data.
                    SnapLoc::Flash(pun) => self
                        .flash
                        .read(pun.page(upp))
                        .filter(|pc| !verify || pc.unit_intact(pun.offset(upp) as usize))
                        .map(|_| Location::Flash(pun)),
                    SnapLoc::Buffered { oob_seq } => slot_by_seq
                        .get(&oob_seq)
                        .map(|&s| Location::Buffer(s))
                        .or_else(|| pre_snap.get(&oob_seq).map(|&p| Location::Flash(p))),
                };
                match resolved {
                    Some(l) => {
                        let _ = table.map(lpn, l);
                        stats.snapshot_entries_resolved += 1;
                    }
                    None => stats.snapshot_entries_dropped += 1,
                }
            }
        }
        for &(_, lpn, pun) in &replay {
            let _ = table.map(lpn, Location::Flash(pun));
            stats.oob_records_replayed += 1;
        }
        for (id, data) in self.slots.iter().enumerate() {
            if let Some(d) = data {
                max_seq = max_seq.max(d.oob.sequence);
                if d.oob.sequence > snap_seq {
                    let _ = table.map(Lpn(d.oob.lpn), Location::Buffer(BufSlot(id as u64)));
                    stats.buffered_units_recovered += 1;
                }
            }
        }
        self.table = table;

        // Block lifecycle from what the flash itself knows. Both per-block
        // vectors are rebuilt from scratch (no indexing into the stale
        // state): geometry is the single source of their length.
        self.free_blocks.clear();
        let mut block_kind = Vec::with_capacity(g.total_blocks() as usize);
        // Age and close order do not survive a cut (they are runtime GC
        // heuristics, not durable state): every surviving closed block
        // restarts at age zero with its close rank assigned in block-id
        // order. Deterministic, and only victim *preference* — never
        // correctness — depends on it.
        self.block_write_seq = vec![0; g.total_blocks() as usize];
        self.block_close_seq = vec![0; g.total_blocks() as usize];
        self.close_counter = 0;
        for b in 0..g.total_blocks() {
            let id = BlockId(b);
            let kind = if self.flash.is_bad_block(id) {
                BlockKind::Retired
            } else if self.flash.write_cursor(id) > 0 {
                BlockKind::Closed
            } else {
                BlockKind::Free
            };
            block_kind.push(kind);
            if kind == BlockKind::Free {
                self.free_blocks.push_back(id);
            } else if kind == BlockKind::Closed {
                self.close_counter += 1;
                if let Some(rank) = self.block_close_seq.get_mut(b as usize) {
                    *rank = self.close_counter;
                }
            }
        }
        self.block_kind = block_kind;
        let mut valid_units = vec![0u32; g.total_blocks() as usize];
        let mut seen = BTreeSet::new();
        for (_, loc) in self.table.iter() {
            if let Location::Flash(pun) = loc {
                if seen.insert(pun) {
                    let b = g.block_of(pun.page(upp));
                    let count =
                        valid_units
                            .get_mut(b.0 as usize)
                            .ok_or(RecoveryError::Inconsistent(
                                "recovered mapping references an out-of-range block",
                            ))?;
                    *count += 1;
                }
            }
        }
        self.valid_units = valid_units;

        // Fresh runtime state: no active blocks, no GC in flight; the
        // whole surviving buffer re-queues for page-out in write order.
        for a in &mut self.actives {
            *a = None;
        }
        self.next_wp = 0;
        self.stream_rr = [0; STREAMS];
        self.in_gc = false;
        self.pending.clear();
        let mut live: Vec<(u64, u64)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(id, d)| d.as_ref().map(|d| (d.oob.sequence, id as u64)))
            .collect();
        live.sort_unstable();
        for &(_, id) in &live {
            self.pending.push_back(BufSlot(id));
        }
        self.free_slot_ids.clear();
        for (id, d) in self.slots.iter().enumerate() {
            if d.is_none() {
                self.free_slot_ids.push(id as u64);
            }
        }
        self.seq = self.seq.max(max_seq);
        self.counters.incr("ftl.power_loss_rebuilds");
        // Re-persist immediately: the recovered table is the new floor.
        self.persist_mapping_log();
        Ok(stats)
    }

    /// Test-only sabotage: throws away the capacitor-backed write buffer
    /// (slots, pending queue, and their mappings), deliberately breaking
    /// the acked-write durability contract. Harnesses call this to prove
    /// their verifier actually detects a broken recovery; never call it
    /// anywhere else.
    pub fn sabotage_drop_write_buffer(&mut self) {
        let buffered: Vec<Lpn> = self
            .table
            .iter()
            .filter_map(|(lpn, loc)| matches!(loc, Location::Buffer(_)).then_some(lpn))
            .collect();
        for lpn in buffered {
            let _ = self.table.unmap(lpn);
        }
        self.slots.clear();
        self.free_slot_ids.clear();
        self.next_slot = 0;
        self.pending.clear();
    }

    /// Mutable access to the flash array (power-fail injection in tests).
    pub fn flash_mut(&mut self) -> &mut FlashArray {
        &mut self.flash
    }

    /// Iterates `(lpn, location)` over the whole table (recovery scans).
    pub fn mapping_iter(&self) -> impl Iterator<Item = (Lpn, Location)> + '_ {
        self.table.iter()
    }

    /// Exhaustive internal-consistency check for tests: mapping symmetry,
    /// per-block valid-unit counts, free blocks hold no valid data.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.table.check_consistency()?;
        let g = self.flash.geometry();
        let mut expect = vec![0u32; g.total_blocks() as usize];
        // Each occupied flash location counts once, however many referrers.
        let mut seen = BTreeSet::new();
        for (_, loc) in self.table.iter() {
            if let Location::Flash(pun) = loc {
                if seen.insert(pun) {
                    let b = g.block_of(pun.page(self.upp));
                    expect[b.0 as usize] += 1;
                }
            }
        }
        for (i, (&got, &want)) in self.valid_units.iter().zip(&expect).enumerate() {
            if got != want {
                return Err(format!(
                    "block {i}: valid_units={got} but table references {want}"
                ));
            }
        }
        for &b in &self.free_blocks {
            if self.valid_units[b.0 as usize] != 0 {
                return Err(format!("free block {b} has valid units"));
            }
            if self.block_kind[b.0 as usize] != BlockKind::Free {
                return Err(format!("free-pool block {b} not marked Free"));
            }
        }
        for (id, data) in self.slots.iter().enumerate() {
            if data.is_none() {
                continue;
            }
            let slot = BufSlot(id as u64);
            if self.table.referrers(Location::Buffer(slot)).is_empty()
                && !self.pending.contains(&slot)
            {
                return Err(format!("orphaned buffer slot {slot}"));
            }
        }
        for (_, loc) in self.table.iter() {
            if let Location::Flash(pun) = loc {
                let b = g.block_of(pun.page(self.upp));
                if self.block_kind[b.0 as usize] == BlockKind::Retired {
                    return Err(format!("mapping references retired block {b}"));
                }
            }
        }
        Ok(())
    }
}

/// Appends `payload`'s fragments to `out`, keeping only `key`'s when a
/// filter key is given.
fn push_matching(payload: &UnitPayload, key: Option<u64>, out: &mut Vec<Fragment>) {
    for f in payload.fragments.iter() {
        if key.map(|k| k == f.key).unwrap_or(true) {
            out.push(*f);
        }
    }
}

/// Merges a partial write into existing unit content: fragments of keys
/// present in `new` are replaced; other old fragments survive.
fn merge_payload(old: &UnitPayload, new: &UnitPayload) -> UnitPayload {
    let mut fragments: checkin_flash::FragVec = old
        .fragments
        .iter()
        .filter(|f| !new.fragments.iter().any(|n| n.key == f.key))
        .copied()
        .collect();
    fragments.extend(new.fragments.iter().copied());
    UnitPayload { fragments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_flash::{FlashGeometry, FlashTiming};

    fn small_ftl(unit_bytes: u32) -> Ftl {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        Ftl::new(
            flash,
            FtlConfig {
                unit_bytes,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                write_buffer_units: 16,
                ..FtlConfig::default()
            },
        )
        .unwrap()
    }

    fn w(lpn: u64, key: u64, version: u64, bytes: u32) -> UnitWrite {
        UnitWrite {
            lpn: Lpn(lpn),
            payload: UnitPayload::single(key, version, bytes),
            whole_unit: true,
        }
    }

    #[test]
    fn write_then_read_from_buffer() {
        let mut f = small_ftl(512);
        f.write(w(0, 1, 1, 512), OobKind::Data, SimTime::ZERO)
            .unwrap();
        let (p, t) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        assert_eq!(p.fragments[0].key, 1);
        assert_eq!(t, SimTime::ZERO, "buffer hit has no flash latency");
        f.check_invariants().unwrap();
    }

    #[test]
    fn page_out_after_buffer_watermark() {
        let mut f = small_ftl(512);
        let upp = f.units_per_page() as u64; // 8
                                             // Watermark is 16 units: writing 4 pages' worth forces page-outs.
        for i in 0..upp * 4 {
            f.write(w(i, i, 1, 512), OobKind::Data, SimTime::ZERO)
                .unwrap();
        }
        assert!(f.flash().counters().get("flash.program") >= 2);
        let (p, t) = f.read(Lpn(0), SimTime::from_nanos(0)).unwrap();
        assert_eq!(p.fragments[0].key, 0);
        assert!(t > SimTime::ZERO, "flash read has latency");
        f.check_invariants().unwrap();
    }

    #[test]
    fn overwrite_invalidates_old_copy() {
        let mut f = small_ftl(512);
        for i in 0..16 {
            f.write(w(0, 7, i + 1, 512), OobKind::Data, SimTime::ZERO)
                .unwrap();
            // Flush so each version reaches flash and the next overwrite
            // invalidates a flash-resident copy.
            f.flush(SimTime::ZERO).unwrap();
        }
        let (p, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        assert_eq!(p.fragments[0].version, 16, "latest version wins");
        assert!(f.counters().get("ftl.invalid_units") > 0);
        f.check_invariants().unwrap();
    }

    #[test]
    fn read_unmapped_errors() {
        let mut f = small_ftl(512);
        assert!(matches!(
            f.read(Lpn(5), SimTime::ZERO),
            Err(FtlError::Unmapped(Lpn(5)))
        ));
    }

    #[test]
    fn remap_shares_physical_copy() {
        let mut f = small_ftl(512);
        f.write(w(100, 1, 3, 512), OobKind::Journal, SimTime::ZERO)
            .unwrap();
        f.flush(SimTime::ZERO).unwrap();
        f.remap(Lpn(0), Lpn(100)).unwrap();
        let (a, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        let (b, _) = f.read(Lpn(100), SimTime::ZERO).unwrap();
        assert_eq!(a, b);
        assert_eq!(f.location_of(Lpn(0)), f.location_of(Lpn(100)));
        // Remap costs zero flash programs.
        let programs = f.flash().counters().get("flash.program");
        assert_eq!(programs, 1);
        f.check_invariants().unwrap();
    }

    #[test]
    fn remap_unmapped_source_fails() {
        let mut f = small_ftl(512);
        assert!(matches!(
            f.remap(Lpn(0), Lpn(9)),
            Err(FtlError::Unmapped(_))
        ));
    }

    #[test]
    fn deallocate_journal_keeps_data_alias_alive() {
        let mut f = small_ftl(512);
        f.write(w(100, 1, 1, 512), OobKind::Journal, SimTime::ZERO)
            .unwrap();
        f.flush(SimTime::ZERO).unwrap();
        f.remap(Lpn(0), Lpn(100)).unwrap();
        assert!(f.deallocate(Lpn(100)));
        // Data alias still readable; no invalid unit was generated.
        let (p, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        assert_eq!(p.fragments[0].key, 1);
        assert_eq!(f.counters().get("ftl.invalid_units"), 0);
        assert!(!f.deallocate(Lpn(100)), "already gone");
        f.check_invariants().unwrap();
    }

    #[test]
    fn partial_write_merges_with_flash_copy() {
        let mut f = small_ftl(4096);
        // Unit holds keys 1 and 2.
        f.write(
            UnitWrite {
                lpn: Lpn(0),
                payload: UnitPayload::merged(vec![
                    checkin_flash::Fragment {
                        key: 1,
                        version: 1,
                        bytes: 1024,
                    },
                    checkin_flash::Fragment {
                        key: 2,
                        version: 1,
                        bytes: 1024,
                    },
                ]),
                whole_unit: true,
            },
            OobKind::Data,
            SimTime::ZERO,
        )
        .unwrap();
        f.flush(SimTime::ZERO).unwrap();
        // Partial update of key 2 only.
        f.write(
            UnitWrite {
                lpn: Lpn(0),
                payload: UnitPayload::single(2, 2, 1024),
                whole_unit: false,
            },
            OobKind::Data,
            SimTime::ZERO,
        )
        .unwrap();
        let (p, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        let k1 = p.fragments.iter().find(|fr| fr.key == 1).unwrap();
        let k2 = p.fragments.iter().find(|fr| fr.key == 2).unwrap();
        assert_eq!(k1.version, 1);
        assert_eq!(k2.version, 2);
        assert_eq!(f.counters().get("ftl.rmw_reads"), 1);
        f.check_invariants().unwrap();
    }

    #[test]
    fn gc_reclaims_space_under_churn() {
        let mut f = small_ftl(512);
        // Small geometry: 64 blocks x 32 pages x 8 units = 16384 units.
        // Hammer 256 logical units with updates until GC must run.
        for round in 0..100u64 {
            for lpn in 0..256u64 {
                f.write(w(lpn, lpn, round + 1, 512), OobKind::Data, SimTime::ZERO)
                    .unwrap();
            }
        }
        assert!(
            f.counters().get("ftl.gc_invocations") > 0,
            "GC should trigger"
        );
        assert!(f.free_block_count() > 0);
        // Every unit readable at its latest version.
        for lpn in 0..256u64 {
            let (p, _) = f.read(Lpn(lpn), SimTime::ZERO).unwrap();
            assert_eq!(p.fragments[0].version, 100, "lpn {lpn}");
        }
        f.check_invariants().unwrap();
    }

    #[test]
    fn gc_preserves_shared_references() {
        let mut f = small_ftl(512);
        f.write(w(1000, 5, 9, 512), OobKind::Journal, SimTime::ZERO)
            .unwrap();
        f.flush(SimTime::ZERO).unwrap();
        f.remap(Lpn(0), Lpn(1000)).unwrap();
        // Force churn so GC eventually relocates the shared unit's block.
        for round in 0..120u64 {
            for lpn in 1..200u64 {
                f.write(w(lpn, lpn, round + 1, 512), OobKind::Data, SimTime::ZERO)
                    .unwrap();
            }
        }
        assert!(f.counters().get("ftl.gc_invocations") > 0);
        let (a, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        let (b, _) = f.read(Lpn(1000), SimTime::ZERO).unwrap();
        assert_eq!(a, b, "aliases stay identical across GC migration");
        assert_eq!(a.fragments[0].version, 9);
        f.check_invariants().unwrap();
    }

    #[test]
    fn waf_exceeds_one_under_small_writes() {
        let mut f = small_ftl(4096);
        for i in 0..64u64 {
            // 512-byte host writes into 4 KiB units: heavy padding.
            f.write(
                UnitWrite {
                    lpn: Lpn(i),
                    payload: UnitPayload::single(i, 1, 512),
                    whole_unit: false,
                },
                OobKind::Data,
                SimTime::ZERO,
            )
            .unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        assert!(f.waf() > 1.0, "waf = {}", f.waf());
    }

    #[test]
    fn flush_pads_partial_pages() {
        let mut f = small_ftl(512);
        f.write(w(0, 1, 1, 512), OobKind::Data, SimTime::ZERO)
            .unwrap();
        let done = f.flush(SimTime::ZERO).unwrap();
        assert!(done > SimTime::ZERO);
        assert_eq!(f.flash().counters().get("flash.program"), 1);
        let (p, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        assert_eq!(p.fragments[0].key, 1);
        f.check_invariants().unwrap();
    }

    #[test]
    fn out_of_space_when_all_valid() {
        let flash = FlashArray::new(
            FlashGeometry {
                channels: 1,
                dies_per_channel: 1,
                planes_per_die: 1,
                blocks_per_plane: 8,
                pages_per_block: 4,
                page_bytes: 4096,
            },
            FlashTiming::mlc(),
        );
        let mut f = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 4096,
                write_points: 1,
                gc_threshold_blocks: 2,
                gc_soft_threshold_blocks: 2,
                write_buffer_units: 1,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        // 8 blocks x 4 pages = 32 units; all distinct -> nothing reclaimable.
        let mut failed = false;
        for i in 0..40u64 {
            match f.write(w(i, i, 1, 4096), OobKind::Data, SimTime::ZERO) {
                Ok(_) => {}
                Err(FtlError::OutOfSpace) => {
                    failed = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(failed, "completely full device must report OutOfSpace");
    }

    #[test]
    fn map_access_cost_reflects_live_entries() {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let mut f = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 512,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                map_cache_entries: Some(4),
                write_buffer_units: 16,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        let cheap = f.map_access_cost();
        for i in 0..64 {
            f.write(w(i, i, 1, 512), OobKind::Data, SimTime::ZERO)
                .unwrap();
        }
        assert!(f.map_access_cost() > cheap);
    }

    #[test]
    fn background_gc_signal() {
        let f = small_ftl(512);
        assert!(!f.wants_background_gc(), "fresh device has headroom");
    }

    #[test]
    fn merge_payload_replaces_matching_keys() {
        let old = UnitPayload::merged(vec![
            checkin_flash::Fragment {
                key: 1,
                version: 1,
                bytes: 100,
            },
            checkin_flash::Fragment {
                key: 2,
                version: 1,
                bytes: 100,
            },
        ]);
        let new = UnitPayload::single(2, 5, 100);
        let merged = merge_payload(&old, &new);
        assert_eq!(merged.fragments.len(), 2);
        assert_eq!(
            merged
                .fragments
                .iter()
                .find(|f| f.key == 2)
                .unwrap()
                .version,
            5
        );
    }
}

#[cfg(test)]
mod buffer_overwrite_tests {
    use super::*;
    use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};

    #[test]
    fn buffered_overwrite_discards_old_slot() {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let mut f = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 512,
                write_points: 1,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        // Write the same lpn `upp` times: old buffered copies must be
        // dropped, so no page program should happen (buffer never fills).
        for v in 1..=8u64 {
            f.write(
                UnitWrite {
                    lpn: Lpn(0),
                    payload: UnitPayload::single(1, v, 512),
                    whole_unit: true,
                },
                OobKind::Data,
                SimTime::ZERO,
            )
            .unwrap();
        }
        assert_eq!(f.flash().counters().get("flash.program"), 0);
        let (p, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        assert_eq!(p.fragments[0].version, 8);
        f.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod stream_separation_tests {
    use super::*;
    use checkin_flash::{FlashGeometry, FlashTiming};

    fn stream_ftl(separation: bool) -> Ftl {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 512,
                write_points: 6,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                write_buffer_units: 16,
                stream_separation: separation,
                ..FtlConfig::default()
            },
        )
        .unwrap()
    }

    fn wk(f: &mut Ftl, lpn: u64, kind: OobKind) {
        f.write(
            UnitWrite {
                lpn: Lpn(lpn),
                payload: UnitPayload::single(lpn, 1, 512),
                whole_unit: true,
            },
            kind,
            SimTime::ZERO,
        )
        .unwrap();
    }

    /// With separation on, every programmed page holds units of exactly
    /// one stream even when journal and data writes arrive interleaved.
    #[test]
    fn pages_hold_a_single_stream() {
        let mut f = stream_ftl(true);
        for i in 0..64u64 {
            let kind = if i % 2 == 0 {
                OobKind::Journal
            } else {
                OobKind::Data
            };
            wk(&mut f, i, kind);
        }
        f.flush(SimTime::ZERO).unwrap();
        let total = f.flash().geometry().total_pages();
        let mut mixed = 0;
        let mut programmed = 0;
        for raw in 0..total {
            let Some(pc) = f.flash().read(Ppn(raw)) else {
                continue;
            };
            programmed += 1;
            let mut streams: Vec<usize> = pc.oob.iter().map(|o| Ftl::stream_of(o.kind)).collect();
            streams.dedup();
            if streams.len() > 1 {
                mixed += 1;
            }
        }
        assert!(programmed >= 8, "should have programmed several pages");
        assert_eq!(mixed, 0, "{mixed} of {programmed} pages mix streams");
        // All data still readable.
        for i in 0..64u64 {
            let (p, _) = f.read(Lpn(i), SimTime::ZERO).unwrap();
            assert_eq!(p.fragments[0].key, i);
        }
        f.check_invariants().unwrap();
    }

    /// Separation must not lose or reorder logical contents relative to
    /// the shared-write-point default.
    #[test]
    fn separation_preserves_logical_contents() {
        for separation in [false, true] {
            let mut f = stream_ftl(separation);
            for round in 0..30u64 {
                for i in 0..48u64 {
                    let kind = match i % 3 {
                        0 => OobKind::Journal,
                        1 => OobKind::Data,
                        _ => OobKind::Meta,
                    };
                    f.write(
                        UnitWrite {
                            lpn: Lpn(i),
                            payload: UnitPayload::single(i, round + 1, 512),
                            whole_unit: true,
                        },
                        kind,
                        SimTime::ZERO,
                    )
                    .unwrap();
                }
            }
            f.flush(SimTime::ZERO).unwrap();
            for i in 0..48u64 {
                let (p, _) = f.read(Lpn(i), SimTime::ZERO).unwrap();
                assert_eq!(
                    p.fragments[0].version, 30,
                    "separation={separation} lpn {i}"
                );
            }
            f.check_invariants().unwrap();
        }
    }

    /// Fewer write points than streams: separation folds streams onto
    /// the available lanes without panicking or losing data.
    #[test]
    fn separation_with_two_write_points() {
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let mut f = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 512,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                write_buffer_units: 16,
                stream_separation: true,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        for i in 0..32u64 {
            let kind = if i % 2 == 0 {
                OobKind::Journal
            } else {
                OobKind::Meta
            };
            wk(&mut f, i, kind);
        }
        f.flush(SimTime::ZERO).unwrap();
        for i in 0..32u64 {
            let (p, _) = f.read(Lpn(i), SimTime::ZERO).unwrap();
            assert_eq!(p.fragments[0].key, i);
        }
        f.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod wear_leveling_tests {
    use super::*;
    use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};

    fn wl_ftl(threshold: Option<u64>) -> Ftl {
        let flash = FlashArray::new(
            FlashGeometry {
                channels: 1,
                dies_per_channel: 1,
                planes_per_die: 1,
                blocks_per_plane: 16,
                pages_per_block: 8,
                page_bytes: 4096,
            },
            FlashTiming::mlc(),
        );
        Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 4096,
                write_points: 1,
                gc_threshold_blocks: 2,
                gc_soft_threshold_blocks: 4,
                write_buffer_units: 1,
                wear_leveling_threshold: threshold,
                ..FtlConfig::default()
            },
        )
        .unwrap()
    }

    fn write_unit(f: &mut Ftl, lpn: u64, version: u64) {
        f.write(
            UnitWrite {
                lpn: Lpn(lpn),
                payload: UnitPayload::single(lpn, version, 4096),
                whole_unit: true,
            },
            OobKind::Data,
            SimTime::ZERO,
        )
        .unwrap();
    }

    /// Cold data parked in block 0 while hot lpns churn: without static
    /// wear leveling the cold block never gets erased; with it, the wear
    /// spread stays bounded and the cold data survives the migration.
    #[test]
    fn levels_cold_block_and_preserves_data() {
        let mut f = wl_ftl(Some(4));
        // Cold records fill the first block (8 units).
        for lpn in 0..8u64 {
            write_unit(&mut f, lpn, 1);
        }
        // Hot churn: rewrite a small set until GC has cycled many times.
        for round in 0..400u64 {
            for lpn in 8..32u64 {
                write_unit(&mut f, lpn, round + 1);
            }
        }
        assert!(f.wear_delta() > 4, "churn must skew wear");
        let mut rounds = 0;
        while f.run_wear_leveling_round(SimTime::ZERO).unwrap().is_some() {
            rounds += 1;
            assert!(rounds < 64, "wear leveling must converge");
        }
        assert!(rounds > 0, "levelling should have run");
        assert_eq!(f.counters().get("ftl.wear_level_rounds"), rounds);
        // Cold data intact at version 1.
        for lpn in 0..8u64 {
            let (p, _) = f.read(Lpn(lpn), SimTime::ZERO).unwrap();
            assert_eq!(p.fragments[0].version, 1, "lpn {lpn}");
        }
        f.check_invariants().unwrap();
    }

    /// Regression: a retired block that was the wear ceiling used to pin
    /// `wear_delta` above the threshold forever (the flash array's cached
    /// global max includes retired blocks), so every call to
    /// `run_wear_leveling_round` migrated a cold block without ever
    /// converging. Retired blocks can never be erased again — they must
    /// not count toward levelable skew.
    #[test]
    fn retired_hot_block_does_not_pin_wear_delta() {
        let mut f = wl_ftl(Some(4));
        // A little cold data so closed blocks exist.
        for lpn in 0..8u64 {
            write_unit(&mut f, lpn, 1);
        }
        f.flush(SimTime::ZERO).unwrap();
        // Take one free block, wear it hot (erasing an erased free block
        // only bumps its counters), and retire it.
        let hot = *f.free_blocks.back().expect("free pool non-empty");
        for _ in 0..50 {
            f.flash_mut().erase(hot, SimTime::ZERO).unwrap();
        }
        f.free_blocks.retain(|&b| b != hot);
        f.block_kind[hot.0 as usize] = BlockKind::Retired;

        // In-service skew is zero-ish: nothing else was erased. The old
        // implementation reported 50 here and levelled on every call.
        assert!(
            f.wear_delta() <= 4,
            "retired block inflates wear_delta to {}",
            f.wear_delta()
        );
        assert_eq!(
            f.run_wear_leveling_round(SimTime::ZERO).unwrap(),
            None,
            "no wear-leveling round should run on a level device"
        );
        assert_eq!(f.counters().get("ftl.wear_level_rounds"), 0);
        f.check_invariants().unwrap();
    }

    #[test]
    fn disabled_threshold_never_levels() {
        let mut f = wl_ftl(None);
        for round in 0..200u64 {
            for lpn in 0..24u64 {
                write_unit(&mut f, lpn, round + 1);
            }
        }
        assert_eq!(f.run_wear_leveling_round(SimTime::ZERO).unwrap(), None);
        assert_eq!(f.counters().get("ftl.wear_level_rounds"), 0);
    }

    #[test]
    fn below_threshold_is_a_noop() {
        let mut f = wl_ftl(Some(1_000_000));
        for round in 0..100u64 {
            for lpn in 0..24u64 {
                write_unit(&mut f, lpn, round + 1);
            }
        }
        assert_eq!(f.run_wear_leveling_round(SimTime::ZERO).unwrap(), None);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::config::MediaRetryPolicy;
    use checkin_flash::{FaultConfig, FaultPlan, FlashArray, FlashGeometry, FlashTiming};
    use std::collections::HashMap as Shadow;

    fn fault_ftl(retry_limit: u32) -> Ftl {
        let flash = FlashArray::new(
            FlashGeometry {
                channels: 1,
                dies_per_channel: 1,
                planes_per_die: 1,
                blocks_per_plane: 16,
                pages_per_block: 8,
                page_bytes: 4096,
            },
            FlashTiming::mlc(),
        );
        Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 4096,
                write_points: 1,
                gc_threshold_blocks: 2,
                gc_soft_threshold_blocks: 4,
                write_buffer_units: 4,
                wear_leveling_threshold: None,
                retry_read: MediaRetryPolicy::with_limit(retry_limit),
                retry_program: MediaRetryPolicy::with_limit(retry_limit),
                retry_erase: MediaRetryPolicy::with_limit(retry_limit),
                ..FtlConfig::default()
            },
        )
        .unwrap()
    }

    fn put(f: &mut Ftl, lpn: u64, version: u64) -> Result<SimTime, FtlError> {
        f.write(
            UnitWrite {
                lpn: Lpn(lpn),
                payload: UnitPayload::single(lpn, version, 4096),
                whole_unit: true,
            },
            OobKind::Data,
            SimTime::ZERO,
        )
    }

    #[test]
    fn transient_media_failures_are_absorbed_by_retries() {
        let mut f = fault_ftl(8);
        f.flash_mut().arm_faults(FaultPlan::new(FaultConfig {
            seed: 7,
            transient_read: 0.2,
            transient_program: 0.2,
            transient_erase: 0.2,
            ..FaultConfig::default()
        }));
        let mut shadow: Shadow<u64, u64> = Shadow::new();
        for i in 0..400u64 {
            let lpn = i % 24;
            put(&mut f, lpn, i).unwrap();
            shadow.insert(lpn, i);
        }
        assert!(
            f.counters().get("ftl.media_retries") > 0,
            "retries must have happened at a 20% fault rate"
        );
        for (&lpn, &version) in &shadow {
            let (p, _) = f.read(Lpn(lpn), SimTime::ZERO).unwrap();
            assert_eq!(p.fragments[0].version, version, "lpn {lpn}");
        }
        f.check_invariants().unwrap();
    }

    #[test]
    fn grown_bad_blocks_are_retired_without_data_loss() {
        let mut f = fault_ftl(4);
        f.flash_mut().arm_faults(FaultPlan::new(FaultConfig {
            seed: 11,
            grown_bad_block: 0.004,
            ..FaultConfig::default()
        }));
        let mut shadow: Shadow<u64, u64> = Shadow::new();
        for i in 0..500u64 {
            let lpn = i % 24;
            put(&mut f, lpn, i).unwrap();
            shadow.insert(lpn, i);
        }
        assert!(
            f.counters().get("ftl.blocks_retired") > 0,
            "expected at least one retirement at this seed and rate"
        );
        for (&lpn, &version) in &shadow {
            let (p, _) = f.read(Lpn(lpn), SimTime::ZERO).unwrap();
            assert_eq!(p.fragments[0].version, version, "lpn {lpn}");
        }
        f.check_invariants().unwrap();
    }

    #[test]
    fn power_cut_then_rebuild_preserves_every_acked_write() {
        for cut_tick in [5u64, 17, 33, 71, 120, 250, 400, 900] {
            let mut f = fault_ftl(4);
            f.flash_mut()
                .arm_faults(FaultPlan::new(FaultConfig::power_cut(3, cut_tick)));
            let mut shadow: Shadow<u64, u64> = Shadow::new();
            let mut cut = false;
            // The one write that observes the cut is not acknowledged; the
            // durability contract allows it to be either absent or present.
            let mut inflight: Option<(u64, u64)> = None;
            for i in 0..600u64 {
                let lpn = i % 24;
                match put(&mut f, lpn, i) {
                    Ok(_) => {
                        shadow.insert(lpn, i);
                    }
                    Err(e) => {
                        assert!(e.is_power_loss(), "cut {cut_tick}: unexpected {e}");
                        inflight = Some((lpn, i));
                        cut = true;
                        break;
                    }
                }
            }
            assert!(cut, "cut {cut_tick} never fired");
            f.flash_mut().power_on();
            let stats = f.rebuild_after_power_loss().unwrap();
            assert!(
                stats.snapshot_entries_resolved
                    + stats.oob_records_replayed
                    + stats.buffered_units_recovered
                    > 0
                    || shadow.is_empty(),
                "cut {cut_tick}: rebuild recovered nothing"
            );
            for (&lpn, &version) in &shadow {
                let (p, _) = f.read(Lpn(lpn), SimTime::ZERO).unwrap();
                let got = p.fragments[0].version;
                let acceptable =
                    got == version || matches!(inflight, Some((l, v)) if l == lpn && got == v);
                assert!(
                    acceptable,
                    "cut {cut_tick}: lpn {lpn} has version {got}, acked {version}"
                );
            }
            f.check_invariants().unwrap();
            // The device keeps working after recovery.
            put(&mut f, 0, 10_000).unwrap();
            assert_eq!(
                f.read(Lpn(0), SimTime::ZERO).unwrap().0.fragments[0].version,
                10_000
            );
        }
    }

    #[test]
    fn sabotaged_buffer_loses_acked_writes_visibly() {
        let mut f = fault_ftl(4);
        f.flash_mut()
            .arm_faults(FaultPlan::new(FaultConfig::power_cut(5, 1_000_000)));
        // Three acked writes that stay buffered (watermark is 4).
        for lpn in 0..3u64 {
            put(&mut f, lpn, 1).unwrap();
        }
        f.flash_mut().cut_power();
        f.flash_mut().power_on();
        // A failed capacitor: the buffer is gone before recovery runs.
        f.sabotage_drop_write_buffer();
        f.rebuild_after_power_loss().unwrap();
        let lost = (0..3u64)
            .filter(|&lpn| f.read(Lpn(lpn), SimTime::ZERO).is_err())
            .count();
        assert!(lost > 0, "sabotage must cause detectable loss");
    }

    #[test]
    fn rebuild_restores_mapping_log_unmappings() {
        let mut f = fault_ftl(4);
        f.flash_mut()
            .arm_faults(FaultPlan::new(FaultConfig::power_cut(9, 1_000_000)));
        put(&mut f, 0, 1).unwrap();
        put(&mut f, 1, 1).unwrap();
        f.flush(SimTime::ZERO).unwrap();
        assert!(f.deallocate(Lpn(0)));
        // The trim is metadata only; persisting the mapping log is what
        // makes it durable across a cut.
        f.persist_mapping_log();
        f.flash_mut().cut_power();
        f.flash_mut().power_on();
        f.rebuild_after_power_loss().unwrap();
        assert!(
            !f.is_mapped(Lpn(0)),
            "persisted trim must not be resurrected by OOB replay"
        );
        assert!(f.is_mapped(Lpn(1)));
        f.check_invariants().unwrap();
    }
}

#[cfg(test)]
mod integrity_tests {
    use super::*;
    use crate::config::MediaRetryPolicy;
    use checkin_flash::{FaultConfig, FaultPlan, FlashArray, FlashGeometry, FlashTiming};

    /// Small single-die device, 4 KiB mapping unit (one unit per page),
    /// no fault injection: corruption is placed deterministically with
    /// the sabotage hooks.
    fn integrity_ftl() -> Ftl {
        let flash = FlashArray::new(
            FlashGeometry {
                channels: 1,
                dies_per_channel: 1,
                planes_per_die: 1,
                blocks_per_plane: 16,
                pages_per_block: 8,
                page_bytes: 4096,
            },
            FlashTiming::mlc(),
        );
        Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: 4096,
                write_points: 1,
                gc_threshold_blocks: 2,
                gc_soft_threshold_blocks: 4,
                write_buffer_units: 4,
                wear_leveling_threshold: None,
                ..FtlConfig::default()
            },
        )
        .unwrap()
    }

    fn put(f: &mut Ftl, lpn: u64, version: u64) -> Result<SimTime, FtlError> {
        f.write(
            UnitWrite {
                lpn: Lpn(lpn),
                payload: UnitPayload::single(lpn, version, 4096),
                whole_unit: true,
            },
            OobKind::Data,
            SimTime::ZERO,
        )
    }

    /// The flash location `lpn` maps to (must be drained to flash).
    fn flash_pun(f: &Ftl, lpn: u64) -> Pun {
        match f.location_of(Lpn(lpn)) {
            Some(Location::Flash(pun)) => pun,
            other => panic!("lpn {lpn} not on flash: {other:?}"),
        }
    }

    #[test]
    fn corrupt_unit_read_fails_typed_and_stays_quarantined() {
        let mut f = integrity_ftl();
        for lpn in 0..4 {
            put(&mut f, lpn, 1).unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        let pun = flash_pun(&f, 2);
        assert!(f.flash_mut().sabotage_corrupt_unit(pun.page(1), 0, 1 << 17));

        let err = f.read(Lpn(2), SimTime::ZERO).unwrap_err();
        assert_eq!(
            err,
            FtlError::Integrity(IntegrityError::CorruptUnit(Lpn(2))),
            "corrupt data must fail typed, never be served"
        );
        assert!(err.is_integrity());
        assert_eq!(f.counters().get("ftl.integrity_detected"), 1);
        assert_eq!(f.counters().get("ftl.integrity_quarantined"), 1);

        // Repeated reads keep failing fast without re-detecting.
        let again = f.read(Lpn(2), SimTime::ZERO).unwrap_err();
        assert_eq!(
            again,
            FtlError::Integrity(IntegrityError::CorruptUnit(Lpn(2)))
        );
        assert_eq!(f.counters().get("ftl.integrity_detected"), 1);

        // The allocation-free path agrees.
        let mut out = Vec::new();
        let err = f
            .read_fragments_into(Lpn(2), SimTime::ZERO, None, &mut out)
            .unwrap_err();
        assert!(err.is_integrity());
        assert!(out.is_empty());

        // Healthy neighbours are unaffected.
        assert_eq!(
            f.read(Lpn(1), SimTime::ZERO).unwrap().0.fragments[0].version,
            1
        );
        f.check_invariants().unwrap();
    }

    #[test]
    fn disabling_verification_serves_rot_silently() {
        // The sabotage mode corruptmatrix relies on: with verification
        // off the device trusts whatever the cells hold.
        let mut f = {
            let flash = FlashArray::new(
                FlashGeometry {
                    channels: 1,
                    dies_per_channel: 1,
                    planes_per_die: 1,
                    blocks_per_plane: 16,
                    pages_per_block: 8,
                    page_bytes: 4096,
                },
                FlashTiming::mlc(),
            );
            Ftl::new(
                flash,
                FtlConfig {
                    unit_bytes: 4096,
                    write_points: 1,
                    gc_threshold_blocks: 2,
                    gc_soft_threshold_blocks: 4,
                    write_buffer_units: 4,
                    wear_leveling_threshold: None,
                    verify_checksums: false,
                    ..FtlConfig::default()
                },
            )
            .unwrap()
        };
        put(&mut f, 0, 1).unwrap();
        f.flush(SimTime::ZERO).unwrap();
        let pun = flash_pun(&f, 0);
        f.flash_mut().sabotage_corrupt_unit(pun.page(1), 0, 1 << 3);
        let (payload, _) = f.read(Lpn(0), SimTime::ZERO).unwrap();
        assert_ne!(
            payload.fragments[0].version, 1,
            "with verification off the flipped version is served as-is"
        );
        assert_eq!(f.counters().get("ftl.integrity_detected"), 0);
    }

    #[test]
    fn scrub_finds_referenced_and_stale_rot() {
        let mut f = integrity_ftl();
        for lpn in 0..4 {
            put(&mut f, lpn, 1).unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        let stale = flash_pun(&f, 1);
        // Overwriting lpn 1 leaves its old copy stale on flash.
        put(&mut f, 1, 2).unwrap();
        f.flush(SimTime::ZERO).unwrap();
        let live = flash_pun(&f, 3);
        assert_ne!(stale, live);
        assert!(f
            .flash_mut()
            .sabotage_corrupt_unit(stale.page(1), 0, 1 << 9));
        assert!(f.flash_mut().sabotage_corrupt_unit(live.page(1), 0, 1 << 9));

        let report = f.scrub_round(SimTime::ZERO, 1_000).unwrap();
        assert!(report.pages_scanned > 0);
        assert_eq!(report.detected, 2);
        assert_eq!(report.quarantined, 1, "live copy of lpn 3");
        assert_eq!(report.corrected, 1, "stale copy of lpn 1");
        assert_eq!(f.counters().get("ftl.integrity_detected"), 2);
        assert_eq!(f.counters().get("ftl.scrub_rounds"), 1);
        assert!(f.counters().get("ftl.scrub_pages") > 0);
        // Scrub reads are phase-tagged, not charged to the run phase.
        assert!(f.flash().counters().get("flash.read.scrub") > 0);

        // The scrubbed-out unit now fails fast on the foreground path...
        assert!(f.read(Lpn(3), SimTime::ZERO).unwrap_err().is_integrity());
        // ...while the overwritten lpn still reads its fresh copy.
        assert_eq!(
            f.read(Lpn(1), SimTime::ZERO).unwrap().0.fragments[0].version,
            2
        );

        // A second sweep re-reads but detects nothing new.
        let report = f.scrub_round(SimTime::ZERO, 1_000).unwrap();
        assert_eq!(report.detected, 0);
        assert_eq!(f.counters().get("ftl.integrity_detected"), 2);
        f.check_invariants().unwrap();
    }

    #[test]
    fn scrub_respects_budget_and_toggle() {
        let mut f = integrity_ftl();
        for lpn in 0..4 {
            put(&mut f, lpn, 1).unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        let reads_before = f.flash().counters().get("flash.read");
        let report = f.scrub_round(SimTime::ZERO, 0).unwrap();
        assert_eq!(report, ScrubReport::default());
        assert_eq!(f.flash().counters().get("flash.read"), reads_before);

        let report = f.scrub_round(SimTime::ZERO, 1).unwrap();
        assert_eq!(report.pages_scanned, 1, "budget of one page is honoured");

        // Verification off: the scrubber is a guaranteed no-op.
        let mut off = f;
        off.config.verify_checksums = false;
        let reads_before = off.flash().counters().get("flash.read");
        let report = off.scrub_round(SimTime::ZERO, 1_000).unwrap();
        assert_eq!(report, ScrubReport::default());
        assert_eq!(off.flash().counters().get("flash.read"), reads_before);
    }

    #[test]
    fn gc_poisons_destroyed_corrupt_units_and_write_heals() {
        let mut f = integrity_ftl();
        for lpn in 0..8 {
            put(&mut f, lpn, 1).unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        let victim_pun = flash_pun(&f, 0);
        // Invalidate every other unit sharing lpn 0's block so GC picks it.
        for lpn in 1..8 {
            put(&mut f, lpn, 2).unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        assert!(f
            .flash_mut()
            .sabotage_corrupt_unit(victim_pun.page(1), 0, 1 << 5));

        let done = f
            .run_gc_round(SimTime::ZERO, GcTrigger::Background)
            .unwrap();
        assert!(done.is_some(), "a victim block must have been collected");
        assert_eq!(f.counters().get("ftl.integrity_unrecoverable"), 1);
        assert_eq!(f.counters().get("ftl.integrity_detected"), 1);
        f.check_invariants().unwrap();

        // The loss is reported as such — not as "never written".
        let err = f.read(Lpn(0), SimTime::ZERO).unwrap_err();
        assert_eq!(err, FtlError::Integrity(IntegrityError::Poisoned(Lpn(0))));

        // A fresh write supersedes the loss.
        put(&mut f, 0, 9).unwrap();
        assert_eq!(
            f.read(Lpn(0), SimTime::ZERO).unwrap().0.fragments[0].version,
            9
        );
        f.check_invariants().unwrap();
    }

    #[test]
    fn retry_exhaustion_is_counted_per_class() {
        let mut f = integrity_ftl();
        f.config.retry_read = MediaRetryPolicy::with_limit(3);
        put(&mut f, 0, 1).unwrap();
        f.flush(SimTime::ZERO).unwrap();
        f.flash_mut().arm_faults(FaultPlan::new(FaultConfig {
            seed: 11,
            transient_read: 1.0,
            ..FaultConfig::default()
        }));
        let err = f.read(Lpn(0), SimTime::ZERO).unwrap_err();
        assert!(!err.is_integrity(), "media failure, not corruption: {err}");
        assert_eq!(f.counters().get("ftl.retry_exhausted_read"), 1);
        assert_eq!(f.counters().get("ftl.media_retries"), 2);
        assert_eq!(f.counters().get("ftl.retry_exhausted_program"), 0);

        let mut f = integrity_ftl();
        f.config.retry_program = MediaRetryPolicy::with_limit(2);
        f.flash_mut().arm_faults(FaultPlan::new(FaultConfig {
            seed: 11,
            transient_program: 1.0,
            ..FaultConfig::default()
        }));
        for lpn in 0..4 {
            let _ = put(&mut f, lpn, 1);
        }
        let err = f.flush(SimTime::ZERO).unwrap_err();
        assert!(!err.is_integrity());
        assert!(f.counters().get("ftl.retry_exhausted_program") >= 1);
        assert_eq!(f.counters().get("ftl.retry_exhausted_erase"), 0);
    }

    #[test]
    fn spor_scan_rejects_corrupt_oob_records() {
        let mut f = integrity_ftl();
        f.flash_mut()
            .arm_faults(FaultPlan::new(FaultConfig::power_cut(3, 1_000_000)));
        for lpn in 0..4 {
            put(&mut f, lpn, 1).unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        let pun = flash_pun(&f, 2);
        assert!(f.flash_mut().sabotage_corrupt_oob(pun.page(1), 0, 1 << 21));

        f.flash_mut().cut_power();
        f.flash_mut().power_on();
        let stats = f.rebuild_after_power_loss().unwrap();
        assert_eq!(stats.oob_records_rejected, 1);

        // The corrupt record neither replays wrong data nor resurrects
        // the mapping: the loss is visible, not silent.
        assert!(f.read(Lpn(2), SimTime::ZERO).is_err());
        for lpn in [0u64, 1, 3] {
            assert_eq!(
                f.read(Lpn(lpn), SimTime::ZERO).unwrap().0.fragments[0].version,
                1,
                "intact records must still recover"
            );
        }
        f.check_invariants().unwrap();
    }

    #[test]
    fn rebuild_drops_snapshot_entries_onto_corrupt_data() {
        let mut f = integrity_ftl();
        f.flash_mut()
            .arm_faults(FaultPlan::new(FaultConfig::power_cut(3, 1_000_000)));
        for lpn in 0..4 {
            put(&mut f, lpn, 1).unwrap();
        }
        f.flush(SimTime::ZERO).unwrap();
        f.persist_mapping_log();
        let pun = flash_pun(&f, 2);
        // Data rots after the snapshot was persisted; the OOB record is
        // pre-snapshot so replay will not re-add it either.
        assert!(f.flash_mut().sabotage_corrupt_unit(pun.page(1), 0, 1 << 13));

        f.flash_mut().cut_power();
        f.flash_mut().power_on();
        let stats = f.rebuild_after_power_loss().unwrap();
        assert!(stats.snapshot_entries_dropped >= 1);
        assert!(f.read(Lpn(2), SimTime::ZERO).is_err());
        assert_eq!(
            f.read(Lpn(1), SimTime::ZERO).unwrap().0.fragments[0].version,
            1
        );
        f.check_invariants().unwrap();
    }
}
