//! FTL configuration.

/// Tunables of the flash translation layer.
///
/// # Examples
///
/// ```
/// use checkin_ftl::FtlConfig;
///
/// let cfg = FtlConfig { unit_bytes: 512, ..FtlConfig::default() };
/// assert_eq!(cfg.units_per_page(4096), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtlConfig {
    /// Mapping unit size in bytes (the paper sweeps 512..4096).
    pub unit_bytes: u32,
    /// Run garbage collection when the free-block pool drops to this size.
    pub gc_threshold_blocks: u32,
    /// Background GC may run (in idle windows) when the pool drops to this
    /// softer threshold.
    pub gc_soft_threshold_blocks: u32,
    /// Number of parallel write points (active blocks being filled). More
    /// write points exploit more channel/die parallelism for programs.
    pub write_points: u32,
    /// Mapping-table cache capacity in entries; `None` models an
    /// all-in-DRAM table.
    pub map_cache_entries: Option<u64>,
    /// Capacity of the power-protected write buffer in mapping units.
    /// Buffered units page out oldest-first once this watermark is
    /// reached, so actively appended units coalesce before hitting flash.
    pub write_buffer_units: u32,
    /// Static wear-leveling threshold: when the spread between the most-
    /// and least-erased blocks exceeds this, an idle round migrates the
    /// coldest block so its low-wear cells rejoin the pool. `None`
    /// disables static wear leveling.
    pub wear_leveling_threshold: Option<u64>,
    /// Total attempts (first try + retries) the firmware makes for a
    /// flash operation that fails with a *transient* media error, with
    /// exponential backoff between attempts. Fatal errors (rule
    /// violations, grown bad blocks, power loss) are never retried.
    pub media_retry_limit: u32,
}

impl FtlConfig {
    /// Units per physical page for a given page size.
    ///
    /// # Panics
    ///
    /// Panics if `unit_bytes` does not divide `page_bytes`.
    pub fn units_per_page(&self, page_bytes: u32) -> u32 {
        assert!(
            self.unit_bytes > 0 && page_bytes.is_multiple_of(self.unit_bytes),
            "mapping unit {} must divide page size {}",
            self.unit_bytes,
            page_bytes
        );
        page_bytes / self.unit_bytes
    }

    /// Validates thresholds and sizes.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self, page_bytes: u32, total_blocks: u64) -> Result<(), String> {
        if self.unit_bytes == 0 || !page_bytes.is_multiple_of(self.unit_bytes) {
            return Err(format!(
                "unit_bytes {} must be a divisor of page size {}",
                self.unit_bytes, page_bytes
            ));
        }
        if self.gc_threshold_blocks < 2 {
            return Err("gc_threshold_blocks must be at least 2".into());
        }
        if self.gc_soft_threshold_blocks < self.gc_threshold_blocks {
            return Err("gc_soft_threshold_blocks must be >= gc_threshold_blocks".into());
        }
        if self.write_points == 0 {
            return Err("write_points must be non-zero".into());
        }
        if self.write_buffer_units < self.units_per_page(page_bytes) {
            return Err(format!(
                "write_buffer_units {} must hold at least one page ({} units)",
                self.write_buffer_units,
                self.units_per_page(page_bytes)
            ));
        }
        if self.media_retry_limit == 0 {
            return Err("media_retry_limit must be at least 1 (the first attempt)".into());
        }
        if self.write_points as u64 + self.gc_threshold_blocks as u64 >= total_blocks {
            return Err(format!(
                "write_points + gc_threshold ({} + {}) must be far below total blocks ({total_blocks})",
                self.write_points, self.gc_threshold_blocks
            ));
        }
        Ok(())
    }
}

impl Default for FtlConfig {
    /// Defaults mirror a conventional 4 KiB-mapped SSD with ~6% GC
    /// headroom and one write point per die of the paper's geometry.
    fn default() -> Self {
        FtlConfig {
            unit_bytes: 4096,
            gc_threshold_blocks: 8,
            gc_soft_threshold_blocks: 24,
            write_points: 8,
            map_cache_entries: None,
            write_buffer_units: 128,
            wear_leveling_threshold: Some(64),
            media_retry_limit: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_per_page_divides() {
        let cfg = FtlConfig {
            unit_bytes: 1024,
            ..FtlConfig::default()
        };
        assert_eq!(cfg.units_per_page(4096), 4);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_divisor_unit_panics() {
        let cfg = FtlConfig {
            unit_bytes: 3000,
            ..FtlConfig::default()
        };
        cfg.units_per_page(4096);
    }

    #[test]
    fn validate_flags_bad_fields() {
        let good = FtlConfig::default();
        assert!(good.validate(4096, 1024).is_ok());
        let bad = FtlConfig {
            gc_threshold_blocks: 1,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            write_points: 0,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            gc_soft_threshold_blocks: 2,
            gc_threshold_blocks: 8,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            write_points: 2000,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            media_retry_limit: 0,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
    }
}
