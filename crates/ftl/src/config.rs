//! FTL configuration.

use crate::policy::VictimPolicy;

/// Retry policy for one class of flash operation (read, program, or
/// erase). Transient media failures are retried with exponential backoff
/// until the attempt budget runs out; the exhaustion is counted per class
/// (`ftl.retry_exhausted_read` / `_program` / `_erase`).
///
/// # Examples
///
/// ```
/// use checkin_ftl::MediaRetryPolicy;
///
/// let p = MediaRetryPolicy::default();
/// assert_eq!(p.limit, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MediaRetryPolicy {
    /// Total attempts (first try + retries) before the transient error
    /// escapes. Fatal errors (rule violations, grown bad blocks, power
    /// loss) are never retried.
    pub limit: u32,
    /// Cap on the exponential-backoff shift: attempt `n` waits
    /// `op_time << min(n, cap)` before retrying.
    pub backoff_shift_cap: u32,
}

impl Default for MediaRetryPolicy {
    fn default() -> Self {
        MediaRetryPolicy {
            limit: 4,
            backoff_shift_cap: 16,
        }
    }
}

impl MediaRetryPolicy {
    /// A policy with the default backoff and the given attempt budget.
    pub fn with_limit(limit: u32) -> Self {
        MediaRetryPolicy {
            limit,
            ..MediaRetryPolicy::default()
        }
    }
}

/// Tunables of the flash translation layer.
///
/// # Examples
///
/// ```
/// use checkin_ftl::FtlConfig;
///
/// let cfg = FtlConfig { unit_bytes: 512, ..FtlConfig::default() };
/// assert_eq!(cfg.units_per_page(4096), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtlConfig {
    /// Mapping unit size in bytes (the paper sweeps 512..4096).
    pub unit_bytes: u32,
    /// Run garbage collection when the free-block pool drops to this size.
    pub gc_threshold_blocks: u32,
    /// GC victim-selection policy (see [`VictimPolicy`]).
    pub victim_policy: VictimPolicy,
    /// Route journal, data, and metadata/GC traffic to distinct write
    /// points (hot/cold stream separation) using the page classes the
    /// write path already tags. Off: all streams share one round-robin.
    pub stream_separation: bool,
    /// Blocks withheld from usable headroom on top of the GC thresholds
    /// (software over-provisioning). More OP triggers GC earlier, which
    /// trades visible capacity for lower per-round migration cost.
    pub overprovision_blocks: u32,
    /// Background GC may run (in idle windows) when the pool drops to this
    /// softer threshold.
    pub gc_soft_threshold_blocks: u32,
    /// Number of parallel write points (active blocks being filled). More
    /// write points exploit more channel/die parallelism for programs.
    pub write_points: u32,
    /// Mapping-table cache capacity in entries; `None` models an
    /// all-in-DRAM table.
    pub map_cache_entries: Option<u64>,
    /// Capacity of the power-protected write buffer in mapping units.
    /// Buffered units page out oldest-first once this watermark is
    /// reached, so actively appended units coalesce before hitting flash.
    pub write_buffer_units: u32,
    /// Static wear-leveling threshold: when the spread between the most-
    /// and least-erased blocks exceeds this, an idle round migrates the
    /// coldest block so its low-wear cells rejoin the pool. `None`
    /// disables static wear leveling.
    pub wear_leveling_threshold: Option<u64>,
    /// Retry policy for page reads that fail with a transient error.
    pub retry_read: MediaRetryPolicy,
    /// Retry policy for page programs that fail with a transient error.
    pub retry_program: MediaRetryPolicy,
    /// Retry policy for block erases that fail with a transient error.
    pub retry_erase: MediaRetryPolicy,
    /// Verify per-unit checksums on every flash read path (foreground
    /// reads, GC relocation, scrub, SPOR scan). Failed verification
    /// quarantines the unit and surfaces a typed
    /// [`IntegrityError`](crate::IntegrityError) instead of data. On by
    /// default; turning it off restores the trusting pre-integrity reads
    /// (harnesses use that to prove their verifiers catch escapes).
    pub verify_checksums: bool,
}

impl FtlConfig {
    /// Units per physical page for a given page size.
    ///
    /// # Panics
    ///
    /// Panics if `unit_bytes` does not divide `page_bytes`.
    pub fn units_per_page(&self, page_bytes: u32) -> u32 {
        assert!(
            self.unit_bytes > 0 && page_bytes.is_multiple_of(self.unit_bytes),
            "mapping unit {} must divide page size {}",
            self.unit_bytes,
            page_bytes
        );
        page_bytes / self.unit_bytes
    }

    /// Validates thresholds and sizes.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn validate(&self, page_bytes: u32, total_blocks: u64) -> Result<(), String> {
        if self.unit_bytes == 0 || !page_bytes.is_multiple_of(self.unit_bytes) {
            return Err(format!(
                "unit_bytes {} must be a divisor of page size {}",
                self.unit_bytes, page_bytes
            ));
        }
        if self.gc_threshold_blocks < 2 {
            return Err("gc_threshold_blocks must be at least 2".into());
        }
        if self.gc_soft_threshold_blocks < self.gc_threshold_blocks {
            return Err("gc_soft_threshold_blocks must be >= gc_threshold_blocks".into());
        }
        if self.write_points == 0 {
            return Err("write_points must be non-zero".into());
        }
        if self.write_buffer_units < self.units_per_page(page_bytes) {
            return Err(format!(
                "write_buffer_units {} must hold at least one page ({} units)",
                self.write_buffer_units,
                self.units_per_page(page_bytes)
            ));
        }
        for (class, policy) in [
            ("read", self.retry_read),
            ("program", self.retry_program),
            ("erase", self.retry_erase),
        ] {
            if policy.limit == 0 {
                return Err(format!(
                    "retry_{class} limit must be at least 1 (the first attempt)"
                ));
            }
        }
        if self.write_points as u64
            + self.gc_threshold_blocks as u64
            + self.overprovision_blocks as u64
            >= total_blocks
        {
            return Err(format!(
                "write_points + gc_threshold + overprovision ({} + {} + {}) must be far below total blocks ({total_blocks})",
                self.write_points, self.gc_threshold_blocks, self.overprovision_blocks
            ));
        }
        Ok(())
    }
}

impl Default for FtlConfig {
    /// Defaults mirror a conventional 4 KiB-mapped SSD with ~6% GC
    /// headroom and one write point per die of the paper's geometry.
    fn default() -> Self {
        FtlConfig {
            unit_bytes: 4096,
            gc_threshold_blocks: 8,
            victim_policy: VictimPolicy::Greedy,
            stream_separation: false,
            overprovision_blocks: 0,
            gc_soft_threshold_blocks: 24,
            write_points: 8,
            map_cache_entries: None,
            write_buffer_units: 128,
            wear_leveling_threshold: Some(64),
            retry_read: MediaRetryPolicy::default(),
            retry_program: MediaRetryPolicy::default(),
            retry_erase: MediaRetryPolicy::default(),
            verify_checksums: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_per_page_divides() {
        let cfg = FtlConfig {
            unit_bytes: 1024,
            ..FtlConfig::default()
        };
        assert_eq!(cfg.units_per_page(4096), 4);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn non_divisor_unit_panics() {
        let cfg = FtlConfig {
            unit_bytes: 3000,
            ..FtlConfig::default()
        };
        cfg.units_per_page(4096);
    }

    #[test]
    fn validate_flags_bad_fields() {
        let good = FtlConfig::default();
        assert!(good.validate(4096, 1024).is_ok());
        let bad = FtlConfig {
            gc_threshold_blocks: 1,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            write_points: 0,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            gc_soft_threshold_blocks: 2,
            gc_threshold_blocks: 8,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            write_points: 2000,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            retry_read: MediaRetryPolicy::with_limit(0),
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            retry_erase: MediaRetryPolicy::with_limit(0),
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        let bad = FtlConfig {
            overprovision_blocks: 2000,
            ..good
        };
        assert!(bad.validate(4096, 1024).is_err());
        assert!(good.verify_checksums, "verification is on by default");
        assert_eq!(good.victim_policy, VictimPolicy::Greedy);
        assert!(!good.stream_separation);
        assert_eq!(good.overprovision_blocks, 0);
    }
}
