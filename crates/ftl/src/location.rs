//! Logical and physical addressing at mapping-unit granularity.

use std::fmt;

/// A logical page number in **mapping units** (not 512-byte sectors).
///
/// The host's LBA space is divided into fixed-size mapping units; `Lpn(n)`
/// names the n-th unit. Conversion from byte addresses happens in the SSD
/// front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lpn(pub u64);

impl fmt::Display for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lpn:{}", self.0)
    }
}

/// A physical unit number: `ppn * units_per_page + unit_offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pun(pub u64);

impl Pun {
    /// The physical page containing this unit.
    pub fn page(self, units_per_page: u32) -> checkin_flash::Ppn {
        checkin_flash::Ppn(self.0 / units_per_page as u64)
    }

    /// Index of this unit within its page.
    pub fn offset(self, units_per_page: u32) -> u32 {
        (self.0 % units_per_page as u64) as u32
    }

    /// Builds a unit address from page and offset.
    pub fn compose(ppn: checkin_flash::Ppn, offset: u32, units_per_page: u32) -> Pun {
        debug_assert!(offset < units_per_page);
        Pun(ppn.0 * units_per_page as u64 + offset as u64)
    }
}

impl fmt::Display for Pun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pun:{}", self.0)
    }
}

/// Identifier of a unit parked in the device write buffer (power-protected
/// DRAM) that has not yet been programmed to flash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BufSlot(pub u64);

impl fmt::Display for BufSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf:{}", self.0)
    }
}

/// Where a logical unit's current copy lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// On flash, at a physical unit.
    Flash(Pun),
    /// In the device write buffer awaiting page-out.
    Buffer(BufSlot),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Flash(p) => write!(f, "{p}"),
            Location::Buffer(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use checkin_flash::Ppn;

    #[test]
    fn pun_page_and_offset() {
        let p = Pun(8 * 7 + 3);
        assert_eq!(p.page(8), Ppn(7));
        assert_eq!(p.offset(8), 3);
    }

    #[test]
    fn pun_compose_roundtrip() {
        for raw in 0..64u64 {
            let p = Pun(raw);
            let back = Pun::compose(p.page(8), p.offset(8), 8);
            assert_eq!(back, p);
        }
    }

    #[test]
    fn single_unit_per_page_degenerates() {
        let p = Pun(5);
        assert_eq!(p.page(1), Ppn(5));
        assert_eq!(p.offset(1), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lpn(3).to_string(), "lpn:3");
        assert_eq!(Location::Flash(Pun(1)).to_string(), "pun:1");
        assert_eq!(Location::Buffer(BufSlot(2)).to_string(), "buf:2");
    }
}
