//! GC victim-selection policies — the data-placement lab.
//!
//! The FTL originally shipped exactly one victim selector (greedy:
//! fewest valid units). Dayan & Bonnet's survey of page-mapping FTL
//! garbage collection catalogs the wider design space this module
//! makes sweepable:
//!
//! * **Greedy** reclaims the most space per erase *right now* and is
//!   optimal under uniform traffic, but under skew it repeatedly picks
//!   blocks whose remaining valid units are about to die anyway.
//! * **Cost-benefit** (Kawaguchi et al.'s `age * (1-u) / 2u` score)
//!   weighs reclaimable space against migration cost and block age, so
//!   cold blocks get collected once their utilization stops falling.
//! * **Windowed greedy** restricts greedy to the oldest closed blocks,
//!   a FIFO/greedy hybrid that bounds the victim scan and gives
//!   still-dying young blocks time to shed their remaining valid units.
//!
//! All scoring is integer arithmetic on the FTL's deterministic write
//! sequence (no wall-clock, no floats), so every policy stays
//! bit-reproducible under the A2 determinism rule.

use checkin_flash::BlockId;

/// One closed block offered to the victim selector.
#[derive(Debug, Clone, Copy)]
pub struct VictimCandidate {
    /// The block under consideration.
    pub block: BlockId,
    /// Units still referenced by the mapping table (migration cost).
    pub valid_units: u32,
    /// Total units the block holds (`units_per_page * pages_per_block`).
    pub capacity: u32,
    /// Lifetime erase count (wear tie-breaker).
    pub erase_count: u64,
    /// Write-sequence distance since the block last received data —
    /// the deterministic stand-in for wall-clock age.
    pub age: u64,
    /// Monotone close order: lower rank closed earlier.
    pub closed_rank: u64,
}

impl VictimCandidate {
    /// Invalid (reclaimable) units.
    fn invalid(&self) -> u64 {
        u64::from(self.capacity.saturating_sub(self.valid_units))
    }

    /// Greedy ordering key: fewest valid units first, then least worn,
    /// then lowest block id (total order => deterministic).
    fn greedy_key(&self) -> (u32, u64, u64) {
        (self.valid_units, self.erase_count, self.block.0)
    }

    /// True when `self` scores strictly higher than `other` under the
    /// cost-benefit formula `age * (1 - u) / 2u` (u = utilization).
    /// With `u = valid/capacity` the score orders identically to
    /// `age * invalid / valid`, compared here by u128 cross-
    /// multiplication so no division or floats are involved. A block
    /// with zero valid units is free to reclaim: it beats everything.
    fn cost_benefit_beats(&self, other: &VictimCandidate) -> bool {
        match (self.valid_units, other.valid_units) {
            (0, 0) => self.greedy_key() < other.greedy_key(),
            (0, _) => true,
            (_, 0) => false,
            (sv, ov) => {
                let lhs = u128::from(self.age) * u128::from(self.invalid()) * u128::from(ov);
                let rhs = u128::from(other.age) * u128::from(other.invalid()) * u128::from(sv);
                match lhs.cmp(&rhs) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Less => false,
                    std::cmp::Ordering::Equal => self.greedy_key() < other.greedy_key(),
                }
            }
        }
    }
}

/// Which victim-selection policy garbage collection runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// Fewest valid units wins (ties: erase count, block id).
    #[default]
    Greedy,
    /// Maximize `age * (1-u) / 2u` — reclaim efficiency weighted by how
    /// long the block has stopped absorbing writes.
    CostBenefit,
    /// Greedy restricted to the `window` oldest closed blocks (by close
    /// order). `window = 0` behaves like plain greedy.
    WindowedGreedy {
        /// How many of the oldest closed blocks the greedy scan sees.
        window: u32,
    },
}

impl VictimPolicy {
    /// The windowed-greedy variant with its standard window.
    pub const WINDOWED_DEFAULT: VictimPolicy = VictimPolicy::WindowedGreedy { window: 8 };

    /// Every policy the lab sweeps, in display order.
    pub const ALL: [VictimPolicy; 3] = [
        VictimPolicy::Greedy,
        VictimPolicy::CostBenefit,
        VictimPolicy::WINDOWED_DEFAULT,
    ];

    /// Stable lowercase label (CLI values, bench matrix rows).
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Greedy => "greedy",
            VictimPolicy::CostBenefit => "cost-benefit",
            VictimPolicy::WindowedGreedy { .. } => "windowed-greedy",
        }
    }

    /// Parses a CLI value: `greedy`, `cost-benefit`, `windowed-greedy`,
    /// or `windowed-greedy:<window>`.
    ///
    /// # Errors
    ///
    /// Returns a description listing the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "greedy" => Ok(VictimPolicy::Greedy),
            "cost-benefit" => Ok(VictimPolicy::CostBenefit),
            "windowed-greedy" => Ok(VictimPolicy::WINDOWED_DEFAULT),
            other => {
                if let Some(w) = other.strip_prefix("windowed-greedy:") {
                    let window: u32 = w
                        .parse()
                        .map_err(|_| format!("bad windowed-greedy window '{w}'"))?;
                    return Ok(VictimPolicy::WindowedGreedy { window });
                }
                Err(format!(
                    "unknown GC policy '{other}' (expected greedy, cost-benefit, \
                     windowed-greedy, or windowed-greedy:<window>)"
                ))
            }
        }
    }

    /// Selects a victim among `candidates`. Returns `None` when the
    /// iterator is empty. Deterministic: the outcome depends only on the
    /// candidate fields, never on iteration side effects.
    pub fn select(self, candidates: impl Iterator<Item = VictimCandidate>) -> Option<BlockId> {
        match self {
            VictimPolicy::Greedy => candidates
                .min_by_key(VictimCandidate::greedy_key)
                .map(|c| c.block),
            VictimPolicy::CostBenefit => {
                let mut best: Option<VictimCandidate> = None;
                for c in candidates {
                    best = match best {
                        None => Some(c),
                        Some(b) if c.cost_benefit_beats(&b) => Some(c),
                        keep => keep,
                    };
                }
                best.map(|c| c.block)
            }
            VictimPolicy::WindowedGreedy { window } => {
                if window == 0 {
                    return VictimPolicy::Greedy.select(candidates);
                }
                // Keep the `window` oldest closed blocks (lowest close
                // rank) and run greedy over them. The candidate set is
                // small (closed blocks of one device), so a sort is fine.
                let mut all: Vec<VictimCandidate> = candidates.collect();
                all.sort_unstable_by_key(|c| (c.closed_rank, c.block.0));
                all.truncate(window as usize);
                all.into_iter()
                    .min_by_key(VictimCandidate::greedy_key)
                    .map(|c| c.block)
            }
        }
    }
}

impl std::fmt::Display for VictimPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VictimPolicy::WindowedGreedy { window } => write!(f, "windowed-greedy:{window}"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(block: u64, valid: u32, age: u64, closed_rank: u64) -> VictimCandidate {
        VictimCandidate {
            block: BlockId(block),
            valid_units: valid,
            capacity: 64,
            erase_count: 0,
            age,
            closed_rank,
        }
    }

    #[test]
    fn greedy_picks_fewest_valid() {
        let got = VictimPolicy::Greedy.select([cand(0, 5, 1, 0), cand(1, 2, 1, 1)].into_iter());
        assert_eq!(got, Some(BlockId(1)));
    }

    #[test]
    fn greedy_ties_break_on_wear_then_id() {
        let mut a = cand(3, 4, 1, 0);
        a.erase_count = 9;
        let b = cand(5, 4, 1, 1);
        assert_eq!(
            VictimPolicy::Greedy.select([a, b].into_iter()),
            Some(BlockId(5)),
            "equal valid counts: less-worn block wins"
        );
    }

    #[test]
    fn cost_benefit_prefers_old_sparse_blocks() {
        // Block 0: slightly fewer valid units but brand new. Block 1:
        // a bit fuller but long cold — cost-benefit favors it while
        // greedy would not.
        let young = cand(0, 20, 1, 0);
        let old = cand(1, 24, 1000, 1);
        assert_eq!(
            VictimPolicy::CostBenefit.select([young, old].into_iter()),
            Some(BlockId(1))
        );
        assert_eq!(
            VictimPolicy::Greedy.select([young, old].into_iter()),
            Some(BlockId(0))
        );
    }

    #[test]
    fn cost_benefit_free_block_beats_everything() {
        let free = cand(2, 0, 1, 0);
        let old = cand(1, 1, u64::MAX, 1);
        assert_eq!(
            VictimPolicy::CostBenefit.select([old, free].into_iter()),
            Some(BlockId(2))
        );
    }

    #[test]
    fn windowed_greedy_only_sees_oldest_window() {
        // Block 9 is emptiest but closed last; a window of 2 only sees
        // blocks 4 and 7 (oldest close ranks) and picks the emptier.
        let cands = [cand(9, 1, 1, 30), cand(4, 10, 1, 10), cand(7, 5, 1, 20)];
        assert_eq!(
            VictimPolicy::WindowedGreedy { window: 2 }.select(cands.into_iter()),
            Some(BlockId(7))
        );
        assert_eq!(
            VictimPolicy::WindowedGreedy { window: 8 }.select(cands.into_iter()),
            Some(BlockId(9)),
            "wide window degenerates to greedy"
        );
    }

    #[test]
    fn parse_round_trips() {
        for p in VictimPolicy::ALL {
            assert_eq!(VictimPolicy::parse(&p.to_string()), Ok(p));
        }
        assert_eq!(
            VictimPolicy::parse("windowed-greedy:4"),
            Ok(VictimPolicy::WindowedGreedy { window: 4 })
        );
        assert!(VictimPolicy::parse("fifo").is_err());
        assert!(VictimPolicy::parse("windowed-greedy:x").is_err());
    }
}
