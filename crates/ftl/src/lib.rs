//! Flash translation layer for the Check-In reproduction.
//!
//! The FTL sits between the SSD front end and the NAND array
//! ([`checkin_flash::FlashArray`]). Three properties make it suitable for
//! reproducing the paper:
//!
//! 1. **Sub-page mapping** ([`FtlConfig::unit_bytes`]): the logical space
//!    is mapped at 512 B–4 KiB granularity, and sub-units are packed into
//!    whole-page programs through a power-protected write buffer — exactly
//!    the mapping substrate Check-In's sector-aligned journaling relies on.
//! 2. **Shared physical units** ([`Ftl::remap`]): several LPNs may alias
//!    one flash copy, so a checkpoint can *remap* journal logs into the
//!    data area instead of rewriting them. Garbage collection preserves
//!    the sharing when it migrates such a unit.
//! 3. **Full accounting**: host vs flash bytes (write amplification),
//!    read-modify-write operations, invalid-unit generation, and GC
//!    invocations — the quantities behind Figures 8 and 13.
//!
//! # Examples
//!
//! Checkpoint-by-remap in miniature:
//!
//! ```
//! use checkin_flash::{FlashArray, FlashGeometry, FlashTiming, OobKind, UnitPayload};
//! use checkin_ftl::{Ftl, FtlConfig, Lpn, UnitWrite};
//! use checkin_sim::SimTime;
//!
//! let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
//! let mut ftl = Ftl::new(flash, FtlConfig { unit_bytes: 512, write_points: 2, ..FtlConfig::default() }).unwrap();
//!
//! // Journaling wrote key 9's new version at journal LPN 1000...
//! ftl.write(
//!     UnitWrite { lpn: Lpn(1000), payload: UnitPayload::single(9, 2, 512), whole_unit: true },
//!     OobKind::Journal,
//!     SimTime::ZERO,
//! )?;
//! ftl.flush(SimTime::ZERO)?;
//! // ...checkpointing remaps it to its data-area home, LPN 40 — no copy.
//! ftl.remap(Lpn(40), Lpn(1000))?;
//! ftl.deallocate(Lpn(1000));
//! assert_eq!(ftl.read(Lpn(40), SimTime::ZERO)?.0.fragments[0].version, 2);
//! # Ok::<(), checkin_ftl::FtlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Recovery crate: panics are forbidden outside tests (checkin-analyze A1
// enforces the recovery paths lexically; clippy enforces the whole crate).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod config;
mod error;
mod ftl;
mod location;
mod map_cache;
mod mapping;
mod policy;

pub use config::{FtlConfig, MediaRetryPolicy};
pub use error::{FtlError, IntegrityError, RecoveryError};
pub use ftl::{Ftl, GcTrigger, RebuildStats, ScrubReport, UnitWrite};
pub use location::{BufSlot, Location, Lpn, Pun};
pub use map_cache::MapCacheModel;
pub use mapping::{MappingTable, Unlink};
pub use policy::{VictimCandidate, VictimPolicy};
