//! `checkin` — command-line experiment runner for the Check-In
//! reproduction. See `checkin help` for usage.

use std::io::Write;

use checkin_cli::{parse, Command, RunArgs, SweepAxis, USAGE};
use checkin_core::{KvSystem, RunReport, Strategy, SystemConfig};
use checkin_sim::Tracer;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = argv.iter().map(String::as_str).collect();
    match parse(&refs) {
        Ok(Command::Help) => print!("{USAGE}"),
        Ok(Command::Run(args)) => run_one(&args),
        Ok(Command::Compare(args)) => compare(&args),
        Ok(Command::Sweep { axis, values, base }) => sweep(axis, &values, &base),
        Ok(Command::Trace { args, events }) => trace(&args, events),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Runs one configuration with the ring-buffered tracer installed across
/// every layer, then streams the captured events as JSON lines on stdout
/// (summary and report go to stderr so the event stream stays parseable).
fn trace(args: &RunArgs, events: usize) {
    let config = args.to_config();
    let mut system = KvSystem::new(config).unwrap_or_else(|e| {
        eprintln!("error: invalid configuration: {e}");
        std::process::exit(2);
    });
    let tracer = Tracer::ring_buffered(events);
    system.set_tracer(tracer.clone());
    let report = system.run().unwrap_or_else(|e| {
        eprintln!("error: run failed: {e}");
        std::process::exit(1);
    });

    let captured = tracer.drain();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for event in &captured {
        if writeln!(out, "{}", event.to_json_line()).is_err() {
            // Downstream closed the pipe (e.g. `| head`): stop quietly.
            return;
        }
    }
    let _ = out.flush();
    eprintln!(
        "trace: {} events captured ({} emitted, {} dropped by the {}-event ring)",
        captured.len(),
        tracer.emitted(),
        tracer.dropped(),
        events
    );
    eprintln!("{report}");
}

fn execute(args: &RunArgs) -> RunReport {
    let config = args.to_config();
    let system = KvSystem::new(config).unwrap_or_else(|e| {
        eprintln!("error: invalid configuration: {e}");
        std::process::exit(2);
    });
    let mut system = system;
    system.run().unwrap_or_else(|e| {
        eprintln!("error: run failed: {e}");
        std::process::exit(1);
    })
}

fn run_one(args: &RunArgs) {
    let report = execute(args);
    println!("{report}");
    println!(
        "  redundancy    cp units {} ({} KiB), remap {}, copy {}",
        report.redundant_write_units,
        report.redundant_write_bytes / 1024,
        report.remapped_entries,
        report.copied_entries
    );
    println!(
        "  resilience    transient faults {} (retries {}), grown bad {}, blocks retired {}",
        report.flash.transient_faults,
        report.flash.media_retries,
        report.flash.grown_bad_blocks,
        report.flash.blocks_retired
    );
}

fn table_row(r: &RunReport) -> String {
    format!(
        "{:<10} {:>11.0} {:>11} {:>11} {:>9} {:>9} {:>8}",
        r.strategy.label(),
        r.throughput,
        format!("{}", r.latency.mean),
        format!("{}", r.latency.p999),
        r.redundant_write_bytes / 1024,
        r.flash.gc_invocations,
        r.checkpoints,
    )
}

/// Runs a batch of configurations across worker threads (`--jobs`,
/// default one per core). Report order matches `configs`; results are
/// identical to a serial loop, just faster on the wall clock.
fn execute_batch(configs: Vec<SystemConfig>, jobs: Option<usize>) -> Vec<RunReport> {
    let jobs = jobs.unwrap_or_else(checkin_core::default_jobs);
    checkin_core::run_configs(&configs, jobs)
        .into_iter()
        .map(|r| {
            r.unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            })
        })
        .collect()
}

fn compare(args: &RunArgs) {
    if args.csv {
        println!("{}", RunReport::csv_header());
    } else {
        println!(
            "{:<10} {:>11} {:>11} {:>11} {:>9} {:>9} {:>8}",
            "config", "queries/s", "mean", "p99.9", "cp KiB", "gc", "cps"
        );
    }
    let configs = Strategy::all()
        .into_iter()
        .map(|strategy| {
            let mut a = args.clone();
            a.strategy = strategy;
            a.to_config()
        })
        .collect();
    for r in execute_batch(configs, args.jobs) {
        if args.csv {
            println!("{}", r.to_csv_row());
        } else {
            println!("{}", table_row(&r));
        }
    }
}

fn sweep(axis: SweepAxis, values: &[u64], base: &RunArgs) {
    if base.csv {
        println!("value,{}", RunReport::csv_header());
    } else {
        println!(
            "{:<12} {:>11} {:>11} {:>11} {:>9} {:>9} {:>8}",
            "value", "queries/s", "mean", "p99.9", "cp KiB", "gc", "cps"
        );
    }
    let configs = values
        .iter()
        .map(|&v| {
            let mut a = base.clone();
            match axis {
                SweepAxis::Threads => a.threads = v as u32,
                SweepAxis::IntervalMs => a.interval_ms = v,
                SweepAxis::UnitBytes => a.unit_bytes = Some(v as u32),
            }
            a.to_config()
        })
        .collect();
    for (&v, r) in values.iter().zip(execute_batch(configs, base.jobs)) {
        if base.csv {
            println!("{v},{}", r.to_csv_row());
        } else {
            println!(
                "{:<12} {}",
                v,
                table_row(&r)
                    .split_once(' ')
                    .map(|(_, rest)| rest)
                    .unwrap_or("")
            );
        }
    }
}
