//! Argument parsing and experiment assembly for the `checkin` CLI.
//!
//! The binary drives the same [`checkin_core::KvSystem`] the benches use,
//! from the command line:
//!
//! ```text
//! checkin run --strategy check-in --queries 50000 --threads 64
//! checkin compare --mix WO --pattern uniform
//! checkin sweep threads --values 4,16,64,128 --strategy baseline
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use checkin_core::{Strategy, SystemConfig, VictimPolicy};
use checkin_sim::SimDuration;
use checkin_workload::{AccessPattern, OpMix, RecordSizes};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one configuration and print its report.
    Run(RunArgs),
    /// Run all five strategies on the same workload and print a table.
    Compare(RunArgs),
    /// Sweep one parameter for one strategy.
    Sweep {
        /// Which parameter to sweep.
        axis: SweepAxis,
        /// Values to sweep over.
        values: Vec<u64>,
        /// Base configuration.
        base: RunArgs,
    },
    /// Run one configuration with cross-layer tracing enabled and emit
    /// the captured events as JSON lines on stdout.
    Trace {
        /// Run configuration.
        args: RunArgs,
        /// Ring capacity: at most this many most-recent events are kept.
        events: usize,
    },
    /// Print usage.
    Help,
}

/// Sweepable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    /// Client thread count.
    Threads,
    /// Checkpoint interval in milliseconds.
    IntervalMs,
    /// FTL mapping unit in bytes.
    UnitBytes,
}

/// Common knobs accepted by every subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Checkpointing strategy.
    pub strategy: Strategy,
    /// Total queries.
    pub queries: u64,
    /// Client threads.
    pub threads: u32,
    /// Loaded records.
    pub record_count: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Key skew.
    pub pattern: AccessPattern,
    /// Checkpoint interval (ms).
    pub interval_ms: u64,
    /// Mapping-unit override in bytes.
    pub unit_bytes: Option<u32>,
    /// Workload seed.
    pub seed: u64,
    /// Queries admitted per client event-queue hop (1 = historical
    /// one-op-per-event loop).
    pub admission_batch: u32,
    /// GC victim-selection policy override (`None` keeps the strategy
    /// default, which is the gclab sweep winner).
    pub gc_policy: Option<VictimPolicy>,
    /// Use the small GC-pressured device instead of the default 1.5 GiB.
    pub gc_pressure: bool,
    /// Disable checksum verification on reads (integrity checks are on
    /// by default; this exists to measure their overhead).
    pub no_checksums: bool,
    /// Emit machine-readable CSV instead of tables.
    pub csv: bool,
    /// Worker threads for `compare`/`sweep` batches (`None` = one per
    /// core). Results are deterministic regardless of the value.
    pub jobs: Option<usize>,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            strategy: Strategy::CheckIn,
            queries: 30_000,
            threads: 32,
            record_count: 6_000,
            mix: OpMix::A,
            pattern: AccessPattern::Zipfian,
            interval_ms: 250,
            unit_bytes: None,
            seed: 0x5EED,
            admission_batch: 1,
            gc_policy: None,
            gc_pressure: false,
            no_checksums: false,
            csv: false,
            jobs: None,
        }
    }
}

impl RunArgs {
    /// Materialises a [`SystemConfig`] from the parsed arguments.
    pub fn to_config(&self) -> SystemConfig {
        let mut c = SystemConfig::for_strategy(self.strategy);
        c.total_queries = self.queries;
        c.threads = self.threads;
        c.workload.record_count = self.record_count;
        c.workload.mix = self.mix;
        c.workload.pattern = self.pattern;
        c.workload.sizes = RecordSizes::paper_default();
        c.workload.seed = self.seed;
        c.checkpoint_interval = SimDuration::from_millis(self.interval_ms);
        c.unit_bytes = self.unit_bytes;
        c.admission_batch = self.admission_batch;
        if let Some(policy) = self.gc_policy {
            c.gc_policy = policy;
        }
        c.verify_checksums = !self.no_checksums;
        if self.gc_pressure {
            c.geometry = checkin_flash::FlashGeometry {
                channels: 2,
                dies_per_channel: 2,
                planes_per_die: 1,
                blocks_per_plane: 24,
                pages_per_block: 128,
                page_bytes: 4096,
            };
            c.journal_trigger_sectors = 8_192;
            c.gc_threshold_blocks = 6;
            c.gc_soft_threshold_blocks = 20;
        }
        c
    }
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_strategy(s: &str) -> Result<Strategy, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "baseline" => Ok(Strategy::Baseline),
        "isc-a" | "isca" => Ok(Strategy::IscA),
        "isc-b" | "iscb" => Ok(Strategy::IscB),
        "isc-c" | "iscc" => Ok(Strategy::IscC),
        "check-in" | "checkin" => Ok(Strategy::CheckIn),
        other => Err(ParseError(format!(
            "unknown strategy '{other}' (expected baseline|isc-a|isc-b|isc-c|check-in)"
        ))),
    }
}

fn parse_mix(s: &str) -> Result<OpMix, ParseError> {
    match s.to_ascii_uppercase().as_str() {
        "A" => Ok(OpMix::A),
        "B" => Ok(OpMix::B),
        "C" => Ok(OpMix::C),
        "F" => Ok(OpMix::F),
        "WO" => Ok(OpMix::WRITE_ONLY),
        other => Err(ParseError(format!(
            "unknown mix '{other}' (expected A|B|C|F|WO)"
        ))),
    }
}

fn parse_pattern(s: &str) -> Result<AccessPattern, ParseError> {
    match s.to_ascii_lowercase().as_str() {
        "uniform" => Ok(AccessPattern::Uniform),
        "zipfian" | "zipf" => Ok(AccessPattern::Zipfian),
        other => Err(ParseError(format!(
            "unknown pattern '{other}' (expected uniform|zipfian)"
        ))),
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{flag} expects a number, got '{s}'")))
}

fn fill_args(args: &mut RunArgs, flag: &str, value: &str) -> Result<(), ParseError> {
    match flag {
        "--strategy" => args.strategy = parse_strategy(value)?,
        "--queries" => args.queries = parse_num(flag, value)?,
        "--threads" => args.threads = parse_num(flag, value)?,
        "--record-count" => args.record_count = parse_num(flag, value)?,
        "--mix" => args.mix = parse_mix(value)?,
        "--pattern" => args.pattern = parse_pattern(value)?,
        "--interval-ms" => args.interval_ms = parse_num(flag, value)?,
        "--unit" => args.unit_bytes = Some(parse_num(flag, value)?),
        "--seed" => args.seed = parse_num(flag, value)?,
        "--admission-batch" => {
            args.admission_batch = parse_num(flag, value)?;
            if args.admission_batch == 0 {
                return Err(ParseError("--admission-batch must be at least 1".into()));
            }
        }
        "--gc-policy" => args.gc_policy = Some(VictimPolicy::parse(value).map_err(ParseError)?),
        "--jobs" => args.jobs = Some(parse_num(flag, value)?),
        other => return Err(ParseError(format!("unknown flag '{other}'"))),
    }
    Ok(())
}

fn parse_run_args<'a>(tokens: impl Iterator<Item = &'a str>) -> Result<RunArgs, ParseError> {
    let mut args = RunArgs::default();
    let mut tokens = tokens.peekable();
    while let Some(flag) = tokens.next() {
        if flag == "--gc-pressure" {
            args.gc_pressure = true;
            continue;
        }
        if flag == "--csv" {
            args.csv = true;
            continue;
        }
        if flag == "--no-checksums" {
            args.no_checksums = true;
            continue;
        }
        let value = tokens
            .next()
            .ok_or_else(|| ParseError(format!("{flag} expects a value")))?;
        fill_args(&mut args, flag, value)?;
    }
    Ok(args)
}

/// Parses a full command line (without the program name).
///
/// # Errors
///
/// Returns a user-facing message for unknown subcommands, flags or
/// malformed values.
///
/// # Examples
///
/// ```
/// use checkin_cli::{parse, Command};
///
/// let cmd = parse(&["run", "--strategy", "baseline", "--queries", "1000"]).unwrap();
/// match cmd {
///     Command::Run(args) => assert_eq!(args.queries, 1000),
///     other => panic!("{other:?}"),
/// }
/// ```
pub fn parse(argv: &[&str]) -> Result<Command, ParseError> {
    let Some((&sub, rest)) = argv.split_first() else {
        return Ok(Command::Help);
    };
    match sub {
        "run" => Ok(Command::Run(parse_run_args(rest.iter().copied())?)),
        "compare" => Ok(Command::Compare(parse_run_args(rest.iter().copied())?)),
        "sweep" => {
            let Some((&axis, rest)) = rest.split_first() else {
                return Err(ParseError(
                    "sweep expects an axis: threads|interval-ms|unit".into(),
                ));
            };
            let axis = match axis {
                "threads" => SweepAxis::Threads,
                "interval-ms" => SweepAxis::IntervalMs,
                "unit" => SweepAxis::UnitBytes,
                other => {
                    return Err(ParseError(format!(
                        "unknown sweep axis '{other}' (threads|interval-ms|unit)"
                    )))
                }
            };
            // Extract --values, pass the rest to the common parser.
            let mut values = Vec::new();
            let mut passthrough = Vec::new();
            let mut it = rest.iter().copied().peekable();
            while let Some(tok) = it.next() {
                if tok == "--values" {
                    let list = it
                        .next()
                        .ok_or_else(|| ParseError("--values expects a list".into()))?;
                    for v in list.split(',') {
                        values.push(parse_num::<u64>("--values", v.trim())?);
                    }
                } else {
                    passthrough.push(tok);
                }
            }
            if values.is_empty() {
                return Err(ParseError(
                    "sweep requires --values v1,v2,... (comma separated)".into(),
                ));
            }
            let base = parse_run_args(passthrough.into_iter())?;
            Ok(Command::Sweep { axis, values, base })
        }
        "trace" => {
            // Extract --events, pass the rest to the common parser.
            let mut events = 100_000usize;
            let mut passthrough = Vec::new();
            let mut it = rest.iter().copied();
            while let Some(tok) = it.next() {
                if tok == "--events" {
                    let v = it
                        .next()
                        .ok_or_else(|| ParseError("--events expects a count".into()))?;
                    events = parse_num("--events", v)?;
                    if events == 0 {
                        return Err(ParseError("--events must be at least 1".into()));
                    }
                } else {
                    passthrough.push(tok);
                }
            }
            let args = parse_run_args(passthrough.into_iter())?;
            Ok(Command::Trace { args, events })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!(
            "unknown command '{other}' (run|compare|sweep|trace|help)"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
checkin — Check-In (ISCA 2020) experiment runner

USAGE:
  checkin run      [flags]             run one configuration
  checkin compare  [flags]             all five strategies, same workload
  checkin sweep <axis> --values a,b,c [flags]
                                       sweep threads | interval-ms | unit
  checkin trace    [flags]             run with cross-layer tracing; emits
                                       one JSON event per line on stdout
                                       (--events N caps the ring, def. 100000)

FLAGS (all optional):
  --strategy  baseline|isc-a|isc-b|isc-c|check-in   (default check-in)
  --queries   N          total queries              (default 30000)
  --threads   N          client threads             (default 32)
  --record-count N       loaded records             (default 6000)
  --mix       A|B|C|F|WO operation mix              (default A)
  --pattern   uniform|zipfian                       (default zipfian)
  --interval-ms N        checkpoint interval        (default 250)
  --unit      512|1024|2048|4096  mapping-unit override
  --seed      N          workload seed              (default 0x5EED)
  --admission-batch N    queries per client event-queue hop (default 1;
                         larger values amortize event churn without
                         moving checkpoint boundaries)
  --gc-policy greedy|cost-benefit|windowed-greedy[:N]
                         GC victim-selection policy (default: the
                         strategy default, see `checkin compare`)
  --jobs      N          worker threads for compare/sweep batches
                         (default: one per core; results are identical
                         for any value, including --jobs 1)
  --gc-pressure          use a small device so GC runs constantly
  --no-checksums         skip checksum verification on reads (on by
                         default; flag exists to measure the overhead)
  --csv                  machine-readable CSV output (compare/sweep)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse(&[
            "run",
            "--strategy",
            "isc-b",
            "--queries",
            "1234",
            "--threads",
            "8",
            "--mix",
            "WO",
            "--pattern",
            "uniform",
            "--unit",
            "1024",
            "--gc-pressure",
        ])
        .unwrap();
        let Command::Run(a) = cmd else { panic!() };
        assert_eq!(a.strategy, Strategy::IscB);
        assert_eq!(a.queries, 1234);
        assert_eq!(a.threads, 8);
        assert_eq!(a.mix, OpMix::WRITE_ONLY);
        assert_eq!(a.pattern, AccessPattern::Uniform);
        assert_eq!(a.unit_bytes, Some(1024));
        assert!(a.gc_pressure);
        assert!(!a.csv);
        let Command::Run(a) = parse(&["run", "--csv"]).unwrap() else {
            panic!()
        };
        assert!(a.csv);
    }

    #[test]
    fn parses_sweep() {
        let cmd = parse(&[
            "sweep",
            "threads",
            "--values",
            "4,16,64",
            "--strategy",
            "baseline",
        ])
        .unwrap();
        let Command::Sweep { axis, values, base } = cmd else {
            panic!()
        };
        assert_eq!(axis, SweepAxis::Threads);
        assert_eq!(values, vec![4, 16, 64]);
        assert_eq!(base.strategy, Strategy::Baseline);
    }

    #[test]
    fn rejects_unknown_bits() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "--bogus", "1"]).is_err());
        assert!(parse(&["run", "--queries"]).is_err());
        assert!(parse(&["run", "--queries", "abc"]).is_err());
        assert!(parse(&["sweep", "sideways", "--values", "1"]).is_err());
        assert!(parse(&["sweep", "threads"]).is_err());
    }

    #[test]
    fn parses_no_checksums() {
        let Command::Run(a) = parse(&["run", "--no-checksums"]).unwrap() else {
            panic!()
        };
        assert!(a.no_checksums);
        assert!(!a.to_config().verify_checksums);
        // Verification is on by default.
        assert!(!RunArgs::default().no_checksums);
        assert!(RunArgs::default().to_config().verify_checksums);
    }

    #[test]
    fn parses_jobs() {
        let Command::Compare(a) = parse(&["compare", "--jobs", "3"]).unwrap() else {
            panic!()
        };
        assert_eq!(a.jobs, Some(3));
        assert_eq!(RunArgs::default().jobs, None);
        assert!(parse(&["compare", "--jobs", "x"]).is_err());
    }

    #[test]
    fn parses_admission_batch() {
        let Command::Run(a) = parse(&["run", "--admission-batch", "16"]).unwrap() else {
            panic!()
        };
        assert_eq!(a.admission_batch, 16);
        assert_eq!(a.to_config().admission_batch, 16);
        assert_eq!(RunArgs::default().admission_batch, 1);
        assert!(parse(&["run", "--admission-batch", "0"]).is_err());
        assert!(parse(&["run", "--admission-batch", "x"]).is_err());
    }

    #[test]
    fn parses_gc_policy() {
        let Command::Run(a) = parse(&["run", "--gc-policy", "cost-benefit"]).unwrap() else {
            panic!()
        };
        assert_eq!(a.gc_policy, Some(VictimPolicy::CostBenefit));
        assert_eq!(a.to_config().gc_policy, VictimPolicy::CostBenefit);
        let Command::Run(a) = parse(&["run", "--gc-policy", "windowed-greedy:4"]).unwrap() else {
            panic!()
        };
        assert_eq!(
            a.gc_policy,
            Some(VictimPolicy::WindowedGreedy { window: 4 })
        );
        // No flag: the strategy default flows through untouched.
        assert_eq!(RunArgs::default().gc_policy, None);
        assert_eq!(
            RunArgs::default().to_config().gc_policy,
            SystemConfig::for_strategy(Strategy::CheckIn).gc_policy
        );
        assert!(parse(&["run", "--gc-policy", "newest-first"]).is_err());
        assert!(parse(&["run", "--gc-policy", "windowed-greedy:x"]).is_err());
    }

    #[test]
    fn parses_trace() {
        let Command::Trace { args, events } = parse(&[
            "trace",
            "--events",
            "500",
            "--strategy",
            "baseline",
            "--queries",
            "100",
        ])
        .unwrap() else {
            panic!()
        };
        assert_eq!(events, 500);
        assert_eq!(args.strategy, Strategy::Baseline);
        assert_eq!(args.queries, 100);

        // Default capacity, flags still honoured.
        let Command::Trace { events, .. } = parse(&["trace"]).unwrap() else {
            panic!()
        };
        assert_eq!(events, 100_000);
        assert!(parse(&["trace", "--events"]).is_err());
        assert!(parse(&["trace", "--events", "0"]).is_err());
        assert!(parse(&["trace", "--events", "x"]).is_err());
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
    }

    #[test]
    fn strategy_aliases() {
        for (s, want) in [
            ("baseline", Strategy::Baseline),
            ("ISC-A", Strategy::IscA),
            ("iscb", Strategy::IscB),
            ("isc-c", Strategy::IscC),
            ("CheckIn", Strategy::CheckIn),
            ("check-in", Strategy::CheckIn),
        ] {
            assert_eq!(parse_strategy(s).unwrap(), want, "{s}");
        }
    }

    #[test]
    fn to_config_roundtrip() {
        let a = RunArgs {
            queries: 777,
            unit_bytes: Some(2048),
            interval_ms: 125,
            ..RunArgs::default()
        };
        let c = a.to_config();
        assert_eq!(c.total_queries, 777);
        assert_eq!(c.effective_unit_bytes(), 2048);
        assert_eq!(c.checkpoint_interval, SimDuration::from_millis(125));
        c.validate().unwrap();
    }

    #[test]
    fn gc_pressure_shrinks_device() {
        let a = RunArgs {
            gc_pressure: true,
            record_count: 3_000,
            ..RunArgs::default()
        };
        let c = a.to_config();
        assert!(c.geometry.capacity_bytes() < 100 << 20);
        c.validate().unwrap();
    }
}
