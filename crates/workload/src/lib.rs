//! YCSB-style workload generation for the Check-In reproduction.
//!
//! The paper drives every experiment with YCSB: workloads A (50/50
//! read/update), F (50/50 read/RMW) and a write-only mix, under uniform
//! and (scrambled) zipfian key popularity, over small, variable-size
//! records. This crate reproduces exactly those generators:
//!
//! * [`ZipfianGenerator`] — Gray et al. sampler with YCSB's scrambling;
//! * [`KeyChooser`] / [`AccessPattern`] — uniform vs zipfian key choice;
//! * [`RecordSizes`] — weighted value-size mixes, including the paper's
//!   four 128 B–4 KiB "patterns" for Figure 13(b);
//! * [`OpMix`] / [`WorkloadSpec`] / [`OpGenerator`] — deterministic,
//!   seedable operation streams.
//!
//! # Examples
//!
//! ```
//! use checkin_workload::{AccessPattern, OpMix, RecordSizes, WorkloadSpec};
//!
//! let spec = WorkloadSpec {
//!     mix: OpMix::F,
//!     pattern: AccessPattern::Zipfian,
//!     record_count: 10_000,
//!     sizes: RecordSizes::paper_default(),
//!     seed: 7,
//! };
//! let mut gen = spec.generator();
//! let op = gen.next_op();
//! assert!(op.key() < 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod record;
mod trace;
mod ycsb;
mod zipfian;

pub use dist::{AccessPattern, KeyChooser};
pub use record::RecordSizes;
pub use trace::{OpTrace, TraceCursor};
pub use ycsb::{OpGenerator, OpMix, Operation, WorkloadSpec};
pub use zipfian::{ZipfianGenerator, YCSB_THETA};
