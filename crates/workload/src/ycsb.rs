//! YCSB-style operation mixes and the operation generator.

use checkin_sim::SimRng;

use crate::dist::{AccessPattern, KeyChooser};
use crate::record::RecordSizes;

/// One client operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Point lookup.
    Read {
        /// Target key.
        key: u64,
    },
    /// Blind update with a new value of `bytes`.
    Update {
        /// Target key.
        key: u64,
        /// New value size.
        bytes: u32,
    },
    /// Read followed by update of the same key (YCSB workload F).
    ReadModifyWrite {
        /// Target key.
        key: u64,
        /// New value size.
        bytes: u32,
    },
}

impl Operation {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            Operation::Read { key }
            | Operation::Update { key, .. }
            | Operation::ReadModifyWrite { key, .. } => key,
        }
    }

    /// True when the operation writes.
    pub fn is_write(&self) -> bool {
        !matches!(self, Operation::Read { .. })
    }
}

/// Operation mix in percent (must sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Point reads.
    pub read_pct: u32,
    /// Blind updates.
    pub update_pct: u32,
    /// Read-modify-writes.
    pub rmw_pct: u32,
}

impl OpMix {
    /// YCSB workload A: 50% reads, 50% updates.
    pub const A: OpMix = OpMix {
        read_pct: 50,
        update_pct: 50,
        rmw_pct: 0,
    };
    /// YCSB workload B: 95% reads, 5% updates.
    pub const B: OpMix = OpMix {
        read_pct: 95,
        update_pct: 5,
        rmw_pct: 0,
    };
    /// YCSB workload C: 100% reads.
    pub const C: OpMix = OpMix {
        read_pct: 100,
        update_pct: 0,
        rmw_pct: 0,
    };
    /// YCSB workload F: 50% reads, 50% read-modify-writes.
    pub const F: OpMix = OpMix {
        read_pct: 50,
        update_pct: 0,
        rmw_pct: 50,
    };
    /// Write-only (the paper's "Workload WO").
    pub const WRITE_ONLY: OpMix = OpMix {
        read_pct: 0,
        update_pct: 100,
        rmw_pct: 0,
    };

    /// Validates that the mix sums to 100%.
    ///
    /// # Errors
    ///
    /// Returns the actual sum when invalid.
    pub fn validate(&self) -> Result<(), u32> {
        let sum = self.read_pct + self.update_pct + self.rmw_pct;
        if sum == 100 {
            Ok(())
        } else {
            Err(sum)
        }
    }

    /// Paper label for the common mixes.
    pub fn label(&self) -> &'static str {
        match *self {
            OpMix::A => "A",
            OpMix::B => "B",
            OpMix::C => "C",
            OpMix::F => "F",
            OpMix::WRITE_ONLY => "WO",
            _ => "custom",
        }
    }
}

/// Full workload specification.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Operation mix.
    pub mix: OpMix,
    /// Key access skew.
    pub pattern: AccessPattern,
    /// Number of records loaded before the run.
    pub record_count: u64,
    /// Value size distribution.
    pub sizes: RecordSizes,
    /// RNG seed: same seed, same operation stream.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's default: workload A, zipfian, small records.
    pub fn paper_default() -> Self {
        WorkloadSpec {
            mix: OpMix::A,
            pattern: AccessPattern::Zipfian,
            record_count: 20_000,
            sizes: RecordSizes::paper_default(),
            seed: 0x5EED,
        }
    }

    /// Builds the operation generator for this spec.
    ///
    /// # Panics
    ///
    /// Panics if the mix does not sum to 100%.
    pub fn generator(&self) -> OpGenerator {
        self.mix
            .validate()
            .unwrap_or_else(|s| panic!("operation mix sums to {s}%, expected 100%"));
        OpGenerator {
            mix: self.mix,
            chooser: KeyChooser::new(self.pattern, self.record_count),
            sizes: self.sizes.clone(),
            rng: SimRng::seed_from(self.seed),
        }
    }
}

/// Infinite deterministic stream of operations.
///
/// # Examples
///
/// ```
/// use checkin_workload::{WorkloadSpec, Operation};
///
/// let mut gen = WorkloadSpec::paper_default().generator();
/// let ops: Vec<Operation> = (0..10).map(|_| gen.next_op()).collect();
/// assert!(ops.iter().any(|o| o.is_write()), "workload A has writes");
/// ```
#[derive(Debug, Clone)]
pub struct OpGenerator {
    mix: OpMix,
    chooser: KeyChooser,
    sizes: RecordSizes,
    rng: SimRng,
}

impl OpGenerator {
    /// Draws the next operation.
    pub fn next_op(&mut self) -> Operation {
        let roll = self.rng.gen_range(100) as u32;
        let key = self.chooser.next_key(&mut self.rng);
        if roll < self.mix.read_pct {
            Operation::Read { key }
        } else if roll < self.mix.read_pct + self.mix.update_pct {
            Operation::Update {
                key,
                bytes: self.sizes.sample(&mut self.rng),
            }
        } else {
            Operation::ReadModifyWrite {
                key,
                bytes: self.sizes.sample(&mut self.rng),
            }
        }
    }

    /// Record size for the initial load of `key` (deterministic per key so
    /// reloads agree).
    pub fn load_size(&self, key: u64) -> u32 {
        let mut rng = SimRng::seed_from(key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.sizes.sample(&mut rng)
    }

    /// Number of records the generator addresses.
    pub fn record_count(&self) -> u64 {
        self.chooser.key_space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(mix: OpMix) -> WorkloadSpec {
        WorkloadSpec {
            mix,
            pattern: AccessPattern::Uniform,
            record_count: 1_000,
            sizes: RecordSizes::fixed(512),
            seed: 11,
        }
    }

    #[test]
    fn preset_mixes_are_valid() {
        for m in [OpMix::A, OpMix::B, OpMix::C, OpMix::F, OpMix::WRITE_ONLY] {
            m.validate().unwrap();
        }
        assert_eq!(OpMix::A.label(), "A");
        assert_eq!(OpMix::WRITE_ONLY.label(), "WO");
    }

    #[test]
    fn invalid_mix_reports_sum() {
        let bad = OpMix {
            read_pct: 50,
            update_pct: 10,
            rmw_pct: 10,
        };
        assert_eq!(bad.validate(), Err(70));
    }

    #[test]
    fn workload_a_is_half_reads() {
        let mut g = spec(OpMix::A).generator();
        let reads = (0..10_000)
            .filter(|_| matches!(g.next_op(), Operation::Read { .. }))
            .count();
        assert!((4_500..5_500).contains(&reads), "reads: {reads}");
    }

    #[test]
    fn workload_f_has_rmw_but_no_blind_updates() {
        let mut g = spec(OpMix::F).generator();
        let mut rmw = 0;
        for _ in 0..1_000 {
            match g.next_op() {
                Operation::Update { .. } => panic!("workload F has no blind updates"),
                Operation::ReadModifyWrite { .. } => rmw += 1,
                Operation::Read { .. } => {}
            }
        }
        assert!(rmw > 300);
    }

    #[test]
    fn write_only_never_reads() {
        let mut g = spec(OpMix::WRITE_ONLY).generator();
        for _ in 0..1_000 {
            assert!(g.next_op().is_write());
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut g1 = spec(OpMix::A).generator();
        let mut g2 = spec(OpMix::A).generator();
        for _ in 0..100 {
            assert_eq!(g1.next_op(), g2.next_op());
        }
    }

    #[test]
    fn load_size_stable_per_key() {
        let g = WorkloadSpec::paper_default().generator();
        assert_eq!(g.load_size(42), g.load_size(42));
        assert_eq!(g.record_count(), 20_000);
    }

    #[test]
    fn operation_accessors() {
        let op = Operation::Update { key: 9, bytes: 100 };
        assert_eq!(op.key(), 9);
        assert!(op.is_write());
        assert!(!Operation::Read { key: 1 }.is_write());
    }

    #[test]
    #[should_panic(expected = "expected 100%")]
    fn generator_rejects_bad_mix() {
        let mut s = spec(OpMix::A);
        s.mix = OpMix {
            read_pct: 10,
            update_pct: 10,
            rmw_pct: 10,
        };
        s.generator();
    }
}
