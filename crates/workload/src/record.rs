//! Record (value) size distributions.
//!
//! The paper's main experiments use small records (≤ 512 B dominate, per
//! §II-C); the sector-aligned-journaling sensitivity study (Fig. 13) uses
//! "four different patterns that randomly mix various record sizes from
//! 128 to 4096 bytes".

use checkin_sim::SimRng;

/// A weighted distribution over record sizes in bytes.
///
/// # Examples
///
/// ```
/// use checkin_workload::RecordSizes;
/// use checkin_sim::SimRng;
///
/// let sizes = RecordSizes::fixed(1024);
/// let mut rng = SimRng::seed_from(1);
/// assert_eq!(sizes.sample(&mut rng), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSizes {
    /// `(size_bytes, weight)` pairs.
    choices: Vec<(u32, u32)>,
    total_weight: u64,
}

impl RecordSizes {
    /// Every record has the same size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn fixed(bytes: u32) -> Self {
        Self::weighted(vec![(bytes, 1)])
    }

    /// A weighted mix.
    ///
    /// # Panics
    ///
    /// Panics if empty, or any size or weight is zero.
    pub fn weighted(choices: Vec<(u32, u32)>) -> Self {
        assert!(!choices.is_empty(), "size mix must be non-empty");
        assert!(
            choices.iter().all(|&(s, w)| s > 0 && w > 0),
            "sizes and weights must be positive"
        );
        let total_weight = choices.iter().map(|&(_, w)| w as u64).sum();
        RecordSizes {
            choices,
            total_weight,
        }
    }

    /// The paper's main-experiment profile: small records dominate
    /// (Table I lists 128 B – 4 KiB with the text emphasising ≤ 512 B
    /// updates).
    pub fn paper_default() -> Self {
        Self::weighted(vec![
            (128, 20),
            (256, 25),
            (384, 15),
            (512, 20),
            (1024, 10),
            (2048, 6),
            (4096, 4),
        ])
    }

    /// Fig. 13(b) mixing pattern 1: small-value heavy.
    pub fn pattern1() -> Self {
        Self::weighted(vec![(128, 40), (256, 30), (512, 20), (1024, 10)])
    }

    /// Fig. 13(b) mixing pattern 2: balanced small/medium.
    pub fn pattern2() -> Self {
        Self::weighted(vec![
            (128, 15),
            (256, 20),
            (512, 30),
            (1024, 20),
            (2048, 15),
        ])
    }

    /// Fig. 13(b) mixing pattern 3: medium values.
    pub fn pattern3() -> Self {
        Self::weighted(vec![(512, 25), (1024, 30), (2048, 30), (4096, 15)])
    }

    /// Fig. 13(b) mixing pattern 4: uniform over all classes.
    pub fn pattern4() -> Self {
        Self::weighted(vec![
            (128, 1),
            (256, 1),
            (512, 1),
            (1024, 1),
            (2048, 1),
            (4096, 1),
        ])
    }

    /// Draws one record size.
    pub fn sample(&self, rng: &mut SimRng) -> u32 {
        let mut pick = rng.gen_range(self.total_weight);
        for &(size, w) in &self.choices {
            if pick < w as u64 {
                return size;
            }
            pick -= w as u64;
        }
        self.choices.last().expect("non-empty").0
    }

    /// Largest size in the mix.
    pub fn max_bytes(&self) -> u32 {
        self.choices
            .iter()
            .map(|&(s, _)| s)
            .max()
            .expect("non-empty")
    }

    /// Weighted mean size.
    pub fn mean_bytes(&self) -> f64 {
        self.choices
            .iter()
            .map(|&(s, w)| s as f64 * w as f64)
            .sum::<f64>()
            / self.total_weight as f64
    }
}

impl Default for RecordSizes {
    fn default() -> Self {
        RecordSizes::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_returns_size() {
        let s = RecordSizes::fixed(777);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 777);
        }
        assert_eq!(s.max_bytes(), 777);
    }

    #[test]
    fn weighted_respects_weights_roughly() {
        let s = RecordSizes::weighted(vec![(100, 9), (200, 1)]);
        let mut rng = SimRng::seed_from(2);
        let small = (0..10_000).filter(|_| s.sample(&mut rng) == 100).count();
        assert!((8_500..9_500).contains(&small), "got {small}");
    }

    #[test]
    fn paper_default_mostly_small() {
        let s = RecordSizes::paper_default();
        let mut rng = SimRng::seed_from(3);
        let small = (0..10_000).filter(|_| s.sample(&mut rng) <= 512).count();
        assert!(small > 7_000, "small-record share: {small}");
        assert_eq!(s.max_bytes(), 4096);
    }

    #[test]
    fn patterns_cover_paper_range() {
        for p in [
            RecordSizes::pattern1(),
            RecordSizes::pattern2(),
            RecordSizes::pattern3(),
            RecordSizes::pattern4(),
        ] {
            assert!(p.max_bytes() <= 4096);
            assert!(p.mean_bytes() >= 128.0);
        }
        assert!(RecordSizes::pattern1().mean_bytes() < RecordSizes::pattern3().mean_bytes());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mix_panics() {
        RecordSizes::weighted(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_panics() {
        RecordSizes::weighted(vec![(128, 0)]);
    }
}
