//! Zipfian key generation, YCSB-style.
//!
//! Implements the Gray et al. rejection-free zipfian sampler used by YCSB,
//! plus the *scrambled* variant that spreads the hot keys uniformly over
//! the key space (so hotness is not correlated with key order — important
//! because our key-value store lays keys out by id).

use checkin_sim::SimRng;

/// Default YCSB skew constant.
pub const YCSB_THETA: f64 = 0.99;

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

/// FNV-1a 64-bit hash used for scrambling.
fn fnv1a(mut x: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for _ in 0..8 {
        h ^= x & 0xFF;
        h = h.wrapping_mul(0x100_0000_01B3);
        x >>= 8;
    }
    h
}

/// Zipfian distribution over `[0, n)` with skew `theta`.
///
/// # Examples
///
/// ```
/// use checkin_workload::ZipfianGenerator;
/// use checkin_sim::SimRng;
///
/// let mut z = ZipfianGenerator::new(1000, 0.99);
/// let mut rng = SimRng::seed_from(1);
/// let k = z.next_rank(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    n: u64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    /// `1 + 0.5^theta`, the rank-1 acceptance bound. Precomputed: a
    /// `powf` per draw is the single hottest instruction of the whole
    /// admission loop, and the bound is constant for a generator.
    rank1_bound: f64,
    scrambled: bool,
}

impl ZipfianGenerator {
    /// A plain zipfian over `[0, n)`: rank 0 is the hottest key.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "key space must be non-empty");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        ZipfianGenerator {
            n,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            rank1_bound: 1.0 + 0.5_f64.powf(theta),
            scrambled: false,
        }
    }

    /// A scrambled zipfian: same popularity profile, hot keys spread
    /// pseudo-randomly over the space (YCSB's default behaviour).
    pub fn scrambled(n: u64, theta: f64) -> Self {
        let mut z = Self::new(n, theta);
        z.scrambled = true;
        z
    }

    /// Key-space size.
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// Draws the next rank (0 = hottest) without scrambling.
    pub fn next_rank(&mut self, rng: &mut SimRng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.rank1_bound {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws the next key (scrambled if configured).
    pub fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        let rank = self.next_rank(rng);
        if self.scrambled {
            fnv1a(rank) % self.n
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_stay_in_range() {
        let mut z = ZipfianGenerator::new(100, YCSB_THETA);
        let mut rng = SimRng::seed_from(7);
        for _ in 0..10_000 {
            assert!(z.next_rank(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let mut z = ZipfianGenerator::new(1_000, YCSB_THETA);
        let mut rng = SimRng::seed_from(3);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..100_000 {
            counts[z.next_rank(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
        // Rank 0 of a theta=0.99 zipfian over 1000 keys draws ~13% of mass.
        let share = counts[0] as f64 / 100_000.0;
        assert!((0.08..0.20).contains(&share), "rank-0 share {share}");
    }

    #[test]
    fn scrambled_moves_hot_key_but_keeps_skew() {
        let mut z = ZipfianGenerator::scrambled(1_000, YCSB_THETA);
        let mut rng = SimRng::seed_from(3);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..100_000 {
            counts[z.next_key(&mut rng) as usize] += 1;
        }
        let (hot_key, &hot) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        assert_ne!(hot_key, 0, "scrambling relocates the hottest key");
        assert!(hot as f64 / 100_000.0 > 0.05, "skew preserved");
    }

    #[test]
    fn deterministic_for_seed() {
        let mut z1 = ZipfianGenerator::scrambled(500, YCSB_THETA);
        let mut z2 = ZipfianGenerator::scrambled(500, YCSB_THETA);
        let mut r1 = SimRng::seed_from(42);
        let mut r2 = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(z1.next_key(&mut r1), z2.next_key(&mut r2));
        }
    }

    #[test]
    fn distinct_key_coverage_is_narrow_vs_uniform() {
        // A zipfian touches far fewer distinct keys than uniform in the
        // same number of draws — the effect behind the paper's Fig. 3(b).
        let n = 10_000u64;
        let mut z = ZipfianGenerator::scrambled(n, YCSB_THETA);
        let mut rng = SimRng::seed_from(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            seen.insert(z.next_key(&mut rng));
        }
        assert!(
            (seen.len() as f64) < 0.5 * n as f64,
            "zipfian distinct {} of {n}",
            seen.len()
        );
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn invalid_theta_panics() {
        ZipfianGenerator::new(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "key space")]
    fn empty_keyspace_panics() {
        ZipfianGenerator::new(0, 0.5);
    }
}
