//! Operation traces: record a generator's stream once, replay it exactly.
//!
//! Useful for regression experiments ("same trace, different device
//! configuration") and for exporting workloads to other tools. A trace is
//! just the materialised operation sequence; replay is a cursor.

use crate::ycsb::{OpGenerator, Operation};

/// A recorded operation sequence.
///
/// # Examples
///
/// ```
/// use checkin_workload::{OpTrace, WorkloadSpec};
///
/// let spec = WorkloadSpec::paper_default();
/// let trace = OpTrace::record(&mut spec.generator(), 100);
/// assert_eq!(trace.len(), 100);
/// let again = OpTrace::record(&mut spec.generator(), 100);
/// assert_eq!(trace, again); // same seed, same trace
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpTrace {
    ops: Vec<Operation>,
}

impl OpTrace {
    /// Materialises `n` operations from a generator.
    pub fn record(generator: &mut OpGenerator, n: usize) -> Self {
        OpTrace {
            ops: (0..n).map(|_| generator.next_op()).collect(),
        }
    }

    /// Builds a trace from explicit operations.
    pub fn from_ops(ops: Vec<Operation>) -> Self {
        OpTrace { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates the operations.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter()
    }

    /// Fraction of operations that write.
    pub fn write_fraction(&self) -> f64 {
        if self.ops.is_empty() {
            return 0.0;
        }
        self.ops.iter().filter(|o| o.is_write()).count() as f64 / self.ops.len() as f64
    }

    /// Distinct keys touched.
    pub fn distinct_keys(&self) -> usize {
        let mut keys: Vec<u64> = self.ops.iter().map(Operation::key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Splits the trace round-robin into `n` per-thread traces, matching
    /// how a closed-loop client pool would interleave it.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn split_round_robin(&self, n: usize) -> Vec<OpTrace> {
        assert!(n > 0, "cannot split into zero traces");
        let mut out = vec![OpTrace::default(); n];
        for (i, op) in self.ops.iter().enumerate() {
            out[i % n].ops.push(*op);
        }
        out
    }

    /// A replay cursor over the trace.
    pub fn cursor(&self) -> TraceCursor<'_> {
        TraceCursor {
            ops: &self.ops,
            next: 0,
        }
    }
}

/// Sequential replay over a recorded trace.
#[derive(Debug, Clone)]
pub struct TraceCursor<'a> {
    ops: &'a [Operation],
    next: usize,
}

impl TraceCursor<'_> {
    /// Next operation, or `None` at the end of the trace.
    pub fn next_op(&mut self) -> Option<Operation> {
        let op = self.ops.get(self.next).copied();
        if op.is_some() {
            self.next += 1;
        }
        op
    }

    /// Operations remaining.
    pub fn remaining(&self) -> usize {
        self.ops.len() - self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPattern, OpMix, RecordSizes, WorkloadSpec};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            mix: OpMix::A,
            pattern: AccessPattern::Zipfian,
            record_count: 500,
            sizes: RecordSizes::fixed(256),
            seed: 42,
        }
    }

    #[test]
    fn record_is_deterministic() {
        let a = OpTrace::record(&mut spec().generator(), 250);
        let b = OpTrace::record(&mut spec().generator(), 250);
        assert_eq!(a, b);
        assert_eq!(a.len(), 250);
    }

    #[test]
    fn write_fraction_tracks_mix() {
        let t = OpTrace::record(&mut spec().generator(), 5_000);
        let f = t.write_fraction();
        assert!((0.45..0.55).contains(&f), "workload A ~50% writes, got {f}");
        assert_eq!(OpTrace::default().write_fraction(), 0.0);
    }

    #[test]
    fn zipfian_touches_fewer_distinct_keys_than_uniform() {
        let zipf = OpTrace::record(&mut spec().generator(), 2_000);
        let mut uni_spec = spec();
        uni_spec.pattern = AccessPattern::Uniform;
        let uni = OpTrace::record(&mut uni_spec.generator(), 2_000);
        assert!(zipf.distinct_keys() < uni.distinct_keys());
    }

    #[test]
    fn cursor_replays_in_order() {
        let t = OpTrace::record(&mut spec().generator(), 10);
        let mut c = t.cursor();
        for want in t.iter() {
            assert_eq!(c.next_op().as_ref(), Some(want));
        }
        assert_eq!(c.next_op(), None);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn round_robin_split_preserves_everything() {
        let t = OpTrace::record(&mut spec().generator(), 101);
        let parts = t.split_round_robin(4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(OpTrace::len).sum();
        assert_eq!(total, 101);
        // First thread gets ops 0, 4, 8, ...
        assert_eq!(parts[0].ops()[0], t.ops()[0]);
        assert_eq!(parts[1].ops()[0], t.ops()[1]);
        assert_eq!(parts[0].ops()[1], t.ops()[4]);
    }

    #[test]
    #[should_panic(expected = "zero traces")]
    fn zero_way_split_panics() {
        OpTrace::default().split_round_robin(0);
    }
}
