//! Key access distributions.

use checkin_sim::SimRng;

use crate::zipfian::{ZipfianGenerator, YCSB_THETA};

/// Which access skew a workload uses (the paper evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessPattern {
    /// Every key equally likely.
    Uniform,
    /// YCSB scrambled zipfian, theta = 0.99.
    #[default]
    Zipfian,
}

impl AccessPattern {
    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            AccessPattern::Uniform => "uniform",
            AccessPattern::Zipfian => "zipfian",
        }
    }
}

/// A sampler of keys in `[0, key_space)` under a chosen pattern.
///
/// # Examples
///
/// ```
/// use checkin_workload::{AccessPattern, KeyChooser};
/// use checkin_sim::SimRng;
///
/// let mut chooser = KeyChooser::new(AccessPattern::Uniform, 100);
/// let mut rng = SimRng::seed_from(1);
/// assert!(chooser.next_key(&mut rng) < 100);
/// ```
#[derive(Debug, Clone)]
pub struct KeyChooser {
    pattern: AccessPattern,
    key_space: u64,
    zipf: Option<ZipfianGenerator>,
}

impl KeyChooser {
    /// Creates a sampler over `[0, key_space)`.
    ///
    /// # Panics
    ///
    /// Panics if `key_space` is zero.
    pub fn new(pattern: AccessPattern, key_space: u64) -> Self {
        assert!(key_space > 0, "key space must be non-empty");
        let zipf = match pattern {
            AccessPattern::Zipfian => Some(ZipfianGenerator::scrambled(key_space, YCSB_THETA)),
            AccessPattern::Uniform => None,
        };
        KeyChooser {
            pattern,
            key_space,
            zipf,
        }
    }

    /// Draws the next key.
    pub fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        match (&mut self.zipf, self.pattern) {
            (Some(z), _) => z.next_key(rng),
            (None, _) => rng.gen_range(self.key_space),
        }
    }

    /// The configured pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Size of the key space.
    pub fn key_space(&self) -> u64 {
        self.key_space
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space_evenly() {
        let mut c = KeyChooser::new(AccessPattern::Uniform, 10);
        let mut rng = SimRng::seed_from(5);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[c.next_key(&mut rng) as usize] += 1;
        }
        for (i, &n) in counts.iter().enumerate() {
            assert!((800..1200).contains(&n), "bucket {i}: {n}");
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut c = KeyChooser::new(AccessPattern::Zipfian, 1_000);
        let mut rng = SimRng::seed_from(5);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..50_000 {
            counts[c.next_key(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(max as f64 / 50_000.0 > 0.05, "hottest key share");
    }

    #[test]
    fn labels() {
        assert_eq!(AccessPattern::Uniform.label(), "uniform");
        assert_eq!(AccessPattern::Zipfian.label(), "zipfian");
        assert_eq!(AccessPattern::default(), AccessPattern::Zipfian);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_panics() {
        KeyChooser::new(AccessPattern::Uniform, 0);
    }
}
