//! Rule-by-rule fixture tests: each fixture under `tests/fixtures/`
//! seeds known violations (and near-misses that must NOT fire), and the
//! assertions pin the exact (rule, line) set the analyzer reports.
//! Fixture files are append-only — the line numbers are load-bearing.

use checkin_analyze::analyze_sources;
use checkin_analyze::config::{AllowEntry, AnalyzeConfig, CounterFamily};
use checkin_analyze::scan::SourceFile;

fn fixture(rel: &str, src: &str) -> SourceFile {
    SourceFile::new(rel.to_string(), src)
}

/// `(rule, line)` pairs, in report order.
fn locations(report: &checkin_analyze::Report) -> Vec<(&'static str, u32)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn a1_whole_file_scope_flags_every_panic_path() {
    let files = [fixture(
        "crates/ssd/src/a1_recovery.rs",
        include_str!("fixtures/a1_recovery.rs"),
    )];
    let cfg = AnalyzeConfig {
        a1_files: vec!["crates/ssd/src/a1_recovery.rs".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A1", 6), ("A1", 7), ("A1", 9), ("A1", 12), ("A1", 20)],
        "unwrap, expect, panic!, and both index sites — nothing else \
         (debug_assert!, unwrap_or, &[u32] slices, and test code are exempt)"
    );
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    assert!(msgs[0].contains(".unwrap()"), "{msgs:?}");
    assert!(msgs[1].contains(".expect()"), "{msgs:?}");
    assert!(msgs[2].contains("`panic!`"), "{msgs:?}");
    assert!(msgs[3].contains("indexing"), "{msgs:?}");
}

#[test]
fn a1_entry_function_reachability_follows_calls() {
    let files = [fixture(
        "crates/ssd/src/a1_recovery.rs",
        include_str!("fixtures/a1_recovery.rs"),
    )];
    let cfg = AnalyzeConfig {
        a1_entry_functions: vec!["entry_point".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    // Only `helper` is reachable from `entry_point`; `rebuild`'s four
    // violations are out of scope, as is the never-called `untouched`.
    assert_eq!(locations(&report), vec![("A1", 20)]);
    assert!(
        report.diagnostics[0]
            .message
            .contains("recovery-reachable via `entry_point`"),
        "{}",
        report.diagnostics[0].message
    );
}

#[test]
fn a2_flags_each_nondeterminism_source() {
    let files = [fixture(
        "crates/sim/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A2", 4), ("A2", 5), ("A2", 6), ("A2", 16), ("A2", 17)],
        "each banned identifier token fires; the string literal \"HashMap\" \
         and the comment mention must not"
    );
    assert!(report.diagnostics[0].message.contains("HashMap"));
    assert!(report.diagnostics[2].message.contains("Instant"));
}

#[test]
fn a2_out_of_scope_crate_is_ignored() {
    let files = [fixture(
        "crates/cli/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        ..AnalyzeConfig::default()
    };
    assert!(analyze_sources(&files, &cfg).diagnostics.is_empty());
}

#[test]
fn a3_flags_only_the_split_pair() {
    let files = [fixture(
        "crates/flash/src/a3_counters.rs",
        include_str!("fixtures/a3_counters.rs"),
    )];
    let cfg = AnalyzeConfig {
        a3_crates: vec!["flash".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A3", 10)],
        "paired read/erase increments pass; the untracked power_cuts key is \
         not A3's concern; only the untagged flash.program fires"
    );
    assert!(report.diagnostics[0].message.contains("flash.program"));
}

#[test]
fn a4_flags_truncating_casts_with_address_witnesses() {
    let files = [fixture(
        "crates/ftl/src/a4_casts.rs",
        include_str!("fixtures/a4_casts.rs"),
    )];
    let cfg = AnalyzeConfig {
        a4_crates: vec!["ftl".into()],
        a4_self_files: vec!["crates/ftl/src/a4_casts.rs".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A4", 5), ("A4", 6), ("A4", 14)],
        "lpn and ppn witnesses plus self.0 in a self_files impl; casts of \
         plain counters and widening casts stay silent"
    );
    assert!(report.diagnostics[0].message.contains("`lpn`"));
    assert!(report.diagnostics[1].message.contains("`ppn`"));
    assert!(report.diagnostics[2].message.contains("`self.0`"));
}

#[test]
fn a4_without_self_files_skips_the_newtype_cast() {
    let files = [fixture(
        "crates/ftl/src/a4_casts.rs",
        include_str!("fixtures/a4_casts.rs"),
    )];
    let cfg = AnalyzeConfig {
        a4_crates: vec!["ftl".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(locations(&report), vec![("A4", 5), ("A4", 6)]);
}

#[test]
fn a5_flags_order_violation_and_unknown_receiver() {
    let files = [fixture(
        "crates/sim/src/a5_locks.rs",
        include_str!("fixtures/a5_locks.rs"),
    )];
    let cfg = AnalyzeConfig {
        a5_files: vec!["crates/sim/src/a5_locks.rs".into()],
        a5_lock_order: vec!["stats".into(), "ring".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A5", 12), ("A5", 17)],
        "in-order acquisition passes; stats-after-ring and the undeclared \
         queue mutex fire"
    );
    assert!(report.diagnostics[0]
        .message
        .contains("violating the declared order"));
    assert!(report.diagnostics[1]
        .message
        .contains("not in the declared lock order"));
}

#[test]
fn a6_flags_discarded_results_and_spares_consumed_ones() {
    let files = [fixture(
        "crates/ssd/src/a6_results.rs",
        include_str!("fixtures/a6_results.rs"),
    )];
    let cfg = AnalyzeConfig {
        a1_files: vec!["crates/ssd/src/a6_results.rs".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    let a6: Vec<(&'static str, u32)> = locations(&report)
        .into_iter()
        .filter(|(r, _)| *r == "A6")
        .collect();
    assert_eq!(
        a6,
        vec![("A6", 32), ("A6", 34), ("A6", 36)],
        "`let _ =`, the unconsumed field-chain call, and bare `.ok();` — \
         bound, propagated, and non-Result discards stay clean"
    );
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "A6")
        .map(|d| d.message.as_str())
        .collect();
    assert!(msgs[0].contains("`let _ =` discards"), "{msgs:?}");
    assert!(msgs[1].contains("`sync` is not consumed"), "{msgs:?}");
    assert!(msgs[2].contains("bare `.ok();`"), "{msgs:?}");
}

#[test]
fn a7_requires_both_sides_of_the_family_per_function() {
    let files = [fixture(
        "crates/ftl/src/a7_counters.rs",
        include_str!("fixtures/a7_counters.rs"),
    )];
    let cfg = AnalyzeConfig {
        a7_crates: vec!["ftl".into()],
        a7_families: vec![
            CounterFamily::parse("detected = quarantined + corrected").expect("well-formed family"),
            CounterFamily::parse(
                "ftl.integrity_detected = ftl.integrity_quarantined + ftl.integrity_corrected",
            )
            .expect("well-formed family"),
        ],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A7", 27), ("A7", 31), ("A7", 41)],
        "lhs-only and rhs-only bumps fire; the branchy balanced pair, the \
         balanced dotted pair, and plain reads stay clean"
    );
    assert!(report.diagnostics[0]
        .message
        .contains("`detected` is bumped without"));
    assert!(report.diagnostics[1].message.contains("without `detected`"));
    assert!(report.diagnostics[2]
        .message
        .contains("`ftl.integrity_detected` is bumped without"));
}

#[test]
fn a8_bans_shared_state_and_cross_edge_lock_inversions() {
    let files = [fixture(
        "crates/core/src/a8_concurrency.rs",
        include_str!("fixtures/a8_concurrency.rs"),
    )];
    let cfg = AnalyzeConfig {
        a8_fleet_bound: vec!["core".into()],
        a5_lock_order: vec!["stats".into(), "ring".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A8", 7), ("A8", 10), ("A8", 14), ("A8", 22)],
        "RefCell, thread_local!, static mut, and the call that locks \
         `stats` under `ring`; the in-order function stays clean"
    );
    assert!(report.diagnostics[0].message.contains("`RefCell`"));
    assert!(report.diagnostics[1].message.contains("`thread_local!`"));
    assert!(report.diagnostics[2].message.contains("`static mut`"));
    assert!(
        report.diagnostics[3]
            .message
            .contains("acquires lock `stats` while `ring` is already held"),
        "{}",
        report.diagnostics[3].message
    );
}

#[test]
fn a1_cone_crosses_crates_through_typed_field_chains() {
    let files = [
        fixture(
            "crates/ssd/src/a1_xcrate_ssd.rs",
            include_str!("fixtures/a1_xcrate_ssd.rs"),
        ),
        fixture(
            "crates/ftl/src/a1_xcrate_ftl.rs",
            include_str!("fixtures/a1_xcrate_ftl.rs"),
        ),
        fixture(
            "crates/flash/src/a1_xcrate_flash.rs",
            include_str!("fixtures/a1_xcrate_flash.rs"),
        ),
    ];
    let cfg = AnalyzeConfig {
        a1_entry_functions: vec!["rebuild_after_power_loss".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A1", 10)],
        "the indexing two crates below the entry fires; the uncalled \
         panic in the same impl stays out of the cone"
    );
    let d = &report.diagnostics[0];
    assert_eq!(d.file, "crates/flash/src/a1_xcrate_flash.rs");
    assert!(
        d.message
            .contains("in `read_page` (recovery-reachable via `rebuild_after_power_loss`)"),
        "{}",
        d.message
    );
}

#[test]
fn allowlist_matches_on_snippet_and_reports_stale_entries() {
    let files = [fixture(
        "crates/sim/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        allows: vec![
            AllowEntry {
                rule: "A2".into(),
                file: "crates/sim/src/a2_nondeterminism.rs".into(),
                snippet: "use std::collections::HashMap".into(),
                line: Some(4),
                reason: "fixture: suppress the HashMap import".into(),
            },
            AllowEntry {
                rule: "A2".into(),
                file: "crates/sim/src/a2_nondeterminism.rs".into(),
                snippet: "no such code anywhere".into(),
                line: None,
                reason: "fixture: snippet matches nothing in a file with findings".into(),
            },
            AllowEntry {
                rule: "A2".into(),
                file: "crates/sim/src/other.rs".into(),
                snippet: "whatever".into(),
                line: None,
                reason: "fixture: entry for a file with no findings at all".into(),
            },
        ],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A2", 5), ("A2", 6), ("A2", 16), ("A2", 17)],
        "the HashMap import is allowlisted away by its snippet"
    );
    assert_eq!(report.unused_allows.len(), 2);
    assert!(
        report.unused_allows[0].snippet_mismatch,
        "same rule+file still has findings, so the snippet rotted"
    );
    assert!(
        !report.unused_allows[1].snippet_mismatch,
        "no findings in that file at all — plain stale, not a mismatch"
    );
}

#[test]
fn one_snippet_covers_every_line_that_contains_it() {
    let files = [fixture(
        "crates/sim/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        allows: vec![AllowEntry {
            rule: "A2".into(),
            file: "crates/sim/src/a2_nondeterminism.rs".into(),
            snippet: "Instant".into(),
            line: None,
            reason: "fixture: one snippet, three Instant sites".into(),
        }],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A2", 4), ("A2", 5)],
        "all three Instant findings share the snippet; the hash imports stay"
    );
    assert!(report.unused_allows.is_empty());
}
