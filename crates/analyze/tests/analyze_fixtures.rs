//! Rule-by-rule fixture tests: each fixture under `tests/fixtures/`
//! seeds known violations (and near-misses that must NOT fire), and the
//! assertions pin the exact (rule, line) set the analyzer reports.
//! Fixture files are append-only — the line numbers are load-bearing.

use checkin_analyze::analyze_sources;
use checkin_analyze::config::{AllowEntry, AnalyzeConfig};
use checkin_analyze::scan::SourceFile;

fn fixture(rel: &str, src: &str) -> SourceFile {
    SourceFile::new(rel.to_string(), src)
}

/// `(rule, line)` pairs, in report order.
fn locations(report: &checkin_analyze::Report) -> Vec<(&'static str, u32)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn a1_whole_file_scope_flags_every_panic_path() {
    let files = [fixture(
        "crates/ssd/src/a1_recovery.rs",
        include_str!("fixtures/a1_recovery.rs"),
    )];
    let cfg = AnalyzeConfig {
        a1_files: vec!["crates/ssd/src/a1_recovery.rs".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A1", 6), ("A1", 7), ("A1", 9), ("A1", 12), ("A1", 20)],
        "unwrap, expect, panic!, and both index sites — nothing else \
         (debug_assert!, unwrap_or, &[u32] slices, and test code are exempt)"
    );
    let msgs: Vec<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.as_str())
        .collect();
    assert!(msgs[0].contains(".unwrap()"), "{msgs:?}");
    assert!(msgs[1].contains(".expect()"), "{msgs:?}");
    assert!(msgs[2].contains("`panic!`"), "{msgs:?}");
    assert!(msgs[3].contains("indexing"), "{msgs:?}");
}

#[test]
fn a1_entry_function_reachability_follows_calls() {
    let files = [fixture(
        "crates/ssd/src/a1_recovery.rs",
        include_str!("fixtures/a1_recovery.rs"),
    )];
    let cfg = AnalyzeConfig {
        a1_entry_functions: vec!["entry_point".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    // Only `helper` is reachable from `entry_point`; `rebuild`'s four
    // violations are out of scope, as is the never-called `untouched`.
    assert_eq!(locations(&report), vec![("A1", 20)]);
    assert!(
        report.diagnostics[0]
            .message
            .contains("recovery-reachable via `entry_point`"),
        "{}",
        report.diagnostics[0].message
    );
}

#[test]
fn a2_flags_each_nondeterminism_source() {
    let files = [fixture(
        "crates/sim/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A2", 4), ("A2", 5), ("A2", 6), ("A2", 16), ("A2", 17)],
        "each banned identifier token fires; the string literal \"HashMap\" \
         and the comment mention must not"
    );
    assert!(report.diagnostics[0].message.contains("HashMap"));
    assert!(report.diagnostics[2].message.contains("Instant"));
}

#[test]
fn a2_out_of_scope_crate_is_ignored() {
    let files = [fixture(
        "crates/cli/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        ..AnalyzeConfig::default()
    };
    assert!(analyze_sources(&files, &cfg).diagnostics.is_empty());
}

#[test]
fn a3_flags_only_the_split_pair() {
    let files = [fixture(
        "crates/flash/src/a3_counters.rs",
        include_str!("fixtures/a3_counters.rs"),
    )];
    let cfg = AnalyzeConfig {
        a3_crates: vec!["flash".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A3", 10)],
        "paired read/erase increments pass; the untracked power_cuts key is \
         not A3's concern; only the untagged flash.program fires"
    );
    assert!(report.diagnostics[0].message.contains("flash.program"));
}

#[test]
fn a4_flags_truncating_casts_with_address_witnesses() {
    let files = [fixture(
        "crates/ftl/src/a4_casts.rs",
        include_str!("fixtures/a4_casts.rs"),
    )];
    let cfg = AnalyzeConfig {
        a4_crates: vec!["ftl".into()],
        a4_self_files: vec!["crates/ftl/src/a4_casts.rs".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A4", 5), ("A4", 6), ("A4", 14)],
        "lpn and ppn witnesses plus self.0 in a self_files impl; casts of \
         plain counters and widening casts stay silent"
    );
    assert!(report.diagnostics[0].message.contains("`lpn`"));
    assert!(report.diagnostics[1].message.contains("`ppn`"));
    assert!(report.diagnostics[2].message.contains("`self.0`"));
}

#[test]
fn a4_without_self_files_skips_the_newtype_cast() {
    let files = [fixture(
        "crates/ftl/src/a4_casts.rs",
        include_str!("fixtures/a4_casts.rs"),
    )];
    let cfg = AnalyzeConfig {
        a4_crates: vec!["ftl".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(locations(&report), vec![("A4", 5), ("A4", 6)]);
}

#[test]
fn a5_flags_order_violation_and_unknown_receiver() {
    let files = [fixture(
        "crates/sim/src/a5_locks.rs",
        include_str!("fixtures/a5_locks.rs"),
    )];
    let cfg = AnalyzeConfig {
        a5_files: vec!["crates/sim/src/a5_locks.rs".into()],
        a5_lock_order: vec!["stats".into(), "ring".into()],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A5", 12), ("A5", 17)],
        "in-order acquisition passes; stats-after-ring and the undeclared \
         queue mutex fire"
    );
    assert!(report.diagnostics[0]
        .message
        .contains("violating the declared order"));
    assert!(report.diagnostics[1]
        .message
        .contains("not in the declared lock order"));
}

#[test]
fn allowlist_suppresses_exact_lines_and_reports_stale_entries() {
    let files = [fixture(
        "crates/sim/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        allows: vec![
            AllowEntry {
                rule: "A2".into(),
                file: "crates/sim/src/a2_nondeterminism.rs".into(),
                line: Some(4),
                reason: "fixture: suppress the HashMap import".into(),
            },
            AllowEntry {
                rule: "A2".into(),
                file: "crates/sim/src/a2_nondeterminism.rs".into(),
                line: Some(999),
                reason: "fixture: stale entry that matches nothing".into(),
            },
        ],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert_eq!(
        locations(&report),
        vec![("A2", 5), ("A2", 6), ("A2", 16), ("A2", 17)],
        "line 4 is allowlisted away"
    );
    assert_eq!(report.unused_allows.len(), 1);
    assert_eq!(report.unused_allows[0].line, Some(999));
}

#[test]
fn file_wide_allow_suppresses_every_line() {
    let files = [fixture(
        "crates/sim/src/a2_nondeterminism.rs",
        include_str!("fixtures/a2_nondeterminism.rs"),
    )];
    let cfg = AnalyzeConfig {
        a2_crates: vec!["sim".into()],
        allows: vec![AllowEntry {
            rule: "A2".into(),
            file: "crates/sim/src/a2_nondeterminism.rs".into(),
            line: None,
            reason: "fixture: whole-file exception".into(),
        }],
        ..AnalyzeConfig::default()
    };
    let report = analyze_sources(&files, &cfg);
    assert!(report.diagnostics.is_empty());
    assert!(report.unused_allows.is_empty());
}
