//! Self-check: the shipped workspace is clean under the shipped
//! `analyze.toml` — zero findings AND zero stale allowlist entries.
//! This is the same run `scripts/verify.sh` gates on; keeping it as a
//! plain test means `cargo test` alone catches a reintroduced panic
//! path or a rotted exception.

use std::path::Path;

#[test]
fn shipped_workspace_has_no_findings_and_no_stale_allows() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = checkin_analyze::analyze_workspace(&root).expect("analyze.toml parses");
    assert!(
        report.files_scanned > 50,
        "expected to scan the whole workspace, got {} files",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must be clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allows
    );
}
