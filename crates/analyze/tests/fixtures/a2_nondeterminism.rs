// A2 fixture: nondeterminism sources in a deterministic crate.
// Line numbers are asserted exactly — append only at the end.

use std::collections::HashMap; // line 4: HashMap
use std::collections::HashSet; // line 5: HashSet
use std::time::Instant; // line 6: Instant

pub fn ordered() -> std::collections::BTreeMap<u32, u32> {
    // "HashMap" in a comment or "HashMap" in a string must not fire.
    let label = "HashMap";
    let mut m = std::collections::BTreeMap::new();
    m.insert(label.len() as u32, 0);
    m
}

pub fn wall_clock() -> Instant {
    Instant::now() // line 17: Instant again
}
