// A1 fixture: a whole-file recovery scope plus an entry-function
// reachability chain. Line numbers are asserted exactly by
// analyze_fixtures.rs — append only at the end.

pub fn rebuild(state: Option<u32>, table: &[u32]) -> u32 {
    let a = state.unwrap(); // line 6: .unwrap()
    let b = state.expect("present"); // line 7: .expect()
    if a == 0 {
        panic!("zero"); // line 9: panic!
    }
    debug_assert!(b > 0, "allowed: debug-only invariant");
    table[0] + a + b // line 12: indexing
}

pub fn entry_point(v: &[u32]) -> u32 {
    helper(v)
}

fn helper(v: &[u32]) -> u32 {
    v[1] // line 20: indexing, reachable entry_point -> helper
}

fn untouched(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], super::untouched(&v)); // indexing + assert: exempt
        let _ = Some(1).unwrap(); // exempt
    }
}
