//! Cross-crate A1 fixture, ftl layer: the middle hop. No panic here —
//! this file only carries the call edge from ssd down to flash.

pub struct Ftl {
    pub flash: FlashDev,
}

impl Ftl {
    pub fn replay_journal(&mut self) {
        self.flash.read_page(0);
    }
}
