//! A8 fixture: fleet-readiness bans and cross-edge lock order.
//! Line numbers are asserted exactly — append only at the end.

use std::sync::Mutex;

pub struct Shared {
    pub slot: std::cell::RefCell<u64>, // line 7: RefCell
}

thread_local! { // line 10: thread_local!
    static SCRATCH: u64 = 0;
}

static mut GLOBAL_TICKS: u64 = 0; // line 14: static mut

pub fn grab_stats(stats: &Mutex<u64>) -> u64 {
    *stats.lock().unwrap()
}

pub fn inverted(ring: &Mutex<u64>, stats: &Mutex<u64>) -> u64 {
    let held = ring.lock();
    let v = grab_stats(stats); // line 22: callee locks `stats` under `ring`
    drop(held);
    v
}

pub fn in_order(stats: &Mutex<u64>, ring: &Mutex<u64>) -> u64 {
    let a = *stats.lock().unwrap();
    let b = *ring.lock().unwrap();
    a + b
}
