// A4 fixture: truncating casts on address arithmetic versus benign
// casts. Line numbers are asserted exactly — append only at the end.

pub fn offsets(lpn: u64, ppn: u64, count: u64, units_per_page: u32) -> u32 {
    let a = lpn as u32; // line 5: lpn truncated
    let b = (ppn % units_per_page as u64) as u16; // line 6: ppn truncated
    let c = count as u32; // benign identifier: not flagged
    let d = lpn as u64; // widening: not flagged
    a + b as u32 + c + d as u32 // line 9: d is benign, b via `b` is benign
}

impl Pun {
    pub fn offset(self, units_per_page: u32) -> u32 {
        (self.0 % units_per_page as u64) as u32 // line 14: self.0 (self_files)
    }
}
