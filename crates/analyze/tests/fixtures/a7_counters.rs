//! A7 fixture: counter-conservation bump sites.
//! Line numbers are asserted exactly — append only at the end.

pub struct Ledger {
    pub detected: u64,
    pub quarantined: u64,
    pub corrected: u64,
}

pub struct Counters;

impl Counters {
    pub fn incr(&mut self, _key: &str) {}
}

impl Ledger {
    pub fn balanced_branchy(&mut self, heal: bool) {
        self.detected += 1;
        if heal {
            self.corrected += 1;
        } else {
            self.quarantined += 1;
        }
    }

    pub fn lhs_only(&mut self) {
        self.detected += 1; // line 27: total bumped, no partition member
    }

    pub fn rhs_only(&mut self) {
        self.corrected += 1; // line 31: member bumped, no total
    }
}

pub fn dotted_balanced(c: &mut Counters) {
    c.incr("ftl.integrity_detected");
    c.incr("ftl.integrity_quarantined");
}

pub fn dotted_lhs_only(c: &mut Counters) {
    c.incr("ftl.integrity_detected"); // line 41: dotted total, no member
}

pub fn reads_are_not_bumps(l: &Ledger) -> u64 {
    l.detected + l.quarantined + l.corrected
}
