//! Cross-crate A1 fixture, ssd layer: the recovery entry point. The
//! panic site is two crates away and reachable only through typed
//! field chains (`self.ftl` → `self.flash`).

pub struct Ssd {
    pub ftl: Ftl,
}

impl Ssd {
    pub fn rebuild_after_power_loss(&mut self) {
        self.ftl.replay_journal();
    }
}
