// A5 fixture: declared lock order is [stats, ring]. Line numbers are
// asserted exactly — append only at the end.

pub fn in_order(&self) {
    let s = self.stats.lock().unwrap();
    let r = self.ring.lock().unwrap(); // stats then ring: ok
    drop((s, r));
}

pub fn reversed(&self) {
    let r = self.ring.lock().unwrap();
    let s = self.stats.lock().unwrap(); // line 12: stats after ring
    drop((r, s));
}

pub fn unknown_mutex(&self) {
    let q = self.queue.lock().unwrap(); // line 17: queue not declared
    drop(q);
}
