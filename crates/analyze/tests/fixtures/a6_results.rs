//! A6 fixture: discarded `Result`s inside recovery scope.
//! Line numbers are asserted exactly — append only at the end.

pub struct ScrubError;

pub fn persist_remap() -> Result<(), ScrubError> {
    Err(ScrubError)
}

pub fn refresh_page() -> Result<u64, ScrubError> {
    Ok(0)
}

pub fn note_progress() -> u64 {
    7
}

pub struct Journal;

impl Journal {
    pub fn sync(&mut self) -> Result<(), ScrubError> {
        Err(ScrubError)
    }
}

pub struct Scrubber {
    pub journal: Journal,
}

impl Scrubber {
    pub fn recover(&mut self) {
        let _ = persist_remap(); // line 32: Result discarded
        let _ = note_progress(); // not a Result — clean
        self.journal.sync(); // line 34: unconsumed, resolved via field chain
        let r = refresh_page(); // bound — clean
        r.ok(); // line 36: bare `.ok();`
        let consumed = refresh_page().ok(); // bound — clean
        drop(consumed);
        if persist_remap().is_ok() {
            // consumed by the condition — clean
            note_progress(); // non-Result statement call — clean
        }
    }
}

pub fn driver() -> Result<(), ScrubError> {
    persist_remap()?; // propagated — clean
    Ok(())
}
