// A3 fixture: one base increment correctly paired with its phase tag,
// one split pair. Line numbers are asserted exactly — append only.

pub fn read_page(&mut self) {
    self.counters.incr("flash.read");
    self.counters.incr(self.op_phase.read_key()); // paired: ok
}

pub fn program_page(&mut self) {
    self.counters.incr("flash.program"); // line 10: missing program_key
    self.do_program();
}

pub fn erase_block(&mut self) {
    self.counters.incr("flash.erase");
    self.counters.incr(self.op_phase.erase_key()); // paired: ok
    self.counters.incr("flash.power_cuts"); // untracked key: not A3's concern
}
