//! Cross-crate A1 fixture, flash layer: the panic site reached from
//! the ssd entry, plus an uncalled sibling that must stay unflagged.

pub struct FlashDev {
    pub pages: Vec<u64>,
}

impl FlashDev {
    pub fn read_page(&mut self, idx: usize) -> u64 {
        self.pages[idx] // line 10: indexing, reachable from the entry
    }

    pub fn unreached_panics(&self) {
        panic!("uncalled code is out of the cone");
    }
}
