//! Machine-readable report output (`--format json`).
//!
//! The repository is offline-only and the analyzer is zero-dependency,
//! so the JSON is hand-rolled: a fixed schema, string escaping per RFC
//! 8259, nothing dynamic. `scripts/verify.sh` consumes this output as
//! its gating signal, so the schema is part of the CI contract:
//!
//! ```json
//! {
//!   "ok": true,
//!   "files_scanned": 57,
//!   "findings": [ {"rule": "A1", "file": "…", "line": 1, "col": 2,
//!                  "message": "…", "help": "…", "snippet": "…"} ],
//!   "stale_allows": [ {"rule": "A4", "file": "…", "snippet": "…",
//!                      "reason": "…", "snippet_mismatch": false} ],
//!   "rule_timings_us": [ {"rule": "graph", "us": 1234} ]
//! }
//! ```

use crate::Report;

/// Renders a [`Report`] as a JSON object (no trailing newline).
pub fn render(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"ok\": {},\n", report.is_clean()));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));

    out.push_str("  \"findings\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        push_field(&mut out, "rule", d.rule, false);
        push_field(&mut out, "file", &d.file, false);
        out.push_str(&format!("\"line\": {}, \"col\": {}, ", d.line, d.col));
        push_field(&mut out, "message", &d.message, false);
        push_field(&mut out, "help", &d.help, false);
        push_field(&mut out, "snippet", d.snippet.trim(), true);
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"stale_allows\": [");
    for (i, s) in report.unused_allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        push_field(&mut out, "rule", &s.entry.rule, false);
        push_field(&mut out, "file", &s.entry.file, false);
        push_field(&mut out, "snippet", &s.entry.snippet, false);
        push_field(&mut out, "reason", &s.entry.reason, false);
        out.push_str(&format!("\"snippet_mismatch\": {}", s.snippet_mismatch));
        out.push('}');
    }
    if !report.unused_allows.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"rule_timings_us\": [");
    for (i, t) in report.timings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"us\": {}}}",
            quote(t.rule),
            t.micros
        ));
    }
    if !report.timings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn push_field(out: &mut String, key: &str, value: &str, last: bool) {
    out.push_str(&format!("{}: {}", quote(key), quote(value)));
    if !last {
        out.push_str(", ");
    }
}

/// Quotes and escapes one JSON string.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowEntry;
    use crate::diag::Diagnostic;
    use crate::rules::RuleTiming;
    use crate::StaleAllow;

    #[test]
    fn renders_escaped_and_well_formed() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "A1",
                file: "crates/x/src/a.rs".into(),
                line: 3,
                col: 7,
                message: "`.unwrap()` in \"recovery\"".into(),
                help: "propagate".into(),
                snippet: "x.unwrap()\t// tab".into(),
            }],
            files_scanned: 2,
            unused_allows: vec![StaleAllow {
                entry: AllowEntry {
                    rule: "A4".into(),
                    file: "b.rs".into(),
                    snippet: "y as u32".into(),
                    line: None,
                    reason: "bounded".into(),
                },
                snippet_mismatch: true,
            }],
            timings: vec![RuleTiming {
                rule: "A1",
                micros: 42,
            }],
        };
        let s = render(&report);
        assert!(s.contains("\"ok\": false"));
        assert!(s.contains("\\\"recovery\\\""));
        assert!(s.contains("\\t// tab"));
        assert!(s.contains("\"snippet_mismatch\": true"));
        assert!(s.contains("{\"rule\": \"A1\", \"us\": 42}"));
        // Balanced braces/brackets (cheap well-formedness proxy that
        // ignores the escaped quotes inside strings).
        let unescaped: String = s.replace("\\\"", "");
        let mut in_str = false;
        let (mut braces, mut brackets) = (0i64, 0i64);
        for c in unescaped.chars() {
            match c {
                '"' => in_str = !in_str,
                '{' if !in_str => braces += 1,
                '}' if !in_str => braces -= 1,
                '[' if !in_str => brackets += 1,
                ']' if !in_str => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!(braces, 0);
        assert_eq!(brackets, 0);
    }

    #[test]
    fn empty_report_is_ok() {
        let report = Report {
            diagnostics: vec![],
            files_scanned: 0,
            unused_allows: vec![],
            timings: vec![],
        };
        let s = render(&report);
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"findings\": []"));
    }
}
