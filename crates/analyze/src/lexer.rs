//! A lightweight, dependency-free Rust lexer.
//!
//! Produces a flat token stream with line/column spans. It understands
//! exactly as much Rust as the rule engine needs: string/char/lifetime
//! disambiguation, raw and byte strings, nested block comments, and
//! numeric literals. Comments (including doc comments, and therefore
//! doc-test code) and whitespace are skipped, so rules never fire on
//! commented-out or documentation-only text.
//!
//! The lexer is intentionally *not* a parser: rules pattern-match on the
//! token stream with small amounts of bracket matching. That keeps the
//! checker fast, offline (no `syn`), and easy to extend.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `HashMap`, ...).
    Ident,
    /// Numeric literal (`0`, `1_000`, `0xFF`, `1.5`).
    Number,
    /// String literal of any flavor (`"x"`, `r#"x"#`, `b"x"`), with the
    /// token text holding the *unquoted* content.
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `!`, `[`, `::` is two `:`).
    Punct,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (unquoted for strings).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column of the token start.
    pub col: u32,
}

impl Token {
    /// True when this token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token stream. Unterminated constructs (string,
/// block comment) consume the rest of the input rather than erroring:
/// the checker's job is finding rule violations, not validating syntax.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.skip_line_comment(),
                '/' if self.peek(1) == Some('*') => self.skip_block_comment(),
                '"' => self.lex_string(line, col),
                'r' | 'b' if self.starts_prefixed_string() => self.lex_prefixed_string(line, col),
                '\'' => self.lex_quote(line, col),
                c if c.is_ascii_digit() => self.lex_number(line, col),
                c if c.is_alphabetic() || c == '_' => self.lex_ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn skip_line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn skip_block_comment(&mut self) {
        self.bump();
        self.bump(); // consume "/*"
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// True when the cursor sits on `r"`, `r#`, `b"`, `br"`, or `br#`.
    fn starts_prefixed_string(&self) -> bool {
        matches!(
            (self.peek(0), self.peek(1), self.peek(2)),
            (Some('r'), Some('"' | '#'), _)
                | (Some('b'), Some('"'), _)
                | (Some('b'), Some('r'), Some('"' | '#'))
        )
    }

    fn lex_prefixed_string(&mut self, line: u32, col: u32) {
        let mut raw = false;
        while let Some(c) = self.peek(0) {
            if c == 'r' {
                raw = true;
                self.bump();
            } else if c == 'b' {
                self.bump();
            } else {
                break;
            }
        }
        if raw {
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            // `r#ident` is a raw *identifier*, not a raw string: exactly
            // one hash followed by an identifier start. Mislexing it as a
            // string would swallow source until the next stray `"#` and
            // desynchronize every later token position.
            if self.peek(0) != Some('"') {
                if hashes == 1 && self.peek(0).is_some_and(|c| c.is_alphabetic() || c == '_') {
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokKind::Ident, text, line, col);
                } else {
                    // Not a raw string or raw identifier (`r#1`, stray
                    // hashes): emit what was consumed as punctuation so
                    // positions stay in sync.
                    for _ in 0..hashes {
                        self.push(TokKind::Punct, "#".to_string(), line, col);
                    }
                }
                return;
            }
            self.bump(); // opening quote
            let mut text = String::new();
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    // A raw string ends at `"` followed by `hashes` hashes.
                    for ahead in 0..hashes {
                        if self.peek(ahead) != Some('#') {
                            text.push(c);
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
            }
            self.push(TokKind::Str, text, line, col);
        } else {
            self.lex_string(line, col);
        }
    }

    fn lex_string(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    text.push(c);
                    if let Some(escaped) = self.bump() {
                        text.push(escaped);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line, col);
    }

    /// `'` starts either a lifetime (`'a`) or a char literal (`'a'`).
    fn lex_quote(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        if self.peek(0) == Some('\\') {
            // Escaped char literal.
            let mut text = String::new();
            while let Some(c) = self.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            self.push(TokKind::Char, text, line, col);
            return;
        }
        let is_ident_start = self.peek(0).is_some_and(|c| c.is_alphabetic() || c == '_');
        if is_ident_start && self.peek(1) != Some('\'') {
            // Lifetime: `'` + ident not closed by another quote.
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line, col);
        } else {
            // Char literal: one char then closing quote.
            let mut text = String::new();
            if let Some(c) = self.bump() {
                text.push(c);
            }
            if self.peek(0) == Some('\'') {
                self.bump();
            }
            self.push(TokKind::Char, text, line, col);
        }
    }

    fn lex_number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part, taking care not to eat the `..` of a range.
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.push(TokKind::Number, text, line, col);
    }

    fn lex_ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = kinds(
            r#"
            // unwrap() in a comment
            /* panic! /* nested */ still comment */
            let s = "unwrap()"; // and in a string
            "#,
        );
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "unwrap()"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "quote \" inside"));
    }

    #[test]
    fn spans_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifiers_do_not_swallow_source() {
        // `r#match` is a raw identifier; before the fix it opened a raw
        // string that consumed the rest of the file, so the `.unwrap()`
        // after it vanished from the token stream.
        let toks = lex("let r#match = 1;\nx.unwrap();");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "match"));
        let unwrap = toks
            .iter()
            .find(|t| t.is_ident("unwrap"))
            .expect("unwrap survives the raw identifier");
        assert_eq!((unwrap.line, unwrap.col), (2, 3));
    }

    #[test]
    fn raw_string_fences_keep_positions_in_sync() {
        // Multi-hash fences with embedded `"#` near-terminators: the
        // token *after* the string must land on the right line/column.
        let src = "let s = r##\"a \"# b\n\"# c\"##;\nafter";
        let toks = lex(src);
        let s = toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("raw string token");
        assert_eq!(s.text, "a \"# b\n\"# c");
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!((after.line, after.col), (3, 1));
    }

    #[test]
    fn nested_block_comments_keep_positions_in_sync() {
        let src = "/* outer /* inner\n/* deeper */ still\n*/ tail */ after";
        let toks = lex(src);
        assert_eq!(toks.len(), 1, "everything but `after` is comment");
        assert_eq!(
            (toks[0].text.as_str(), toks[0].line, toks[0].col),
            ("after", 3, 12)
        );
    }

    #[test]
    fn byte_strings_and_prefixed_raw_strings_lex() {
        let toks = lex(r###"let a = b"bytes"; let b = br#"raw "quote""#;"###);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["bytes", "raw \"quote\""]);
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let toks = kinds("for i in 0..total {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Number && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "total"));
    }
}
