//! Rustc-style diagnostics.

use std::fmt;

/// One finding: a rule violation at a precise source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`"A1"` ... `"A5"`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
    /// The offending source line, for context.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        if !self.snippet.is_empty() {
            writeln!(f, "     | {}", self.snippet.trim_end())?;
        }
        write!(f, "     = help: {}", self.help)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_like_rustc() {
        let d = Diagnostic {
            rule: "A1",
            file: "crates/ftl/src/ftl.rs".into(),
            line: 315,
            col: 14,
            message: "`.expect()` in recovery-reachable code".into(),
            help: "propagate a typed error".into(),
            snippet: "            .expect(\"slot holds data\")".into(),
        };
        let s = d.to_string();
        assert!(s.starts_with("crates/ftl/src/ftl.rs:315:14: error[A1]:"));
        assert!(s.contains("help: propagate"));
    }
}
