//! `checkin-analyze` — workspace-wide static invariant checker.
//!
//! The simulator's correctness claims (recoverability after power loss,
//! bit-for-bit deterministic replay, phase-attributed flash accounting)
//! rest on invariants the type system cannot express. This crate checks
//! them offline, with zero dependencies, over the raw source of every
//! crate in the workspace:
//!
//! * **A1-no-panic-in-recovery** — recovery paths must propagate typed
//!   errors, never panic ([`rules::a1`]);
//! * **A2-deterministic-sim** — no wall clock, ambient randomness, or
//!   hash-ordered containers in result-affecting crates ([`rules::a2`]);
//! * **A3-phase-tagged-counters** — flash op counters carry an `OpPhase`
//!   tag at the increment site ([`rules::a3`]);
//! * **A4-lpn-arithmetic** — no bare truncating casts on address
//!   arithmetic ([`rules::a4`]);
//! * **A5-lock-order** — locks acquired in the declared global order
//!   ([`rules::a5`]).
//!
//! Scopes and documented exceptions live in `analyze.toml` at the
//! workspace root ([`config`]). The checker is a gating tier in
//! `scripts/verify.sh`; run it directly with
//! `cargo run -p checkin-analyze`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::path::Path;

use config::{AllowEntry, AnalyzeConfig};
use diag::Diagnostic;
use scan::SourceFile;

/// Result of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by location.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Allowlist entries that matched no finding (likely stale).
    pub unused_allows: Vec<AllowEntry>,
}

/// Analyzes already-scanned sources under a config. This is the pure
/// core: `analyze_workspace` wraps it with filesystem discovery, and
/// tests feed it fixture sources directly.
pub fn analyze_sources(files: &[SourceFile], cfg: &AnalyzeConfig) -> Report {
    let mut raw = rules::run_all(files, cfg);
    raw.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    raw.dedup();

    let mut used = vec![false; cfg.allows.len()];
    let diagnostics: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            let hit = cfg.allows.iter().position(|a| {
                a.rule == d.rule && a.file == d.file && a.line.is_none_or(|l| l == d.line)
            });
            match hit {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        })
        .collect();
    let unused_allows = cfg
        .allows
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(a, _)| a.clone())
        .collect();

    Report {
        diagnostics,
        files_scanned: files.len(),
        unused_allows,
    }
}

/// Loads `analyze.toml` from `root`, scans `crates/*/src`, and runs
/// every rule.
///
/// # Errors
///
/// Returns a message when the config is missing/malformed or a source
/// tree cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("analyze.toml");
    let cfg_src = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = AnalyzeConfig::parse(&cfg_src).map_err(|e| format!("{}: {e}", cfg_path.display()))?;

    let mut files = Vec::new();
    for path in scan::workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(SourceFile::new(rel, &src));
    }
    Ok(analyze_sources(&files, &cfg))
}
