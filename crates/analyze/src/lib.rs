//! `checkin-analyze` — workspace-wide static invariant checker.
//!
//! The simulator's correctness claims (recoverability after power loss,
//! bit-for-bit deterministic replay, phase-attributed flash accounting,
//! a conserved integrity ledger) rest on invariants the type system
//! cannot express. This crate checks them offline, with zero
//! dependencies, over the raw source of every crate in the workspace:
//!
//! * **A1-no-panic-in-recovery** — recovery paths must propagate typed
//!   errors, never panic; reachability is cross-crate over the
//!   workspace call graph ([`rules::a1`], [`graph`]);
//! * **A2-deterministic-sim** — no wall clock, ambient randomness, or
//!   hash-ordered containers in result-affecting crates ([`rules::a2`]);
//! * **A3-phase-tagged-counters** — flash op counters carry an `OpPhase`
//!   tag at the increment site ([`rules::a3`]);
//! * **A4-lpn-arithmetic** — no bare truncating casts on address
//!   arithmetic ([`rules::a4`]);
//! * **A5-lock-order** — locks acquired in the declared order
//!   ([`rules::a5`]);
//! * **A6-no-discarded-Result** — recovery scopes never drop a
//!   `Result` ([`rules::a6`], [`dataflow`]);
//! * **A7-counter-conservation** — declared counter families stay
//!   balanced at every bump site ([`rules::a7`]);
//! * **A8-concurrency-readiness** — fleet-bound crates stay
//!   `Send`-clean and lock order holds across call edges ([`rules::a8`]).
//!
//! Scopes and documented exceptions live in `analyze.toml` at the
//! workspace root ([`config`]). The checker is a gating tier in
//! `scripts/verify.sh` (via `--format json`); run it directly with
//! `cargo run -p checkin-analyze`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dataflow;
pub mod diag;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod scan;

use std::path::Path;

use config::{AllowEntry, AnalyzeConfig};
use diag::Diagnostic;
use rules::RuleTiming;
use scan::SourceFile;

/// An allowlist entry that suppressed nothing, and why that is.
#[derive(Debug, Clone)]
pub struct StaleAllow {
    /// The entry itself.
    pub entry: AllowEntry,
    /// `true` when a finding of the same rule existed in the same file
    /// but its source line no longer contains the entry's snippet — the
    /// flagged code changed under the entry.
    pub snippet_mismatch: bool,
}

/// Result of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by location.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Allowlist entries that matched no finding (stale).
    pub unused_allows: Vec<StaleAllow>,
    /// Per-rule wall-clock timings.
    pub timings: Vec<RuleTiming>,
}

impl Report {
    /// True when the run gates green: no findings, no stale allows.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.unused_allows.is_empty()
    }
}

/// Analyzes already-scanned sources under a config. This is the pure
/// core: `analyze_workspace` wraps it with filesystem discovery, and
/// tests feed it fixture sources directly.
pub fn analyze_sources(files: &[SourceFile], cfg: &AnalyzeConfig) -> Report {
    let (mut raw, timings) = rules::run_all(files, cfg);
    raw.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    raw.dedup();

    // An allow matches on rule + file + snippet-substring of the flagged
    // line. The `line` field is a reader hint only: unrelated edits that
    // shift line numbers must not stale an entry or un-suppress a
    // finding.
    let rule_file_pairs: Vec<(String, String)> = raw
        .iter()
        .map(|d| (d.rule.to_string(), d.file.clone()))
        .collect();
    let mut used = vec![false; cfg.allows.len()];
    let diagnostics: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            let hit = cfg.allows.iter().position(|a| {
                a.rule == d.rule && a.file == d.file && d.snippet.contains(&a.snippet)
            });
            match hit {
                Some(i) => {
                    used[i] = true;
                    false
                }
                None => true,
            }
        })
        .collect();
    let unused_allows = cfg
        .allows
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(a, _)| StaleAllow {
            entry: a.clone(),
            snippet_mismatch: rule_file_pairs
                .iter()
                .any(|(r, f)| *r == a.rule && *f == a.file),
        })
        .collect();

    Report {
        diagnostics,
        files_scanned: files.len(),
        unused_allows,
        timings,
    }
}

/// Loads `analyze.toml` from `root`, scans `crates/*/src`, and runs
/// every rule.
///
/// # Errors
///
/// Returns a message when the config is missing/malformed or a source
/// tree cannot be read.
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("analyze.toml");
    let cfg_src = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = AnalyzeConfig::parse(&cfg_src).map_err(|e| format!("{}: {e}", cfg_path.display()))?;

    let mut files = Vec::new();
    for path in scan::workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files.push(SourceFile::new(rel, &src));
    }
    Ok(analyze_sources(&files, &cfg))
}
