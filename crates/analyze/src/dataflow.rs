//! Intraprocedural, token-level dataflow facts for one function body.
//!
//! This is deliberately *not* an AST: the lexer gives a flat token
//! stream, and this module recovers just enough expression structure for
//! the rules — local type bindings (`let t: MappingTable`,
//! `let t = MappingTable::with_capacity(..)`), every call site with a
//! parsed receiver chain (`self.ftl.rebuild(..)` →
//! base `self.ftl`, final method `rebuild`), and `let _ = …;` discard
//! statements. The call graph ([`crate::graph`]) combines these facts
//! with the workspace symbol table to resolve calls by receiver type;
//! A6 uses the discard ranges and statement-level calls to find dropped
//! `Result`s.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::scan::{match_bracket, match_bracket_back, SourceFile};

/// The leftmost element of a receiver chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainBase {
    /// `self.…` — resolve from the enclosing impl type.
    SelfKw,
    /// A local variable or parameter (resolved via `let` type hints).
    Local(String),
    /// An explicit path: `Type::method(…)` or `Self::method(…)`.
    Path(String),
}

/// One element of a receiver chain between the base and the final call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainSeg {
    /// Plain field access (`.ftl`): resolve via struct field types.
    Field(String),
    /// Intermediate method call (`.flash()`): resolve via return types.
    Call(String),
}

/// Parsed receiver of a method call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Leftmost element.
    pub base: ChainBase,
    /// Segments between the base and the final method name.
    pub segs: Vec<ChainSeg>,
}

/// Receiver classification of a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// Bare call `foo(…)` with no receiver.
    Bare,
    /// Method or associated call with a parseable receiver chain.
    Chain(Chain),
    /// A receiver exists but could not be parsed (computed expression,
    /// indexing, `?` in the chain, …) — never resolved, by design.
    Opaque,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Token index of the called name.
    pub name_idx: usize,
    /// Token index of the matching `)` closing the argument list.
    pub args_close: usize,
    /// Receiver classification.
    pub recv: Recv,
    /// Token index where the whole receiver chain starts (equals
    /// `name_idx` for bare calls).
    pub chain_start: usize,
}

impl CallSite {
    /// The called name's text.
    pub fn name<'a>(&self, f: &'a SourceFile) -> &'a str {
        &f.tokens[self.name_idx].text
    }
}

/// A `let _ = …;` statement: the token range of the discarded expression.
#[derive(Debug, Clone)]
pub struct Discard {
    /// Token index of the `let` keyword.
    pub let_tok: usize,
    /// Expression token range `[start, end)` (up to the closing `;`).
    pub expr: (usize, usize),
}

/// All facts extracted from one function body.
#[derive(Debug, Default)]
pub struct BodyFacts {
    /// `local name -> nominal type name` from `let x: T = …` bindings.
    pub local_types: BTreeMap<String, String>,
    /// `local name -> (type path, constructor)` from
    /// `let x = Type::ctor(…)` bindings; resolved via the constructor's
    /// return type by the call graph.
    pub local_ctors: BTreeMap<String, (String, String)>,
    /// Every call site, in token order.
    pub calls: Vec<CallSite>,
    /// Every `let _ = …;` discard.
    pub discards: Vec<Discard>,
}

/// Keywords that look like calls when followed by `(` but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "Some", "Ok", "Err", "None", "let",
    "else", "move", "in", "as", "box", "await",
];

/// Extracts [`BodyFacts`] from the body token range of one function.
pub fn body_facts(f: &SourceFile, body: (usize, usize)) -> BodyFacts {
    let toks = &f.tokens;
    let mut facts = BodyFacts::default();
    let (start, end) = (body.0, body.1.min(toks.len().saturating_sub(1)));
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // `let` bindings: type hints and `_` discards.
        if t.is_ident("let") && i < end {
            if let Some(adv) = scan_let(f, i, end, &mut facts) {
                i = adv;
                continue;
            }
        }
        // Call sites: identifier directly followed by `(`.
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !NOT_CALLS.contains(&t.text.as_str())
            && !is_definition_name(toks, i)
            && !is_macro_like(toks, i)
        {
            if let Some(close) = match_bracket(toks, i + 1, '(', ')') {
                let (recv, chain_start) = parse_receiver(f, i);
                facts.calls.push(CallSite {
                    name_idx: i,
                    args_close: close,
                    recv,
                    chain_start,
                });
            }
        }
        i += 1;
    }
    facts
}

/// True when the ident at `idx` is a definition, not a call: preceded by
/// `fn` (nested function/closure-in-trait definitions).
fn is_definition_name(toks: &[crate::lexer::Token], idx: usize) -> bool {
    idx > 0 && toks[idx - 1].is_ident("fn")
}

/// True when the ident at `idx` is a macro invocation name (`name!(…)`).
/// The `(` check in the caller already failed for these (the `!` sits
/// between), so this guards the reverse: `name` preceded by nothing
/// relevant but *followed* by `!` is not a call — defensive only.
fn is_macro_like(toks: &[crate::lexer::Token], idx: usize) -> bool {
    toks.get(idx + 1).is_some_and(|t| t.is_punct('!'))
}

/// Handles one `let` statement starting at `let_tok`; returns the token
/// index to resume scanning from (just after the `=`, so the RHS is
/// still scanned for call sites), or `None` when it isn't a binding the
/// pass understands.
fn scan_let(f: &SourceFile, let_tok: usize, end: usize, facts: &mut BodyFacts) -> Option<usize> {
    let toks = &f.tokens;
    let mut j = let_tok + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name_tok = j;
    if toks.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
        return None; // destructuring patterns — no single binding
    }
    let name = toks[j].text.clone();
    j += 1;
    // Optional `: Type` annotation.
    if toks.get(j).is_some_and(|t| t.is_punct(':'))
        && !toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
    {
        if let Some(ty) = crate::scan::parse_type_name(toks, j + 1) {
            if name != "_" {
                facts.local_types.insert(name.clone(), ty);
            }
        }
        // Skip ahead to the `=` (or statement end), tracking angle depth
        // so `let x: BTreeMap<u64, V> = …` does not stop early.
        let mut angle = 0i64;
        while j < end {
            let t = &toks[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle <= 0 && (t.is_punct('=') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
    }
    if !toks.get(j).is_some_and(|t| t.is_punct('=')) {
        return None; // `let x;` or something unexpected
    }
    // Reject `==` / `=>` (not bindings) — `=` must stand alone.
    if toks
        .get(j + 1)
        .is_some_and(|t| t.is_punct('=') || t.is_punct('>'))
    {
        return None;
    }
    let rhs_start = j + 1;
    if name == "_" {
        // Find the terminating `;` at expression nesting depth zero.
        let mut depth = 0i64;
        let mut k = rhs_start;
        while k <= end {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                break;
            }
            k += 1;
        }
        facts.discards.push(Discard {
            let_tok,
            expr: (rhs_start, k),
        });
    } else if name_tok == let_tok + 1 || toks[let_tok + 1].is_ident("mut") {
        // `let x = Type::ctor(…)`: record the constructor hint.
        if let Some((ty, ctor)) = parse_ctor_hint(toks, rhs_start) {
            facts.local_ctors.insert(name, (ty, ctor));
        }
    }
    Some(rhs_start)
}

/// Matches `Type::ctor(` (optionally `a::b::Type::ctor(`) at `start`,
/// returning `(Type, ctor)`.
fn parse_ctor_hint(toks: &[crate::lexer::Token], start: usize) -> Option<(String, String)> {
    let mut segs: Vec<String> = Vec::new();
    let mut j = start;
    loop {
        if toks.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
            return None;
        }
        segs.push(toks[j].text.clone());
        j += 1;
        if toks.get(j).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            j += 2;
            continue;
        }
        break;
    }
    if segs.len() < 2 || !toks.get(j).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let ctor = segs.pop()?;
    let ty = segs.pop()?;
    Some((ty, ctor))
}

/// Parses the receiver chain of the call whose name sits at `name_idx`.
/// Returns the receiver classification and the token index where the
/// chain starts (for statement-boundary checks).
fn parse_receiver(f: &SourceFile, name_idx: usize) -> (Recv, usize) {
    let toks = &f.tokens;
    if name_idx == 0 {
        return (Recv::Bare, name_idx);
    }
    // `Type::name(…)` / `Self::name(…)` path calls.
    if toks[name_idx - 1].is_punct(':') && name_idx >= 2 && toks[name_idx - 2].is_punct(':') {
        if name_idx >= 3 && toks[name_idx - 3].kind == TokKind::Ident {
            let ty = toks[name_idx - 3].text.clone();
            // Walk further `a::b::Type` segments left only to find the
            // chain start; the type name is the segment next to the call.
            let mut s = name_idx - 3;
            while s >= 2
                && toks[s - 1].is_punct(':')
                && toks[s - 2].is_punct(':')
                && s >= 3
                && toks[s - 3].kind == TokKind::Ident
            {
                s -= 3;
            }
            return (
                Recv::Chain(Chain {
                    base: ChainBase::Path(ty),
                    segs: Vec::new(),
                }),
                s,
            );
        }
        return (Recv::Opaque, name_idx);
    }
    if !toks[name_idx - 1].is_punct('.') {
        return (Recv::Bare, name_idx);
    }
    // Walk backward across `.seg` and `.seg(…)` elements.
    let mut segs: Vec<ChainSeg> = Vec::new();
    let mut k = name_idx - 2; // token before the `.`
    loop {
        let t = &f.tokens[k];
        if t.is_punct(')') {
            // `….seg(…).name(` — a method-call segment.
            let Some(open) = match_bracket_back(toks, k, '(', ')') else {
                return (Recv::Opaque, name_idx);
            };
            if open == 0 || toks[open - 1].kind != TokKind::Ident {
                return (Recv::Opaque, name_idx); // parenthesized expression
            }
            segs.push(ChainSeg::Call(toks[open - 1].text.clone()));
            if open >= 2 && toks[open - 2].is_punct('.') {
                if open < 3 {
                    return (Recv::Opaque, name_idx);
                }
                k = open - 3; // continue left of the `.`
                continue;
            }
            // The chain starts at this call: a bare or path call base.
            let name = &toks[open - 1];
            segs.pop();
            let seg_name = name.text.clone();
            if open >= 3 && toks[open - 2].is_punct(':') && toks[open - 3].is_punct(':') {
                // `Type::ctor(…).name(…)`
                if open >= 4 && toks[open - 4].kind == TokKind::Ident {
                    let ty = toks[open - 4].text.clone();
                    let mut chain_segs = vec![ChainSeg::Call(seg_name)];
                    chain_segs.extend(segs.into_iter().rev());
                    return (
                        Recv::Chain(Chain {
                            base: ChainBase::Path(ty),
                            segs: chain_segs,
                        }),
                        open - 4,
                    );
                }
                return (Recv::Opaque, name_idx);
            }
            return (Recv::Opaque, name_idx); // bare-call base: f().m() — skip
        }
        if t.kind == TokKind::Ident {
            if k > 0 && toks[k - 1].is_punct('.') {
                // A field (or `self`) segment with more chain to the left.
                if k >= 2 {
                    segs.push(ChainSeg::Field(t.text.clone()));
                    k -= 2;
                    continue;
                }
                return (Recv::Opaque, name_idx);
            }
            // Chain start.
            segs.reverse();
            let base = if t.text == "self" {
                ChainBase::SelfKw
            } else {
                ChainBase::Local(t.text.clone())
            };
            return (Recv::Chain(Chain { base, segs }), k);
        }
        return (Recv::Opaque, name_idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn facts(src: &str) -> (SourceFile, BodyFacts) {
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src);
        let body = f.fns[0].body;
        let facts = body_facts(&f, body);
        (f, facts)
    }

    #[test]
    fn chains_are_parsed() {
        let (f, facts) = facts(
            "fn a(&self) { self.ftl.rebuild(); self.flash().read(p); t.map(l, x); \
             MappingTable::with_capacity(4); }",
        );
        let by_name = |n: &str| facts.calls.iter().find(|c| c.name(&f) == n).unwrap();
        assert_eq!(
            by_name("rebuild").recv,
            Recv::Chain(Chain {
                base: ChainBase::SelfKw,
                segs: vec![ChainSeg::Field("ftl".into())],
            })
        );
        assert_eq!(
            by_name("read").recv,
            Recv::Chain(Chain {
                base: ChainBase::SelfKw,
                segs: vec![ChainSeg::Call("flash".into())],
            })
        );
        assert_eq!(
            by_name("map").recv,
            Recv::Chain(Chain {
                base: ChainBase::Local("t".into()),
                segs: vec![],
            })
        );
        assert_eq!(
            by_name("with_capacity").recv,
            Recv::Chain(Chain {
                base: ChainBase::Path("MappingTable".into()),
                segs: vec![],
            })
        );
    }

    #[test]
    fn let_hints_and_discards() {
        let (f, facts) = facts(
            "fn a() { let mut t = MappingTable::with_capacity(8); let x: Ftl = make(); \
             let _ = t.map(1, 2); let y = t.lookup(k); }",
        );
        assert_eq!(
            facts.local_ctors.get("t"),
            Some(&("MappingTable".into(), "with_capacity".into()))
        );
        assert_eq!(facts.local_types.get("x"), Some(&"Ftl".into()));
        assert_eq!(facts.discards.len(), 1);
        let d = &facts.discards[0];
        // The discarded expression covers the `t.map(1, 2)` call.
        let map_call = facts.calls.iter().find(|c| c.name(&f) == "map").unwrap();
        assert!(d.expr.0 <= map_call.name_idx && map_call.name_idx < d.expr.1);
        assert!(facts.calls.iter().any(|c| c.name(&f) == "lookup"));
    }

    #[test]
    fn opaque_receivers_stay_opaque() {
        let (f, facts) = facts("fn a() { (x + y).norm(); arr[0].go(); }");
        for c in &facts.calls {
            if c.name(&f) == "norm" || c.name(&f) == "go" {
                assert_eq!(c.recv, Recv::Opaque, "{}", c.name(&f));
            }
        }
    }

    #[test]
    fn macros_are_not_calls() {
        let (f, facts) = facts("fn a() { vec![1]; println!(\"x\"); real(); }");
        assert_eq!(facts.calls.len(), 1);
        assert_eq!(facts.calls[0].name(&f), "real");
    }
}
