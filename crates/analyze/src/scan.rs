//! Workspace discovery and per-file structural analysis.
//!
//! [`SourceFile`] augments the raw token stream with just enough
//! structure for the rules: which token ranges are test-only code
//! (`#[cfg(test)]` items and `#[test]` functions), and where each
//! function body starts and ends (for scoping and for the A1
//! reachability walk).

use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};

/// One function found in a file: its name and the token range of its
/// body (inclusive of the braces).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Index of the `fn` keyword token.
    pub decl_tok: usize,
    /// Token range `[start, end]` of the body braces.
    pub body: (usize, usize),
}

/// A lexed and structurally annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate name (`crates/<name>/...`), empty when not under `crates/`.
    pub crate_name: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Source lines (for diagnostics).
    pub lines: Vec<String>,
    /// Token index ranges `[start, end]` that are test-only code.
    pub test_ranges: Vec<(usize, usize)>,
    /// All function bodies, including test ones.
    pub fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Builds the analysis for one file's source text.
    pub fn new(rel: String, src: &str) -> SourceFile {
        let tokens = lex(src);
        let lines = src.lines().map(str::to_string).collect();
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let test_ranges = find_test_ranges(&tokens);
        let fns = find_fns(&tokens);
        SourceFile {
            rel,
            crate_name,
            tokens,
            lines,
            test_ranges,
            fns,
        }
    }

    /// True when token `idx` falls inside test-only code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| idx >= start && idx <= end)
    }

    /// The source line holding token `idx` (empty if out of range).
    pub fn line_of(&self, idx: usize) -> String {
        let line = self.tokens[idx].line as usize;
        self.lines
            .get(line.saturating_sub(1))
            .cloned()
            .unwrap_or_default()
    }

    /// Names of functions/methods called inside token range `[start, end]`:
    /// every identifier directly followed by `(`, minus control-flow
    /// keywords and macro invocations.
    pub fn calls_in(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            if t.kind == TokKind::Ident
                && self.tokens[i + 1].is_punct('(')
                && !matches!(
                    t.text.as_str(),
                    "if" | "while"
                        | "for"
                        | "match"
                        | "return"
                        | "loop"
                        | "fn"
                        | "Some"
                        | "Ok"
                        | "Err"
                        | "None"
                )
            {
                out.push(t.text.clone());
            }
            i += 1;
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Finds token ranges guarded by `#[cfg(test)]` (or `#[test]`): the next
/// item's brace-matched body, so rules skip test code.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            // Parse the attribute's bracket group.
            let Some(attr_end) = match_bracket(tokens, i + 1, '[', ']') else {
                break;
            };
            let is_test_attr = tokens[i + 2..attr_end].iter().any(|t| t.is_ident("test"));
            if is_test_attr {
                // Find the guarded item's body: the first `{` after the
                // attribute (skipping any further attributes), or stop at
                // `;` (e.g. `#[cfg(test)] use ...;`).
                let mut j = attr_end + 1;
                while j < tokens.len() {
                    if tokens[j].is_punct('#') && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        match match_bracket(tokens, j + 1, '[', ']') {
                            Some(e) => j = e + 1,
                            None => break,
                        }
                        continue;
                    }
                    if tokens[j].is_punct(';') {
                        out.push((i, j));
                        break;
                    }
                    if tokens[j].is_punct('{') {
                        let end = match_bracket(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
                        out.push((i, end));
                        break;
                    }
                    j += 1;
                }
                i = attr_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Finds every `fn name ... { body }`, brace-matching the body.
fn find_fns(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].kind == TokKind::Ident {
            let name = tokens[i + 1].text.clone();
            // Walk to the body `{`, stopping at `;` (trait method decls)
            // while skipping balanced parens/brackets/angle groups in the
            // signature (where-clauses can contain `{`-free bounds only).
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    j = match_bracket(tokens, j, '(', ')').map_or(tokens.len(), |e| e + 1);
                    continue;
                }
                if tokens[j].is_punct(';') {
                    break;
                }
                if tokens[j].is_punct('{') {
                    let end = match_bracket(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
                    body = Some((j, end));
                    break;
                }
                j += 1;
            }
            if let Some(body) = body {
                out.push(FnSpan {
                    name,
                    decl_tok: i,
                    body,
                });
                // Continue scanning *inside* the body too (nested fns);
                // just move past the `fn name` pair.
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Index of the token closing the bracket opened at `open_idx`.
pub fn match_bracket(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `crates/*/src` (and the crate
/// roots' `build.rs`, if any), returning workspace-relative paths in
/// sorted order. `tests/`, `benches/`, and `target/` trees are skipped:
/// the rules govern shipped code, not test harnesses.
///
/// # Errors
///
/// Returns a description of the first unreadable directory.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_is_marked() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            r#"
fn shipped() { let v = x[0]; }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
"#,
        );
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test(unwrap_idx));
        let shipped_idx = f.tokens.iter().position(|t| t.is_ident("shipped")).unwrap();
        assert!(!f.in_test(shipped_idx));
    }

    #[test]
    fn fn_bodies_and_calls() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "fn a() { b(); c.d(); if x { e(); } }\nfn b() {}",
        );
        assert_eq!(f.fns.len(), 2); // a and b
        let a = f.fns.iter().find(|s| s.name == "a").unwrap();
        let calls = f.calls_in(a.body.0, a.body.1);
        assert!(calls.contains(&"b".to_string()));
        assert!(calls.contains(&"d".to_string()));
        assert!(calls.contains(&"e".to_string()));
        assert!(!calls.contains(&"if".to_string()));
    }

    #[test]
    fn crate_name_extraction() {
        let f = SourceFile::new("crates/ftl/src/ftl.rs".into(), "");
        assert_eq!(f.crate_name, "ftl");
    }
}
