//! Workspace discovery and per-file structural analysis.
//!
//! [`SourceFile`] augments the raw token stream with just enough
//! structure for the rules: which token ranges are test-only code
//! (`#[cfg(test)]` items and `#[test]` functions), where each function
//! body starts and ends, which `impl` block a function lives in (its
//! `Self` type), what each function returns, and the field types of
//! every struct. The impl/field/return information is what lets the
//! call graph ([`crate::graph`]) resolve method calls by receiver type
//! across crate boundaries.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};

/// One function found in a file: its name, signature facts, and the
/// token range of its body (inclusive of the braces).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name (the identifier after `fn`).
    pub name: String,
    /// Index of the `fn` keyword token.
    pub decl_tok: usize,
    /// Token range `[start, end]` of the body braces.
    pub body: (usize, usize),
    /// `Self` type of the enclosing `impl` block, when the function is a
    /// method or associated function (`impl Ftl { fn … }` → `"Ftl"`).
    pub impl_type: Option<String>,
    /// Last path segment of the declared return type (`-> Result<…>` →
    /// `"Result"`, `-> &Ftl` → `"Ftl"`); `None` for `()` or tuples.
    /// `Self` is already substituted with the impl type.
    pub ret_type: Option<String>,
}

impl FnSpan {
    /// True when the function's declared return type is a `Result`.
    pub fn returns_result(&self) -> bool {
        self.ret_type.as_deref() == Some("Result")
    }
}

/// A struct definition with named fields: `(field name, type name)`
/// pairs, where the type name is the last angle-depth-0 path segment
/// (`ftl: Ftl` → `("ftl", "Ftl")`, `inner: Option<Arc<…>>` →
/// `("inner", "Option")`).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `(field, type name)` pairs, named-field structs only.
    pub fields: Vec<(String, String)>,
}

/// A lexed and structurally annotated source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Crate name (`crates/<name>/...`), empty when not under `crates/`.
    pub crate_name: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Source lines (for diagnostics).
    pub lines: Vec<String>,
    /// Token index ranges `[start, end]` that are test-only code.
    pub test_ranges: Vec<(usize, usize)>,
    /// All function bodies, including test ones.
    pub fns: Vec<FnSpan>,
    /// Struct definitions with named fields.
    pub structs: Vec<StructDef>,
}

impl SourceFile {
    /// Builds the analysis for one file's source text.
    pub fn new(rel: String, src: &str) -> SourceFile {
        let tokens = lex(src);
        let lines = src.lines().map(str::to_string).collect();
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_string();
        let test_ranges = find_test_ranges(&tokens);
        let impls = find_impls(&tokens);
        let fns = find_fns(&tokens, &impls);
        let structs = find_structs(&tokens);
        SourceFile {
            rel,
            crate_name,
            tokens,
            lines,
            test_ranges,
            fns,
            structs,
        }
    }

    /// True when token `idx` falls inside test-only code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| idx >= start && idx <= end)
    }

    /// The source line holding token `idx` (empty if out of range).
    pub fn line_of(&self, idx: usize) -> String {
        let line = self.tokens[idx].line as usize;
        self.lines
            .get(line.saturating_sub(1))
            .cloned()
            .unwrap_or_default()
    }

    /// Names of functions/methods called inside token range `[start, end]`:
    /// every identifier directly followed by `(`, minus control-flow
    /// keywords and tuple-struct constructors.
    pub fn calls_in(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            if t.kind == TokKind::Ident
                && self.tokens[i + 1].is_punct('(')
                && !matches!(
                    t.text.as_str(),
                    "if" | "while"
                        | "for"
                        | "match"
                        | "return"
                        | "loop"
                        | "fn"
                        | "Some"
                        | "Ok"
                        | "Err"
                        | "None"
                )
            {
                out.push(t.text.clone());
            }
            i += 1;
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Finds token ranges guarded by `#[cfg(test)]` (or `#[test]`): the next
/// item's brace-matched body, so rules skip test code.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            // Parse the attribute's bracket group.
            let Some(attr_end) = match_bracket(tokens, i + 1, '[', ']') else {
                break;
            };
            let is_test_attr = tokens[i + 2..attr_end].iter().any(|t| t.is_ident("test"));
            if is_test_attr {
                // Find the guarded item's body: the first `{` after the
                // attribute (skipping any further attributes), or stop at
                // `;` (e.g. `#[cfg(test)] use ...;`).
                let mut j = attr_end + 1;
                while j < tokens.len() {
                    if tokens[j].is_punct('#') && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                    {
                        match match_bracket(tokens, j + 1, '[', ']') {
                            Some(e) => j = e + 1,
                            None => break,
                        }
                        continue;
                    }
                    if tokens[j].is_punct(';') {
                        out.push((i, j));
                        break;
                    }
                    if tokens[j].is_punct('{') {
                        let end = match_bracket(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
                        out.push((i, end));
                        break;
                    }
                    j += 1;
                }
                i = attr_end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// One `impl` block: the `Self` type name and the brace-matched body
/// token range.
#[derive(Debug, Clone)]
struct ImplSpan {
    self_type: String,
    body: (usize, usize),
}

/// Finds every `impl [<…>] Type { … }` / `impl [<…>] Trait for Type { … }`
/// and records the `Self` type name: the last identifier of the type
/// path at angle-bracket depth zero (so generic arguments are skipped).
fn find_impls(tokens: &[Token]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut angle = 0i64;
        let mut self_type = String::new();
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 {
                if t.is_punct('{') {
                    break;
                }
                if t.is_punct(';') {
                    // e.g. `impl Trait for Type;` is not real Rust, but an
                    // auto-trait assertion macro could look like it; bail.
                    self_type.clear();
                    break;
                }
                if t.is_ident("for") {
                    // `impl Trait for Type`: the Self type starts over.
                    self_type.clear();
                } else if t.is_ident("where") {
                    // Bounds after `where` are not part of the Self type.
                    break;
                } else if t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "unsafe")
                {
                    self_type = t.text.clone();
                }
            }
            j += 1;
        }
        // `j` sits at `{` (or end); the impl body is its brace group.
        if j < tokens.len() && tokens[j].is_punct('{') {
            let end = match_bracket(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
            if !self_type.is_empty() {
                out.push(ImplSpan {
                    self_type,
                    body: (j, end),
                });
            }
            // Do not skip the body: nested impls (rare) and the fns inside
            // are found by their own scans.
        }
        i = j.max(i + 1);
    }
    out
}

/// Finds every `fn name ... { body }`, brace-matching the body, and
/// attributes each to its innermost enclosing impl block (if any).
fn find_fns(tokens: &[Token], impls: &[ImplSpan]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_ident("fn") && tokens[i + 1].kind == TokKind::Ident {
            let name = tokens[i + 1].text.clone();
            let impl_type = impls
                .iter()
                .filter(|s| s.body.0 <= i && i <= s.body.1)
                .min_by_key(|s| s.body.1 - s.body.0)
                .map(|s| s.self_type.clone());
            // Walk to the body `{`, stopping at `;` (trait method decls)
            // while skipping balanced paren groups in the signature. The
            // return type, if any, sits between `->` and the body.
            let mut j = i + 2;
            let mut body = None;
            let mut ret_type = None;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    j = match_bracket(tokens, j, '(', ')').map_or(tokens.len(), |e| e + 1);
                    continue;
                }
                if tokens[j].is_punct('-') && tokens.get(j + 1).is_some_and(|t| t.is_punct('>')) {
                    ret_type = parse_type_name(tokens, j + 2);
                    j += 2;
                    continue;
                }
                if tokens[j].is_punct(';') {
                    break;
                }
                if tokens[j].is_punct('{') {
                    let end = match_bracket(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
                    body = Some((j, end));
                    break;
                }
                j += 1;
            }
            if let Some(body) = body {
                // `-> Self` means the impl type.
                if ret_type.as_deref() == Some("Self") {
                    ret_type = impl_type.clone();
                }
                out.push(FnSpan {
                    name,
                    decl_tok: i,
                    body,
                    impl_type,
                    ret_type,
                });
                // Continue scanning *inside* the body too (nested fns);
                // just move past the `fn name` pair.
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Parses the *name* of the type starting at token `start`: skips
/// references, `mut`, `dyn`, `impl`, and lifetimes, then reads one path
/// (`a::b::C`) and returns its last segment. Tuples, slices, arrays, and
/// fn-pointer types yield `None` — the callers only need nominal types.
pub(crate) fn parse_type_name(tokens: &[Token], start: usize) -> Option<String> {
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('&')
            || t.kind == TokKind::Lifetime
            || t.is_ident("mut")
            || t.is_ident("dyn")
            || t.is_ident("impl")
        {
            j += 1;
            continue;
        }
        break;
    }
    if tokens.get(j).map(|t| t.kind) != Some(TokKind::Ident) {
        return None;
    }
    let mut name = tokens[j].text.clone();
    j += 1;
    // Follow `::` path segments (the last one wins), stopping at generic
    // arguments, the function body, or anything else.
    while j + 1 < tokens.len()
        && tokens[j].is_punct(':')
        && tokens[j + 1].is_punct(':')
        && tokens.get(j + 2).map(|t| t.kind) == Some(TokKind::Ident)
    {
        name = tokens[j + 2].text.clone();
        j += 3;
    }
    Some(name)
}

/// Finds every named-field struct and records `(field, type name)` pairs.
fn find_structs(tokens: &[Token]) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if !(tokens[i].is_ident("struct") && tokens[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = tokens[i + 1].text.clone();
        let mut j = i + 2;
        // Skip generics between the name and the body.
        let mut angle = 0i64;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0 {
                if t.is_punct('{') || t.is_punct('(') || t.is_punct(';') {
                    break;
                }
                if t.is_ident("where") {
                    // `struct S<T> where …;` — no named fields to index.
                    break;
                }
            }
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct('{') {
            // Tuple or unit struct: recorded, but with no named fields.
            out.push(StructDef {
                name,
                fields: Vec::new(),
            });
            i += 2;
            continue;
        }
        let end = match_bracket(tokens, j, '{', '}').unwrap_or(tokens.len() - 1);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < end {
            // Skip attributes and visibility.
            if tokens[k].is_punct('#') && tokens.get(k + 1).is_some_and(|t| t.is_punct('[')) {
                k = match_bracket(tokens, k + 1, '[', ']').map_or(end, |e| e + 1);
                continue;
            }
            if tokens[k].is_ident("pub") {
                k += 1;
                if tokens.get(k).is_some_and(|t| t.is_punct('(')) {
                    k = match_bracket(tokens, k, '(', ')').map_or(end, |e| e + 1);
                }
                continue;
            }
            // `field : Type , …`
            if tokens[k].kind == TokKind::Ident
                && tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(ty) = parse_type_name(tokens, k + 2) {
                    fields.push((tokens[k].text.clone(), ty));
                }
            }
            // Advance to the comma ending this field, tracking nesting so
            // commas inside generic args or tuples don't end it early.
            let (mut a, mut p, mut b) = (0i64, 0i64, 0i64);
            while k < end {
                let t = &tokens[k];
                if t.is_punct('<') {
                    a += 1;
                } else if t.is_punct('>') {
                    a -= 1;
                } else if t.is_punct('(') {
                    p += 1;
                } else if t.is_punct(')') {
                    p -= 1;
                } else if t.is_punct('[') {
                    b += 1;
                } else if t.is_punct(']') {
                    b -= 1;
                } else if t.is_punct(',') && a <= 0 && p <= 0 && b <= 0 {
                    break;
                }
                k += 1;
            }
            k += 1;
        }
        out.push(StructDef { name, fields });
        i = j;
    }
    out
}

/// Index of the token closing the bracket opened at `open_idx`.
pub fn match_bracket(tokens: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the token opening the bracket closed at `close_idx`
/// (backward bracket matching, for receiver-chain parsing).
pub fn match_bracket_back(
    tokens: &[Token],
    close_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i64;
    for i in (0..=close_idx).rev() {
        let t = &tokens[i];
        if t.is_punct(close) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Recursively collects `.rs` files under `crates/*/src` (and the crate
/// roots' `build.rs`, if any), returning workspace-relative paths in
/// sorted order. `tests/`, `benches/`, and `target/` trees are skipped:
/// the rules govern shipped code, not test harnesses.
///
/// # Errors
///
/// Returns a description of the first unreadable directory.
pub fn workspace_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_is_marked() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            r#"
fn shipped() { let v = x[0]; }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
"#,
        );
        let unwrap_idx = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(f.in_test(unwrap_idx));
        let shipped_idx = f.tokens.iter().position(|t| t.is_ident("shipped")).unwrap();
        assert!(!f.in_test(shipped_idx));
    }

    #[test]
    fn fn_bodies_and_calls() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "fn a() { b(); c.d(); if x { e(); } }\nfn b() {}",
        );
        assert_eq!(f.fns.len(), 2); // a and b
        let a = f.fns.iter().find(|s| s.name == "a").unwrap();
        let calls = f.calls_in(a.body.0, a.body.1);
        assert!(calls.contains(&"b".to_string()));
        assert!(calls.contains(&"d".to_string()));
        assert!(calls.contains(&"e".to_string()));
        assert!(!calls.contains(&"if".to_string()));
    }

    #[test]
    fn crate_name_extraction() {
        let f = SourceFile::new("crates/ftl/src/ftl.rs".into(), "");
        assert_eq!(f.crate_name, "ftl");
    }

    #[test]
    fn impl_types_are_attributed() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            r#"
impl Ftl {
    fn rebuild(&mut self) -> Result<Stats, RecoveryError> { Ok(Stats) }
    fn flash(&self) -> &FlashArray { &self.flash }
}
impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
impl<T: Clone> Holder<T> {
    fn make() -> Self { Holder }
}
fn free() {}
"#,
        );
        let get = |n: &str| f.fns.iter().find(|s| s.name == n).unwrap();
        assert_eq!(get("rebuild").impl_type.as_deref(), Some("Ftl"));
        assert!(get("rebuild").returns_result());
        assert_eq!(get("flash").ret_type.as_deref(), Some("FlashArray"));
        assert_eq!(get("fmt").impl_type.as_deref(), Some("Metrics"));
        assert_eq!(get("make").impl_type.as_deref(), Some("Holder"));
        assert_eq!(
            get("make").ret_type.as_deref(),
            Some("Holder"),
            "`-> Self` resolves to the impl type"
        );
        assert_eq!(get("free").impl_type, None);
    }

    #[test]
    fn struct_fields_are_indexed() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            r#"
pub struct Ssd {
    ftl: Ftl,
    pub counters: CounterSet,
    inner: Option<Arc<Mutex<TraceRing>>>,
    pair: (u64, u64),
    map: BTreeMap<u64, BufSlot>,
}
struct Tuple(u64);
"#,
        );
        assert_eq!(f.structs.len(), 2);
        let ssd = &f.structs[0];
        assert_eq!(ssd.name, "Ssd");
        let field = |n: &str| {
            ssd.fields
                .iter()
                .find(|(f, _)| f == n)
                .map(|(_, t)| t.as_str())
        };
        assert_eq!(field("ftl"), Some("Ftl"));
        assert_eq!(field("counters"), Some("CounterSet"));
        assert_eq!(field("inner"), Some("Option"));
        assert_eq!(field("map"), Some("BTreeMap"));
        assert_eq!(field("pair"), None, "tuple types have no nominal name");
        assert!(f.structs[1].fields.is_empty());
    }

    #[test]
    fn qualified_return_types_take_the_last_segment() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "fn f() -> std::io::Result<()> { Ok(()) }\nfn g() -> Option<u64> { None }",
        );
        assert!(f.fns[0].returns_result());
        assert_eq!(f.fns[1].ret_type.as_deref(), Some("Option"));
        assert!(!f.fns[1].returns_result());
    }
}
