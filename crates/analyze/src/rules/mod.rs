//! The rule engine: each rule maps the scanned workspace to diagnostics.
//!
//! | id | invariant |
//! |----|-----------|
//! | A1 | no panic paths (`unwrap`/`expect`/`panic!`-family/indexing) in recovery code |
//! | A2 | no wall-clock, randomness, or hash-ordered containers in deterministic crates |
//! | A3 | flash op-counter increments carry an `OpPhase` tag at the same site |
//! | A4 | no bare truncating casts on LPN/PPN/sector arithmetic |
//! | A5 | locks are acquired in the declared order |

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::scan::SourceFile;

/// Runs every rule over the scanned files.
pub fn run_all(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(a1::run(files, cfg));
    out.extend(a2::run(files, cfg));
    out.extend(a3::run(files, cfg));
    out.extend(a4::run(files, cfg));
    out.extend(a5::run(files, cfg));
    out
}

/// Builds a diagnostic anchored at token `idx` of `file`.
pub(crate) fn at(
    rule: &'static str,
    file: &SourceFile,
    idx: usize,
    message: String,
    help: &str,
) -> Diagnostic {
    let tok = &file.tokens[idx];
    Diagnostic {
        rule,
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        message,
        help: help.to_string(),
        snippet: file.line_of(idx),
    }
}
