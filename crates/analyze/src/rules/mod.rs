//! The rule engine: each rule maps the scanned workspace to diagnostics.
//!
//! | id | invariant |
//! |----|-----------|
//! | A1 | no panic paths (`unwrap`/`expect`/`panic!`-family/indexing) in recovery code |
//! | A2 | no wall-clock, randomness, or hash-ordered containers in deterministic crates |
//! | A3 | flash op-counter increments carry an `OpPhase` tag at the same site |
//! | A4 | no bare truncating casts on LPN/PPN/sector arithmetic |
//! | A5 | locks are acquired in the declared order (lexical, per function) |
//! | A6 | no discarded `Result` in recovery scopes |
//! | A7 | counter families stay conserved at every bump site |
//! | A8 | fleet-bound crates stay `Send`-clean; lock order holds across call edges |
//!
//! A1, A6, and A8 run over the workspace call graph ([`crate::graph`]);
//! the rest are per-file token scans.

pub mod a1;
pub mod a2;
pub mod a3;
pub mod a4;
pub mod a5;
pub mod a6;
pub mod a7;
pub mod a8;

use std::time::Instant;

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::graph::Workspace;
use crate::scan::SourceFile;

/// Wall-clock cost of one rule pass (for the verify.sh timing report).
#[derive(Debug, Clone)]
pub struct RuleTiming {
    /// Rule id, or `"graph"` for the shared symbol-table build.
    pub rule: &'static str,
    /// Elapsed microseconds.
    pub micros: u128,
}

/// Runs every rule over the scanned files, timing each pass.
pub fn run_all(files: &[SourceFile], cfg: &AnalyzeConfig) -> (Vec<Diagnostic>, Vec<RuleTiming>) {
    let mut out = Vec::new();
    let mut timings = Vec::new();

    let t0 = Instant::now();
    let ws = Workspace::build(files);
    timings.push(RuleTiming {
        rule: "graph",
        micros: t0.elapsed().as_micros(),
    });

    let mut timed = |rule: &'static str, diags: Vec<Diagnostic>, started: Instant| {
        timings.push(RuleTiming {
            rule,
            micros: started.elapsed().as_micros(),
        });
        out.extend(diags);
    };
    let t = Instant::now();
    timed("A1", a1::run(&ws, cfg), t);
    let t = Instant::now();
    timed("A2", a2::run(files, cfg), t);
    let t = Instant::now();
    timed("A3", a3::run(files, cfg), t);
    let t = Instant::now();
    timed("A4", a4::run(files, cfg), t);
    let t = Instant::now();
    timed("A5", a5::run(files, cfg), t);
    let t = Instant::now();
    timed("A6", a6::run(&ws, cfg), t);
    let t = Instant::now();
    timed("A7", a7::run(files, cfg), t);
    let t = Instant::now();
    timed("A8", a8::run(&ws, cfg), t);

    (out, timings)
}

/// Builds a diagnostic anchored at token `idx` of `file`.
pub(crate) fn at(
    rule: &'static str,
    file: &SourceFile,
    idx: usize,
    message: String,
    help: &str,
) -> Diagnostic {
    let tok = &file.tokens[idx];
    Diagnostic {
        rule,
        file: file.rel.clone(),
        line: tok.line,
        col: tok.col,
        message,
        help: help.to_string(),
        snippet: file.line_of(idx),
    }
}
