//! A7-counter-conservation.
//!
//! PR 7's integrity ledger promises `detected == quarantined +
//! corrected` — every corrupt unit the FTL notices is either walled off
//! or healed, never silently dropped from the books. The invariant is
//! only as strong as its bump sites: one new code path that increments
//! `detected` without its counterpart breaks the ledger forever after.
//!
//! Counter families are declared in `analyze.toml` as
//! `"lhs = rhs1 + rhs2"` equations. Within every non-test function of
//! the scoped crates, conservation is checked *per function*: if any
//! member of a family is bumped, its counterpart side must be bumped in
//! the same function (the lhs requires at least one rhs, and any rhs
//! requires the lhs). Branchy code like `match … { A => quarantined,
//! B => corrected }` after a single `detected` bump satisfies this —
//! the rule is presence-based, not count-based, exactly because the rhs
//! members partition the lhs.
//!
//! Two bump shapes are recognized:
//!
//! * dotted members (`ftl.integrity_detected`) match string-keyed
//!   counter calls: `incr("ftl.integrity_detected")` / `add("…", n)`;
//! * bare members (`detected`) match compound assignment on an
//!   identifier: `detected += …` (including field forms like
//!   `report.detected += 1`).

use crate::config::{AnalyzeConfig, CounterFamily};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::at;
use crate::scan::SourceFile;

/// Runs A7 over the workspace.
pub fn run(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.a7_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        for span in &f.fns {
            if f.in_test(span.decl_tok) {
                continue;
            }
            for family in &cfg.a7_families {
                check_family(f, span.body, family, &mut out);
            }
        }
    }
    out
}

fn check_family(
    f: &SourceFile,
    body: (usize, usize),
    family: &CounterFamily,
    out: &mut Vec<Diagnostic>,
) {
    let lhs_sites = bump_sites(f, body, &family.lhs);
    let rhs_sites: Vec<usize> = family
        .rhs
        .iter()
        .flat_map(|m| bump_sites(f, body, m))
        .collect();
    if !lhs_sites.is_empty() && rhs_sites.is_empty() {
        out.push(at(
            "A7",
            f,
            lhs_sites[0],
            format!(
                "`{}` is bumped without any of {} in the same function",
                family.lhs,
                family
                    .rhs
                    .iter()
                    .map(|m| format!("`{m}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            "bump the counterpart in the same function so the ledger equation stays conserved, \
             or move both bumps behind one helper",
        ));
    }
    if lhs_sites.is_empty() && !rhs_sites.is_empty() {
        let mut sites = rhs_sites;
        sites.sort_unstable();
        out.push(at(
            "A7",
            f,
            sites[0],
            format!(
                "a member of the `{}` family is bumped without `{}` in the same function",
                family.lhs, family.lhs
            ),
            "bump the family's total alongside its partition member, or move both bumps behind \
             one helper",
        ));
    }
}

/// Token indices where `member` is bumped inside `body`.
fn bump_sites(f: &SourceFile, body: (usize, usize), member: &str) -> Vec<usize> {
    let toks = &f.tokens;
    let end = body.1.min(toks.len().saturating_sub(1));
    let mut out = Vec::new();
    for i in body.0..=end {
        if f.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if member.contains('.') {
            // `incr("a.b")` / `add("a.b", n)` — the key is a Str token
            // directly inside a counter-call argument list.
            if t.kind == TokKind::Str
                && t.text == member
                && i >= 2
                && toks[i - 1].is_punct('(')
                && (toks[i - 2].is_ident("incr") || toks[i - 2].is_ident("add"))
            {
                out.push(i);
            }
        } else {
            // `member += …` (identifier or field position).
            if t.is_ident(member)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('+'))
                && toks.get(i + 2).is_some_and(|n| n.is_punct('='))
            {
                out.push(i);
            }
        }
    }
    out
}
