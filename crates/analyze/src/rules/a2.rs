//! A2-deterministic-sim.
//!
//! The simulator's claim to correctness is replayability: the same seed
//! and workload must produce byte-identical reports, counters, and CSV
//! output. Three things silently break that:
//!
//! * `HashMap`/`HashSet` — iteration order is randomized per process
//!   (SipHash keys), so any iteration feeding output or scheduling
//!   decisions diverges between runs;
//! * `std::time::Instant`/`SystemTime` — wall-clock values differ every
//!   run (the simulator has its own virtual clock);
//! * `rand`-style ambient randomness — unseeded entropy.
//!
//! The rule bans the identifiers outright in the configured crates;
//! deterministic replacements (`BTreeMap`, `BTreeSet`, the sim clock,
//! seeded xorshift) exist for every use.

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::at;
use crate::scan::SourceFile;

const BANNED: &[(&str, &str, &str)] = &[
    (
        "HashMap",
        "`HashMap` has nondeterministic iteration order",
        "use `BTreeMap` so iteration (and any derived output) is stable across runs",
    ),
    (
        "HashSet",
        "`HashSet` has nondeterministic iteration order",
        "use `BTreeSet` so iteration (and any derived output) is stable across runs",
    ),
    (
        "Instant",
        "`std::time::Instant` reads the wall clock",
        "use the simulator's virtual clock (`SimTime`) for result-affecting time",
    ),
    (
        "SystemTime",
        "`SystemTime` reads the wall clock",
        "use the simulator's virtual clock (`SimTime`) for result-affecting time",
    ),
    (
        "thread_rng",
        "ambient randomness breaks replayability",
        "use the seeded deterministic PRNG carried by the simulation config",
    ),
    (
        "rand",
        "ambient randomness breaks replayability",
        "use the seeded deterministic PRNG carried by the simulation config",
    ),
];

/// Runs A2 over the workspace.
pub fn run(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.a2_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        for (i, tok) in f.tokens.iter().enumerate() {
            if tok.kind != TokKind::Ident || f.in_test(i) {
                continue;
            }
            if let Some((_, msg, help)) = BANNED.iter().find(|(name, _, _)| tok.text == *name) {
                out.push(at("A2", f, i, (*msg).to_string(), help));
            }
        }
    }
    out
}
