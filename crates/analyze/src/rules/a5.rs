//! A5-lock-order.
//!
//! Deadlock freedom by construction: every mutex in the workspace's
//! threaded code has a position in one global acquisition order
//! (`[a5] lock_order` in `analyze.toml`). Within a single function a
//! lock may only be taken if every lock already taken sits at an equal
//! or earlier position. Two findings:
//!
//! * a `.lock()` receiver that is not in the declared order at all
//!   (new mutexes must be slotted into the order deliberately), and
//! * a `.lock()` on an earlier-position receiver after a
//!   later-position one (a cycle candidate).
//!
//! The check is lexical and per-function; it does not model guards
//! dropped early. That is the conservative direction: a drop before the
//! second acquisition would make a flagged pair safe, and the fix is an
//! allowlist entry whose reason documents the drop.

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::at;
use crate::scan::SourceFile;

/// Runs A5 over the workspace.
pub fn run(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.a5_files.iter().any(|p| p == &f.rel) {
            continue;
        }
        for span in &f.fns {
            if f.in_test(span.decl_tok) {
                continue;
            }
            check_fn(f, span.body, cfg, &mut out);
        }
    }
    out
}

fn check_fn(f: &SourceFile, body: (usize, usize), cfg: &AnalyzeConfig, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    // (order position, receiver name) of the furthest lock taken so far.
    let mut furthest: Option<(usize, String)> = None;
    for i in body.0..=body.1.min(toks.len() - 1) {
        // `recv . lock (`
        if !(toks[i].is_ident("lock")
            && i >= 2
            && toks[i - 1].is_punct('.')
            && toks[i - 2].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('(')))
        {
            continue;
        }
        let recv = toks[i - 2].text.clone();
        let Some(pos) = cfg.a5_lock_order.iter().position(|l| l == &recv) else {
            out.push(at(
                "A5",
                f,
                i - 2,
                format!("lock receiver `{recv}` is not in the declared lock order"),
                "add it to `[a5] lock_order` in analyze.toml at its correct position (or rename \
                 the binding to the mutex's canonical name)",
            ));
            continue;
        };
        if let Some((max_pos, ref max_name)) = furthest {
            if pos < max_pos {
                out.push(at(
                    "A5",
                    f,
                    i - 2,
                    format!(
                        "lock `{recv}` acquired after `{max_name}`, violating the declared order"
                    ),
                    "acquire locks in `[a5] lock_order` order, or document an early guard drop \
                     with an allowlist entry",
                ));
            }
        }
        if furthest.as_ref().is_none_or(|(p, _)| pos > *p) {
            furthest = Some((pos, recv));
        }
    }
}
