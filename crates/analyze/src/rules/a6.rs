//! A6-no-discarded-Result.
//!
//! Inside recovery code (the A1 scope: `[a1] files` plus the cross-crate
//! cone from `[a1] entry_functions`), a dropped `Result` is corruption
//! detection thrown away — the scrub that noticed a bad checksum, the
//! remap that failed to persist. Three shapes are banned:
//!
//! * `let _ = fallible();` where the resolved callee returns `Result`
//!   (discarding a non-`Result` like `MappingTable::map`'s `Unlink` is
//!   fine — the symbol table supplies the return type);
//! * bare `….ok();` as a statement — converting to `Option` and then
//!   dropping it silences the error without observing it (chained
//!   `.ok().map(…)` consumes the value and is allowed);
//! * a statement-level call whose resolved callee returns `Result`,
//!   with the value neither bound, propagated (`?`), nor returned.
//!
//! Calls that do not resolve to a workspace definition are skipped: the
//! rule only fires when the return type is *known* to be `Result`, so it
//! cannot false-positive on std or trait-object calls.

use std::collections::BTreeSet;

use crate::config::AnalyzeConfig;
use crate::dataflow::CallSite;
use crate::diag::Diagnostic;
use crate::graph::{FnId, Workspace};
use crate::rules::{a1, at};

/// Runs A6 over the workspace.
pub fn run(ws: &Workspace<'_>, cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let sc = a1::scope(ws, cfg);
    let mut out = Vec::new();
    let mut seen_sites: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (id, ctx) in a1::scope_fns(ws, &sc) {
        check_fn(ws, id, &ctx, &mut seen_sites, &mut out);
    }
    out
}

fn check_fn(
    ws: &Workspace<'_>,
    id: FnId,
    ctx: &str,
    seen: &mut BTreeSet<(usize, usize)>,
    out: &mut Vec<Diagnostic>,
) {
    let f = &ws.files[id.0];
    let facts = ws.facts(id);

    // `let _ = …;` — flag when the top-level expression is a call whose
    // resolved callee returns `Result`.
    for d in &facts.discards {
        if f.in_test(d.let_tok) {
            continue;
        }
        let Some(call) = facts
            .calls
            .iter()
            .find(|c| c.name_idx >= d.expr.0 && c.args_close + 1 == d.expr.1)
        else {
            continue;
        };
        if returns_result(ws, id, call) && seen.insert((id.0, call.name_idx)) {
            out.push(at(
                "A6",
                f,
                call.name_idx,
                format!(
                    "`let _ =` discards the `Result` from `{}` {ctx}",
                    call.name(f)
                ),
                "handle the error or propagate it with `?`; a dropped `Result` on a recovery \
                 path is corruption undetected",
            ));
        }
    }

    for call in &facts.calls {
        if f.in_test(call.name_idx) {
            continue;
        }
        let statement_level = is_statement_level(f, call);
        // Bare `….ok();` as a statement.
        if call.name(f) == "ok"
            && statement_level
            && f.tokens
                .get(call.args_close + 1)
                .is_some_and(|t| t.is_punct(';'))
            && seen.insert((id.0, call.name_idx))
        {
            out.push(at(
                "A6",
                f,
                call.name_idx,
                format!("bare `.ok();` drops the error {ctx}"),
                "remove the `.ok()` and handle the `Result`, or consume the `Option` it returns",
            ));
            continue;
        }
        // Statement-level fallible call whose value is never consumed.
        if statement_level
            && f.tokens
                .get(call.args_close + 1)
                .is_some_and(|t| t.is_punct(';'))
            && returns_result(ws, id, call)
            && seen.insert((id.0, call.name_idx))
        {
            out.push(at(
                "A6",
                f,
                call.name_idx,
                format!(
                    "`Result` returned by `{}` is not consumed {ctx}",
                    call.name(f)
                ),
                "bind, match, or propagate the value with `?`; recovery errors must reach a \
                 typed error path",
            ));
        }
    }
}

/// True when the strictly-resolved callee's declared return type is
/// `Result`. Strict resolution only: guessing a std method's return
/// type from an unrelated same-name definition would make `map.insert`
/// look fallible.
fn returns_result(ws: &Workspace<'_>, caller: FnId, call: &CallSite) -> bool {
    ws.resolve_strict(caller, call)
        .is_some_and(|callee| ws.fn_span(callee).returns_result())
}

/// True when the call's receiver chain starts right after a statement
/// boundary (`;`, `{`, or `}`), i.e. the expression's value goes nowhere.
fn is_statement_level(f: &crate::scan::SourceFile, call: &CallSite) -> bool {
    if call.chain_start == 0 {
        return false;
    }
    let prev = &f.tokens[call.chain_start - 1];
    prev.is_punct(';') || prev.is_punct('{') || prev.is_punct('}')
}
