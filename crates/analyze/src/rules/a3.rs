//! A3-phase-tagged-counters.
//!
//! The paper's evaluation hinges on attributing flash traffic to a
//! phase: how many programs were checkpoint copies versus foreground
//! writes versus GC relocation. The flash array therefore pairs every
//! base op-counter increment with a phase-tagged one **at the same
//! site**:
//!
//! ```text
//! self.counters.incr("flash.read");
//! self.counters.incr(self.op_phase.read_key());
//! ```
//!
//! If the pair is split — a base increment with no adjacent phase
//! increment — the per-phase keys stop summing to the base counter and
//! every phase-attribution number in the report silently goes wrong.
//! This rule finds `incr("flash.read"|"flash.program"|"flash.erase")`
//! and requires the matching `read_key`/`program_key`/`erase_key` call
//! within the next few tokens.

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::at;
use crate::scan::SourceFile;

/// How many tokens after the base increment the phase-key call must
/// appear in. Generous enough for `self.counters.incr(self.op_phase
/// .program_key());` plus formatting, tight enough that a tag in a
/// different branch does not satisfy the rule.
const WINDOW: usize = 16;

const PAIRS: &[(&str, &str)] = &[
    ("flash.read", "read_key"),
    ("flash.program", "program_key"),
    ("flash.erase", "erase_key"),
];

/// Runs A3 over the workspace.
pub fn run(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.a3_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if f.in_test(i) {
                continue;
            }
            // `incr ( "flash.xxx"`
            if !(toks[i].is_ident("incr")
                && i + 2 < toks.len()
                && toks[i + 1].is_punct('(')
                && toks[i + 2].kind == TokKind::Str)
            {
                continue;
            }
            let Some((_, phase_fn)) = PAIRS.iter().find(|(key, _)| toks[i + 2].text == *key) else {
                continue;
            };
            let window_end = (i + 3 + WINDOW).min(toks.len());
            let tagged = toks[i + 3..window_end].iter().any(|t| t.is_ident(phase_fn));
            if !tagged {
                out.push(at(
                    "A3",
                    f,
                    i + 2,
                    format!(
                        "`{}` incremented without an `OpPhase` tag at the same site",
                        toks[i + 2].text
                    ),
                    "pair it with `counters.incr(self.op_phase.<op>_key())` on the next line so \
                     per-phase counters always sum to the base counter",
                ));
            }
        }
    }
    out
}
