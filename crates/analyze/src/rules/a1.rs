//! A1-no-panic-in-recovery.
//!
//! Recovery code runs exactly when the system is least able to tolerate
//! another failure: after a power cut, mid-rebuild, with the mapping
//! tables half-reconstructed. A panic there turns a recoverable device
//! into an unrecoverable one. This rule bans every lexical panic path —
//! `.unwrap()`, `.expect()`, the `panic!` macro family, and
//! bounds-checked indexing — in two scopes:
//!
//! 1. every non-test token of the files listed in `[a1] files`, and
//! 2. every function lexically reachable (same-crate) from the entry
//!    points listed in `[a1] entry_functions`.
//!
//! Reachability is resolved conservatively: a call `foo(...)` is
//! followed only when exactly one non-test `fn foo` exists in the crate.
//! Ambiguous names (`new`, `get`, ...) are skipped rather than guessed —
//! the direct file scope plus typed error signatures cover the rest.
//!
//! `debug_assert!` is deliberately permitted: it documents invariants,
//! costs nothing in release builds, and cannot panic in production.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::at;
use crate::scan::SourceFile;

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Runs A1 over the workspace.
pub fn run(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Scope 1: whole files.
    let mut whole: BTreeSet<usize> = BTreeSet::new();
    for (fi, f) in files.iter().enumerate() {
        if cfg.a1_files.iter().any(|p| p == &f.rel) {
            whole.insert(fi);
            if !f.tokens.is_empty() {
                check_range(
                    f,
                    0,
                    f.tokens.len() - 1,
                    "in recovery-critical file",
                    &mut out,
                );
            }
        }
    }

    // Scope 2: functions reachable from the entry points, same crate.
    for (fi, fn_idx, via) in reachable_fns(files, cfg) {
        if whole.contains(&fi) {
            continue; // already checked wholesale
        }
        let f = &files[fi];
        let span = &f.fns[fn_idx];
        let ctx = format!("in `{}` (recovery-reachable via `{via}`)", span.name);
        check_range(f, span.body.0, span.body.1, &ctx, &mut out);
    }
    out
}

/// BFS over the lexical call graph from the configured entry functions.
/// Returns `(file_idx, fn_idx, entry_name)` for every reached function.
fn reachable_fns(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<(usize, usize, String)> {
    /// `fn name -> (file_idx, fn_idx)` definition sites within one crate.
    type FnIndex<'a> = BTreeMap<&'a str, Vec<(usize, usize)>>;
    // crate -> fn name -> sites (only non-test definitions).
    let mut index: BTreeMap<&str, FnIndex> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (si, span) in f.fns.iter().enumerate() {
            if f.in_test(span.decl_tok) {
                continue;
            }
            index
                .entry(f.crate_name.as_str())
                .or_default()
                .entry(span.name.as_str())
                .or_default()
                .push((fi, si));
        }
    }

    let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut queue: VecDeque<(usize, usize, String)> = VecDeque::new();
    let mut out = Vec::new();
    for entry in &cfg.a1_entry_functions {
        for per_crate in index.values() {
            for &(fi, si) in per_crate.get(entry.as_str()).into_iter().flatten() {
                if seen.insert((fi, si)) {
                    queue.push_back((fi, si, entry.clone()));
                }
            }
        }
    }
    while let Some((fi, si, via)) = queue.pop_front() {
        out.push((fi, si, via.clone()));
        let f = &files[fi];
        let span = &f.fns[si];
        let Some(per_crate) = index.get(f.crate_name.as_str()) else {
            continue;
        };
        for callee in f.calls_in(span.body.0, span.body.1) {
            // Follow only unambiguous names: exactly one definition.
            if let Some(sites) = per_crate.get(callee.as_str()) {
                if sites.len() == 1 && seen.insert(sites[0]) {
                    queue.push_back((sites[0].0, sites[0].1, via.clone()));
                }
            }
        }
    }
    out
}

/// Scans tokens `[start, end]` of `f` for panic paths, skipping test code.
fn check_range(f: &SourceFile, start: usize, end: usize, ctx: &str, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    for i in start..=end.min(toks.len() - 1) {
        if f.in_test(i) {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if toks[i].is_punct('.')
            && i + 2 <= end
            && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
            && toks[i + 2].is_punct('(')
        {
            out.push(at(
                "A1",
                f,
                i + 1,
                format!("`.{}()` {ctx}", toks[i + 1].text),
                "propagate a typed error (`RecoveryError`) with `?` instead of panicking",
            ));
        }
        // panic!-family macro invocation
        if toks[i].kind == TokKind::Ident
            && PANIC_MACROS.contains(&toks[i].text.as_str())
            && i < end
            && toks[i + 1].is_punct('!')
        {
            out.push(at(
                "A1",
                f,
                i,
                format!("`{}!` {ctx}", toks[i].text),
                "return an error with context; `debug_assert!` is allowed for debug-only invariants",
            ));
        }
        // indexing: `expr[` where expr ends in an identifier, `]`, or `)`
        if toks[i].is_punct('[') && i > start {
            let prev = &toks[i - 1];
            if prev.kind == TokKind::Ident || prev.is_punct(']') || prev.is_punct(')') {
                out.push(at(
                    "A1",
                    f,
                    i,
                    format!("indexing may panic {ctx}"),
                    "use `.get()`/`.get_mut()` and handle `None`, or add a documented allowlist \
                     entry when bounds are established at the same site",
                ));
            }
        }
    }
}
