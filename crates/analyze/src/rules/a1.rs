//! A1-no-panic-in-recovery.
//!
//! Recovery code runs exactly when the system is least able to tolerate
//! another failure: after a power cut, mid-rebuild, with the mapping
//! tables half-reconstructed. A panic there turns a recoverable device
//! into an unrecoverable one. This rule bans every lexical panic path —
//! `.unwrap()`, `.expect()`, the `panic!` macro family, and
//! bounds-checked indexing — in two scopes:
//!
//! 1. every non-test token of the files listed in `[a1] files`, and
//! 2. every function reachable over the workspace call graph
//!    ([`crate::graph`]) from the entry points in `[a1] entry_functions`
//!    — *across crates*: the cone from `recover_power_loss` follows
//!    `self.ftl` into the FTL and `flash_mut()`'s return type into the
//!    flash array.
//!
//! Call edges are resolved by receiver-type hints where possible and by
//! conservative unique-name lookup otherwise; ambiguous names (`new`,
//! `get`, ...) are skipped rather than guessed — the direct file scope
//! plus typed error signatures cover the rest.
//!
//! `debug_assert!` is deliberately permitted: it documents invariants,
//! costs nothing in release builds, and cannot panic in production.

use std::collections::BTreeSet;

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::graph::{FnId, Reached, Workspace};
use crate::lexer::TokKind;
use crate::rules::at;
use crate::scan::SourceFile;

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// The code A1 governs: whole files plus the reachable cone. A6 borrows
/// the same scope — a `Result` dropped on a recovery path is corruption
/// undetected, so the two rules must agree on what "recovery code" is.
pub(crate) struct A1Scope {
    /// File indices whose every non-test token is in scope.
    pub whole_files: BTreeSet<usize>,
    /// Functions reached from the entry points (includes functions in
    /// `whole_files`; callers dedup as needed).
    pub reached: Vec<Reached>,
}

/// Computes the A1 scope from the config.
pub(crate) fn scope(ws: &Workspace<'_>, cfg: &AnalyzeConfig) -> A1Scope {
    let whole_files = ws
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| cfg.a1_files.iter().any(|p| p == &f.rel))
        .map(|(fi, _)| fi)
        .collect();
    let reached = ws.reachable(&cfg.a1_entry_functions);
    A1Scope {
        whole_files,
        reached,
    }
}

/// Every distinct non-test function in the A1 scope, with a context
/// string describing why it is in scope.
pub(crate) fn scope_fns(ws: &Workspace<'_>, sc: &A1Scope) -> Vec<(FnId, String)> {
    let mut seen: BTreeSet<FnId> = BTreeSet::new();
    let mut out = Vec::new();
    for &fi in &sc.whole_files {
        let f = &ws.files[fi];
        for (si, span) in f.fns.iter().enumerate() {
            if !f.in_test(span.decl_tok) && seen.insert((fi, si)) {
                out.push(((fi, si), "in recovery-critical file".to_string()));
            }
        }
    }
    for r in &sc.reached {
        if seen.insert(r.id) {
            let name = &ws.fn_span(r.id).name;
            out.push((
                r.id,
                format!("in `{name}` (recovery-reachable via `{}`)", r.entry),
            ));
        }
    }
    out
}

/// Runs A1 over the workspace.
pub fn run(ws: &Workspace<'_>, cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let sc = scope(ws, cfg);

    // Scope 1: whole files (covers tokens outside any fn body too).
    for &fi in &sc.whole_files {
        let f = &ws.files[fi];
        if !f.tokens.is_empty() {
            check_range(
                f,
                0,
                f.tokens.len() - 1,
                "in recovery-critical file",
                &mut out,
            );
        }
    }

    // Scope 2: the reachable cone, minus files already checked whole.
    for r in &sc.reached {
        let (fi, _) = r.id;
        if sc.whole_files.contains(&fi) {
            continue;
        }
        let f = &ws.files[fi];
        let span = ws.fn_span(r.id);
        let ctx = format!("in `{}` (recovery-reachable via `{}`)", span.name, r.entry);
        check_range(f, span.body.0, span.body.1, &ctx, &mut out);
    }
    out
}

/// Token ranges that are `debug_assert!`-family arguments: evaluated in
/// debug builds only, so indexing/unwrapping inside them is not a
/// release panic path (matching the rule's `debug_assert!` carve-out).
fn debug_only_ranges(f: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &f.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && matches!(
                toks[i].text.as_str(),
                "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
            )
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            if let Some(close) = crate::scan::match_bracket(toks, i + 2, '(', ')') {
                out.push((i + 2, close));
            }
        }
    }
    out
}

/// Scans tokens `[start, end]` of `f` for panic paths, skipping test code.
fn check_range(f: &SourceFile, start: usize, end: usize, ctx: &str, out: &mut Vec<Diagnostic>) {
    let toks = &f.tokens;
    let debug_only = debug_only_ranges(f);
    for i in start..=end.min(toks.len() - 1) {
        if f.in_test(i) {
            continue;
        }
        if debug_only.iter().any(|&(s, e)| i >= s && i <= e) {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if toks[i].is_punct('.')
            && i + 2 <= end
            && (toks[i + 1].is_ident("unwrap") || toks[i + 1].is_ident("expect"))
            && toks[i + 2].is_punct('(')
        {
            out.push(at(
                "A1",
                f,
                i + 1,
                format!("`.{}()` {ctx}", toks[i + 1].text),
                "propagate a typed error (`RecoveryError`) with `?` instead of panicking",
            ));
        }
        // panic!-family macro invocation
        if toks[i].kind == TokKind::Ident
            && PANIC_MACROS.contains(&toks[i].text.as_str())
            && i < end
            && toks[i + 1].is_punct('!')
        {
            out.push(at(
                "A1",
                f,
                i,
                format!("`{}!` {ctx}", toks[i].text),
                "return an error with context; `debug_assert!` is allowed for debug-only invariants",
            ));
        }
        // indexing: `expr[` where expr ends in an identifier, `]`, or `)`.
        // A keyword before `[` starts a slice pattern (`let [a, b] = …`)
        // or an array literal (`&mut []`), not an index expression.
        if toks[i].is_punct('[') && i > start {
            let prev = &toks[i - 1];
            let prev_is_keyword = prev.kind == TokKind::Ident
                && matches!(
                    prev.text.as_str(),
                    "let"
                        | "mut"
                        | "ref"
                        | "return"
                        | "break"
                        | "continue"
                        | "in"
                        | "else"
                        | "match"
                        | "move"
                        | "as"
                        | "if"
                        | "while"
                        | "loop"
                        | "for"
                        | "where"
                        | "dyn"
                        | "impl"
                        | "box"
                        | "yield"
                );
            if (prev.kind == TokKind::Ident && !prev_is_keyword)
                || prev.is_punct(']')
                || prev.is_punct(')')
            {
                out.push(at(
                    "A1",
                    f,
                    i,
                    format!("indexing may panic {ctx}"),
                    "use `.get()`/`.get_mut()` and handle `None`, or add a documented allowlist \
                     entry when bounds are established at the same site",
                ));
            }
        }
    }
}
