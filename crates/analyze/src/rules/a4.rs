//! A4-lpn-arithmetic.
//!
//! Logical and physical page numbers are `u64` end to end; a bare
//! `as u32`/`as u16`/`as u8` on an expression derived from one silently
//! wraps once a device model crosses the corresponding size boundary
//! (a 4 KiB-page device crosses the u32 page-number line at 16 TiB).
//! This rule flags truncating `as` casts whose expression mentions an
//! address-flavored identifier (`lpn`, `ppn`, `pun`, `lba`, `sector`,
//! configurable), or `self.0` inside the newtype impl files listed in
//! `[a4] self_files`.
//!
//! Casts that are provably in range (e.g. the value was just reduced
//! with `% pages_per_block`) are accepted via documented allowlist
//! entries rather than loosening the rule — the proof lives next to the
//! exception.

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::rules::at;
use crate::scan::SourceFile;

/// How far back (in tokens) the expression scan looks for an address
/// identifier before giving up at a statement boundary.
const LOOKBACK: usize = 16;

/// Runs A4 over the workspace.
pub fn run(files: &[SourceFile], cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.a4_crates.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        let self_is_address = cfg.a4_self_files.iter().any(|p| p == &f.rel);
        let toks = &f.tokens;
        for i in 0..toks.len() {
            if f.in_test(i) {
                continue;
            }
            // `as u8|u16|u32`
            if !(toks[i].is_ident("as")
                && i + 1 < toks.len()
                && matches!(toks[i + 1].text.as_str(), "u8" | "u16" | "u32")
                && toks[i + 1].kind == TokKind::Ident)
            {
                continue;
            }
            if let Some(witness) = address_witness(f, i, self_is_address, cfg) {
                out.push(at(
                    "A4",
                    f,
                    i,
                    format!(
                        "truncating cast `as {}` on address arithmetic involving `{witness}`",
                        toks[i + 1].text
                    ),
                    "use `try_into()` (or widen the target type); if the value is provably in \
                     range, add an allowlist entry whose reason states the bound",
                ));
            }
        }
    }
    out
}

/// Scans backward from the `as` at `idx` to the statement boundary,
/// returning the first address-flavored identifier found (the witness
/// that this is address arithmetic), if any.
fn address_witness(
    f: &SourceFile,
    idx: usize,
    self_is_address: bool,
    cfg: &AnalyzeConfig,
) -> Option<String> {
    let toks = &f.tokens;
    let start = idx.saturating_sub(LOOKBACK);
    for j in (start..idx).rev() {
        let t = &toks[j];
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}" | "," | "=") {
            return None;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let lower = t.text.to_ascii_lowercase();
        if cfg
            .a4_identifiers
            .iter()
            .any(|id| lower.contains(id.as_str()))
        {
            return Some(t.text.clone());
        }
        // `self.0` in a newtype impl file: the receiver itself is an address.
        if self_is_address
            && t.text == "self"
            && toks.get(j + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(j + 2)
                .is_some_and(|t| t.kind == TokKind::Number && t.text == "0")
        {
            return Some("self.0".to_string());
        }
    }
    None
}
