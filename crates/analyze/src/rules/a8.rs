//! A8-concurrency-readiness.
//!
//! The sharded multi-device fleet (ROADMAP item 1) will put today's
//! single-threaded core behind real threads. This rule makes that PR
//! start from a provably `Send`-clean base, in two parts:
//!
//! **Shared-state bans** in the crates listed as `[a8] fleet_bound`:
//! `Rc`, `RefCell`, and `Cell` (single-thread-only shared mutability
//! that compiles fine until the first `std::thread::spawn`),
//! `thread_local!` (state that silently forks per worker), and
//! `static mut` (a data race by construction).
//!
//! **Multi-lock order over the acquisition graph**: A5 checks the
//! lexical order of `.lock()` calls within one function; A8 extends the
//! same declared order (`[a5] lock_order`) across call edges. Each
//! function's *transitive* lock set is computed over the workspace call
//! graph ([`crate::graph`]), and a call into a function that acquires
//! an earlier-order lock while a later-order lock is already held is a
//! deadlock candidate even though no single function shows both locks.
//! Intra-function direct violations in `[a5] files` are left to A5, so
//! the two rules never double-report.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::AnalyzeConfig;
use crate::diag::Diagnostic;
use crate::graph::{FnId, Workspace};
use crate::lexer::TokKind;
use crate::rules::at;

const BANNED_TYPES: &[(&str, &str)] = &[
    ("Rc", "use `Arc` (or pass ownership) — `Rc` is not `Send`"),
    (
        "RefCell",
        "use `Mutex`/`RwLock` (or restructure to `&mut`) — `RefCell` is not `Sync`",
    ),
    ("Cell", "use atomics or a `Mutex` — `Cell` is not `Sync`"),
];

/// Runs A8 over the workspace.
pub fn run(ws: &Workspace<'_>, cfg: &AnalyzeConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    ban_shared_state(ws, cfg, &mut out);
    lock_graph(ws, cfg, &mut out);
    out
}

/// Bans `Rc`/`RefCell`/`Cell`, `thread_local!`, and `static mut` in the
/// fleet-bound crates.
fn ban_shared_state(ws: &Workspace<'_>, cfg: &AnalyzeConfig, out: &mut Vec<Diagnostic>) {
    for f in ws.files {
        if !cfg.a8_fleet_bound.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        for (i, t) in f.tokens.iter().enumerate() {
            if t.kind != TokKind::Ident || f.in_test(i) {
                continue;
            }
            if let Some((name, help)) = BANNED_TYPES.iter().find(|(n, _)| t.text == *n) {
                out.push(at(
                    "A8",
                    f,
                    i,
                    format!("`{name}` in fleet-bound crate `{}`", f.crate_name),
                    help,
                ));
            }
            if t.text == "thread_local" && f.tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
                out.push(at(
                    "A8",
                    f,
                    i,
                    format!("`thread_local!` in fleet-bound crate `{}`", f.crate_name),
                    "per-thread state diverges silently across fleet workers; thread the state \
                     through explicit ownership instead",
                ));
            }
            if t.text == "static" && f.tokens.get(i + 1).is_some_and(|n| n.is_ident("mut")) {
                out.push(at(
                    "A8",
                    f,
                    i,
                    format!("`static mut` in fleet-bound crate `{}`", f.crate_name),
                    "a mutable static is a data race by construction; use an atomic or a lock",
                ));
            }
        }
    }
}

/// One lock-relevant event inside a function body, in token order.
enum Event {
    /// Direct `recv.lock()` with the receiver's position in the declared
    /// order (`Err(name)` when the receiver is not in the order at all).
    Direct(usize, Result<usize, String>),
    /// Call to a resolved workspace function (checked against its
    /// transitive lock set).
    Call(usize, FnId),
}

fn lock_graph(ws: &Workspace<'_>, cfg: &AnalyzeConfig, out: &mut Vec<Diagnostic>) {
    if cfg.a5_lock_order.is_empty() && cfg.a8_fleet_bound.is_empty() {
        return;
    }
    // Per-function events and direct lock sets, workspace-wide: lock
    // acquisitions outside fleet-bound crates still matter when a
    // fleet-bound function calls into them.
    let mut events: BTreeMap<FnId, Vec<Event>> = BTreeMap::new();
    let mut lock_sets: BTreeMap<FnId, BTreeSet<usize>> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for (si, span) in f.fns.iter().enumerate() {
            if f.in_test(span.decl_tok) {
                continue;
            }
            let id = (fi, si);
            let mut evs = Vec::new();
            let mut direct = BTreeSet::new();
            for call in &ws.facts(id).calls {
                let i = call.name_idx;
                if f.tokens[i].is_ident("lock")
                    && i >= 2
                    && f.tokens[i - 1].is_punct('.')
                    && f.tokens[i - 2].kind == TokKind::Ident
                {
                    let recv = f.tokens[i - 2].text.clone();
                    match cfg.a5_lock_order.iter().position(|l| l == &recv) {
                        Some(pos) => {
                            direct.insert(pos);
                            evs.push(Event::Direct(i, Ok(pos)));
                        }
                        None => evs.push(Event::Direct(i, Err(recv))),
                    }
                    continue;
                }
                if let Some(callee) = ws.resolve(id, call) {
                    evs.push(Event::Call(i, callee));
                }
            }
            events.insert(id, evs);
            lock_sets.insert(id, direct);
        }
    }

    // Transitive closure of lock sets over call edges (fixpoint; the
    // graph is small and lock sets tiny, so this converges fast).
    loop {
        let mut changed = false;
        for (id, evs) in &events {
            let mut merged = lock_sets.get(id).cloned().unwrap_or_default();
            let before = merged.len();
            for ev in evs {
                if let Event::Call(_, callee) = ev {
                    if let Some(s) = lock_sets.get(callee) {
                        merged.extend(s.iter().copied());
                    }
                }
            }
            if merged.len() != before {
                lock_sets.insert(*id, merged);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Order check, per fleet-bound function, over direct + call events.
    for (id, evs) in &events {
        let f = &ws.files[id.0];
        if !cfg.a8_fleet_bound.iter().any(|c| c == &f.crate_name) {
            continue;
        }
        let in_a5_file = cfg.a5_files.iter().any(|p| p == &f.rel);
        let mut furthest: Option<(usize, String)> = None;
        for ev in evs {
            match ev {
                Event::Direct(tok, Err(recv)) => {
                    // A5 already reports unknown receivers in its files.
                    if !in_a5_file {
                        out.push(at(
                            "A8",
                            f,
                            *tok - 2,
                            format!("lock receiver `{recv}` is not in the declared lock order"),
                            "add it to `[a5] lock_order` in analyze.toml at its correct position \
                             (or rename the binding to the mutex's canonical name)",
                        ));
                    }
                }
                Event::Direct(tok, Ok(pos)) => {
                    if let Some((max_pos, ref max_name)) = furthest {
                        // Direct-after-direct inversions in A5 files are
                        // A5's findings; everything else is A8's.
                        if *pos < max_pos && !in_a5_file {
                            out.push(at(
                                "A8",
                                f,
                                *tok - 2,
                                format!(
                                    "lock `{}` acquired after `{max_name}`, violating the \
                                     declared order",
                                    cfg.a5_lock_order[*pos]
                                ),
                                "acquire locks in `[a5] lock_order` order, or document an early \
                                 guard drop with an allowlist entry",
                            ));
                        }
                    }
                    if furthest.as_ref().is_none_or(|(p, _)| *pos > *p) {
                        furthest = Some((*pos, cfg.a5_lock_order[*pos].clone()));
                    }
                }
                Event::Call(tok, callee) => {
                    let Some(set) = lock_sets.get(callee).filter(|s| !s.is_empty()) else {
                        continue;
                    };
                    let min = *set.iter().next().unwrap_or(&0);
                    let max = *set.iter().next_back().unwrap_or(&0);
                    if let Some((max_pos, ref max_name)) = furthest {
                        if min < max_pos {
                            out.push(at(
                                "A8",
                                f,
                                *tok,
                                format!(
                                    "call to `{}` acquires lock `{}` while `{max_name}` is \
                                     already held, violating the declared order",
                                    ws.fn_span(*callee).name,
                                    cfg.a5_lock_order[min]
                                ),
                                "hoist the earlier-order acquisition above the later one, or \
                                 restructure so the callee does not lock",
                            ));
                        }
                    }
                    if furthest.as_ref().is_none_or(|(p, _)| max > *p) {
                        furthest = Some((max, cfg.a5_lock_order[max].clone()));
                    }
                }
            }
        }
    }
}
