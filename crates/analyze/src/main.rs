//! CLI for the workspace static invariant checker.
//!
//! ```text
//! cargo run -p checkin-analyze [-- --root <workspace>]
//! ```
//!
//! Prints rustc-style diagnostics and exits non-zero when any finding
//! survives the `analyze.toml` allowlist (or an allowlist entry is
//! stale), so `scripts/verify.sh` can use it as a gating tier.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("checkin-analyze: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "checkin-analyze: static invariant checker (rules A1-A5)\n\
                     usage: checkin-analyze [--root <workspace-root>]\n\
                     config: <root>/analyze.toml"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("checkin-analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // When invoked via `cargo run -p checkin-analyze`, the cwd is already
    // the workspace root; fall back to the crate's grandparent otherwise.
    if !root.join("analyze.toml").exists() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest).join("../..");
            if candidate.join("analyze.toml").exists() {
                root = candidate;
            }
        }
    }

    let report = match checkin_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("checkin-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}\n");
    }
    for a in &report.unused_allows {
        eprintln!(
            "checkin-analyze: note: unused allowlist entry (rule {} in {}{}) — remove it or fix \
             its scope",
            a.rule,
            a.file,
            a.line.map(|l| format!(":{l}")).unwrap_or_default()
        );
    }
    println!(
        "checkin-analyze: {} finding(s) across {} file(s) scanned",
        report.diagnostics.len(),
        report.files_scanned
    );
    // Stale allowlist entries gate too: an exception that matches nothing
    // is either rotted (the code moved) or was never needed, and both
    // erode trust in the documented-exceptions discipline.
    if report.diagnostics.is_empty() && report.unused_allows.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
