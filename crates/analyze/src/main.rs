//! CLI for the workspace static invariant checker.
//!
//! ```text
//! cargo run -p checkin-analyze [-- --root <workspace>] [--format text|json]
//! ```
//!
//! Prints rustc-style diagnostics (or a machine-readable JSON report
//! with `--format json`) and exits non-zero when any finding survives
//! the `analyze.toml` allowlist (or an allowlist entry is stale), so
//! `scripts/verify.sh` can use it as a gating tier. Per-rule timings go
//! to stderr in both modes.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = String::from("text");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => {
                    eprintln!("checkin-analyze: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next() {
                Some(v) if v == "text" || v == "json" => format = v,
                _ => {
                    eprintln!("checkin-analyze: --format needs `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "checkin-analyze: static invariant checker (rules A1-A8)\n\
                     usage: checkin-analyze [--root <workspace-root>] [--format text|json]\n\
                     config: <root>/analyze.toml"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("checkin-analyze: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // When invoked via `cargo run -p checkin-analyze`, the cwd is already
    // the workspace root; fall back to the crate's grandparent otherwise.
    if !root.join("analyze.toml").exists() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest).join("../..");
            if candidate.join("analyze.toml").exists() {
                root = candidate;
            }
        }
    }

    let report = match checkin_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("checkin-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    // Per-rule timings always go to stderr so the JSON on stdout stays
    // pure while verify.sh can still print the breakdown.
    for t in &report.timings {
        eprintln!("checkin-analyze: timing: {:>5} {:>8} us", t.rule, t.micros);
    }

    if format == "json" {
        println!("{}", checkin_analyze::json::render(&report));
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for d in &report.diagnostics {
        println!("{d}\n");
    }
    for s in &report.unused_allows {
        let a = &s.entry;
        let why = if s.snippet_mismatch {
            "its snippet no longer matches the flagged line — the code changed under it"
        } else {
            "it matches no finding"
        };
        eprintln!(
            "checkin-analyze: note: stale allowlist entry (rule {} in {}{}, snippet `{}`): {why} \
             — remove it or fix its scope",
            a.rule,
            a.file,
            a.line.map(|l| format!(":{l}")).unwrap_or_default(),
            a.snippet,
        );
    }
    println!(
        "checkin-analyze: {} finding(s) across {} file(s) scanned",
        report.diagnostics.len(),
        report.files_scanned
    );
    // Stale allowlist entries gate too: an exception that matches nothing
    // is either rotted (the code moved) or was never needed, and both
    // erode trust in the documented-exceptions discipline.
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
