//! `analyze.toml` — rule scopes and the allowlist.
//!
//! The repository is offline-only, so this module hand-rolls a parser for
//! the small TOML subset the checker needs: `[section]` headers,
//! `[[allow]]` array-of-table headers, and `key = value` lines where a
//! value is a quoted string, an integer, a boolean, or a flat array of
//! strings. Comments (`#`) and blank lines are skipped. Anything fancier
//! is a hard error — the config is part of the correctness surface and
//! must not be silently misread.

use std::collections::BTreeMap;

/// One allowlist entry: suppresses findings of `rule` in `file` whose
/// flagged source line contains `snippet`. Every entry must carry a
/// `reason`; undocumented exceptions defeat the point of the checker.
///
/// The `snippet` is the anchor: it survives unrelated edits that shift
/// line numbers, and it goes stale loudly when the flagged code itself
/// changes. `line` is a human-readability hint only — it is reported
/// but never used for matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id, e.g. `"A1"` (case-insensitive).
    pub rule: String,
    /// Workspace-relative file path the exception applies to.
    pub file: String,
    /// Required substring of the flagged source line.
    pub snippet: String,
    /// 1-based line hint for readers; not used for matching.
    pub line: Option<u32>,
    /// Why this exception is sound. Required.
    pub reason: String,
}

/// One conservation equation from `[a7] families`: `lhs = rhs1 + rhs2`.
/// Dotted members match string-keyed counter bumps (`incr("a.b")`);
/// bare members match `ident += …` compound assignments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterFamily {
    /// The family total.
    pub lhs: String,
    /// The members partitioning the total.
    pub rhs: Vec<String>,
}

impl CounterFamily {
    /// Parses `"lhs = a + b"`.
    ///
    /// # Errors
    ///
    /// Returns a message when either side is empty or the `=` is missing.
    pub fn parse(s: &str) -> Result<CounterFamily, String> {
        let (lhs, rhs) = s
            .split_once('=')
            .ok_or_else(|| format!("family `{s}` needs the form `lhs = rhs1 + rhs2`"))?;
        let lhs = lhs.trim().to_string();
        let rhs: Vec<String> = rhs
            .split('+')
            .map(|m| m.trim().to_string())
            .filter(|m| !m.is_empty())
            .collect();
        if lhs.is_empty() || rhs.is_empty() {
            return Err(format!("family `{s}` needs the form `lhs = rhs1 + rhs2`"));
        }
        Ok(CounterFamily { lhs, rhs })
    }
}

/// Parsed configuration for one analysis run.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// A1: files whose every (non-test) token is recovery code.
    pub a1_files: Vec<String>,
    /// A1: recovery entry functions; everything lexically reachable from
    /// them inside the same crate is checked too.
    pub a1_entry_functions: Vec<String>,
    /// A2: crate names (the `crates/<name>` component) that must stay
    /// deterministic.
    pub a2_crates: Vec<String>,
    /// A3: crates whose op-counter increments must be phase-tagged.
    pub a3_crates: Vec<String>,
    /// A4: crates checked for truncating casts on address arithmetic.
    pub a4_crates: Vec<String>,
    /// A4: identifier words that mark an expression as address
    /// arithmetic (matched case-insensitively against identifiers).
    pub a4_identifiers: Vec<String>,
    /// A4: files where `self` itself is an address newtype (`Lpn`, `Pun`,
    /// `Ppn` impls), so `self.0` casts are also address arithmetic.
    pub a4_self_files: Vec<String>,
    /// A5: files containing multi-threaded code with ordered locks.
    pub a5_files: Vec<String>,
    /// A5: declared lock acquisition order (receiver identifiers).
    pub a5_lock_order: Vec<String>,
    /// A7: crates whose counter families must stay conserved.
    pub a7_crates: Vec<String>,
    /// A7: conservation equations (`lhs = rhs1 + rhs2`).
    pub a7_families: Vec<CounterFamily>,
    /// A8: crates that must stay `Send`-clean for the shard fleet.
    pub a8_fleet_bound: Vec<String>,
    /// Documented exceptions.
    pub allows: Vec<AllowEntry>,
}

impl Default for AnalyzeConfig {
    fn default() -> Self {
        AnalyzeConfig {
            a1_files: Vec::new(),
            a1_entry_functions: Vec::new(),
            a2_crates: Vec::new(),
            a3_crates: Vec::new(),
            a4_crates: Vec::new(),
            a4_identifiers: ["lpn", "ppn", "pun", "lba", "sector", "sectors"]
                .map(String::from)
                .to_vec(),
            a4_self_files: Vec::new(),
            a5_files: Vec::new(),
            a5_lock_order: Vec::new(),
            a7_crates: Vec::new(),
            a7_families: Vec::new(),
            a8_fleet_bound: Vec::new(),
            allows: Vec::new(),
        }
    }
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrArray(Vec<String>),
}

impl AnalyzeConfig {
    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a `line: message` description of the first malformed line,
    /// unknown section, or allow entry missing a required field.
    pub fn parse(src: &str) -> Result<AnalyzeConfig, String> {
        let mut cfg = AnalyzeConfig::default();
        // Section path -> key -> value; allow tables are collected apart.
        let mut current_section = String::new();
        let mut current_allow: Option<BTreeMap<String, Value>> = None;
        let mut raw_allows: Vec<(usize, BTreeMap<String, Value>)> = Vec::new();
        let mut sections: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();

        // Fold multi-line arrays into logical lines: keep accumulating
        // while `[`/`]` (outside strings) are unbalanced.
        let mut pending = String::new();
        let mut pending_start = 0usize;
        let mut logical: Vec<(usize, String)> = Vec::new();
        for (idx, raw_line) in src.lines().enumerate() {
            let stripped = strip_comment(raw_line).trim().to_string();
            if stripped.is_empty() {
                continue;
            }
            if pending.is_empty() {
                pending_start = idx + 1;
                pending = stripped;
            } else {
                pending.push(' ');
                pending.push_str(&stripped);
            }
            if bracket_balance(&pending) > 0 {
                continue;
            }
            logical.push((pending_start, std::mem::take(&mut pending)));
        }
        if !pending.is_empty() {
            return Err(format!("{pending_start}: unterminated array"));
        }

        for (lineno, line) in logical {
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                if header.trim() != "allow" {
                    return Err(format!(
                        "{lineno}: unknown array-of-tables [[{}]] (only [[allow]] is supported)",
                        header.trim()
                    ));
                }
                if let Some(done) = current_allow.take() {
                    raw_allows.push((lineno, done));
                }
                current_allow = Some(BTreeMap::new());
                current_section.clear();
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if let Some(done) = current_allow.take() {
                    raw_allows.push((lineno, done));
                }
                current_section = header.trim().to_string();
                sections.entry(current_section.clone()).or_default();
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(format!("{lineno}: expected `key = value`, got `{line}`"));
            };
            let key = line[..eq].trim().to_string();
            let value = parse_value(line[eq + 1..].trim()).map_err(|e| format!("{lineno}: {e}"))?;
            if let Some(allow) = current_allow.as_mut() {
                allow.insert(key, value);
            } else if current_section.is_empty() {
                return Err(format!("{lineno}: `{key}` outside any section"));
            } else {
                sections
                    .entry(current_section.clone())
                    .or_default()
                    .insert(key, value);
            }
        }
        if let Some(done) = current_allow.take() {
            raw_allows.push((0, done));
        }

        for (section, keys) in &sections {
            for (key, value) in keys {
                cfg.apply(section, key, value)
                    .map_err(|e| format!("[{section}] {key}: {e}"))?;
            }
        }
        for (lineno, table) in raw_allows {
            cfg.allows.push(
                build_allow(&table)
                    .map_err(|e| format!("[[allow]] ending near line {lineno}: {e}"))?,
            );
        }
        Ok(cfg)
    }

    fn apply(&mut self, section: &str, key: &str, value: &Value) -> Result<(), String> {
        if (section, key) == ("a7", "families") {
            let Value::StrArray(items) = value else {
                return Err("expected an array of strings".to_string());
            };
            self.a7_families = items
                .iter()
                .map(|s| CounterFamily::parse(s))
                .collect::<Result<_, _>>()?;
            return Ok(());
        }
        let slot: &mut Vec<String> = match (section, key) {
            ("a1", "files") => &mut self.a1_files,
            ("a1", "entry_functions") => &mut self.a1_entry_functions,
            ("a2", "crates") => &mut self.a2_crates,
            ("a3", "crates") => &mut self.a3_crates,
            ("a4", "crates") => &mut self.a4_crates,
            ("a4", "identifiers") => &mut self.a4_identifiers,
            ("a4", "self_files") => &mut self.a4_self_files,
            ("a5", "files") => &mut self.a5_files,
            ("a5", "lock_order") => &mut self.a5_lock_order,
            ("a7", "crates") => &mut self.a7_crates,
            ("a8", "fleet_bound") => &mut self.a8_fleet_bound,
            _ => return Err("unknown section/key".to_string()),
        };
        match value {
            Value::StrArray(items) => {
                *slot = items.clone();
                Ok(())
            }
            _ => Err("expected an array of strings".to_string()),
        }
    }
}

fn build_allow(table: &BTreeMap<String, Value>) -> Result<AllowEntry, String> {
    let get_str = |key: &str| -> Result<String, String> {
        match table.get(key) {
            Some(Value::Str(s)) if !s.trim().is_empty() => Ok(s.clone()),
            Some(_) => Err(format!("`{key}` must be a non-empty string")),
            None => Err(format!("missing required `{key}`")),
        }
    };
    let line = match table.get("line") {
        None => None,
        Some(Value::Int(n)) if *n > 0 => Some(*n as u32),
        Some(_) => return Err("`line` must be a positive integer".to_string()),
    };
    for key in table.keys() {
        if !matches!(
            key.as_str(),
            "rule" | "file" | "snippet" | "line" | "reason"
        ) {
            return Err(format!("unknown allow key `{key}`"));
        }
    }
    Ok(AllowEntry {
        rule: get_str("rule")?.to_ascii_uppercase(),
        file: get_str("file")?,
        snippet: get_str("snippet")?,
        line,
        reason: get_str("reason")?,
    })
}

/// Net `[` minus `]` count outside quoted strings. Section headers
/// (`[a1]`, `[[allow]]`) balance to zero, so only open arrays are > 0.
fn bracket_balance(line: &str) -> i64 {
    let mut balance = 0i64;
    let mut in_str = false;
    let mut escape = false;
    for c in line.chars() {
        match c {
            _ if escape => escape = false,
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escape => escape = false,
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(s: &str) -> Result<Value, String> {
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array `{s}`"))?;
        let mut items = Vec::new();
        for part in split_array(body)? {
            match parse_value(&part)? {
                Value::Str(v) => items.push(v),
                _ => return Err(format!("arrays may only hold strings: `{part}`")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string `{s}`"))?;
        return Ok(Value::Str(body.replace("\\\"", "\"").replace("\\\\", "\\")));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{s}`"))
}

/// Splits a flat array body on commas, respecting quoted strings.
fn split_array(body: &str) -> Result<Vec<String>, String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in body.chars() {
        match c {
            _ if escape => {
                current.push(c);
                escape = false;
            }
            '\\' if in_str => {
                current.push(c);
                escape = true;
            }
            '"' => {
                current.push(c);
                in_str = !in_str;
            }
            ',' if !in_str => {
                if !current.trim().is_empty() {
                    items.push(current.trim().to_string());
                }
                current.clear();
            }
            _ => current.push(c),
        }
    }
    if in_str {
        return Err(format!("unterminated string in array `{body}`"));
    }
    if !current.trim().is_empty() {
        items.push(current.trim().to_string());
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scopes_and_allows() {
        let cfg = AnalyzeConfig::parse(
            r#"
# comment
[a1]
files = ["crates/ssd/src/spor.rs"]
entry_functions = ["rebuild_after_power_loss"]

[a2]
crates = ["sim", "ftl"]

[a7]
crates = ["ftl"]
families = ["detected = quarantined + corrected"]

[a8]
fleet_bound = ["core", "ssd"]

[[allow]]
rule = "a4"
file = "crates/ftl/src/location.rs"
snippet = "unit % units_per_page"
line = 31
reason = "modulo bounds the value"

[[allow]]
rule = "A1"
file = "crates/ftl/src/mapping.rs"
snippet = "&mut vec[idx]"
reason = "resize two lines above bounds idx"
"#,
        )
        .unwrap();
        assert_eq!(cfg.a1_files, vec!["crates/ssd/src/spor.rs"]);
        assert_eq!(cfg.a2_crates, vec!["sim", "ftl"]);
        assert_eq!(cfg.a7_crates, vec!["ftl"]);
        assert_eq!(cfg.a7_families.len(), 1);
        assert_eq!(cfg.a7_families[0].lhs, "detected");
        assert_eq!(cfg.a7_families[0].rhs, vec!["quarantined", "corrected"]);
        assert_eq!(cfg.a8_fleet_bound, vec!["core", "ssd"]);
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].rule, "A4");
        assert_eq!(cfg.allows[0].line, Some(31));
        assert_eq!(cfg.allows[0].snippet, "unit % units_per_page");
        assert_eq!(cfg.allows[1].line, None);
    }

    #[test]
    fn multi_line_arrays_fold() {
        let cfg = AnalyzeConfig::parse(
            "[a1]\nentry_functions = [\n    \"rebuild\", # tail comment\n    \"recover\",\n]\n",
        )
        .unwrap();
        assert_eq!(cfg.a1_entry_functions, vec!["rebuild", "recover"]);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let err =
            AnalyzeConfig::parse("[[allow]]\nrule = \"A1\"\nfile = \"x.rs\"\nsnippet = \"x[0]\"\n")
                .unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn allow_without_snippet_is_rejected() {
        let err =
            AnalyzeConfig::parse("[[allow]]\nrule = \"A1\"\nfile = \"x.rs\"\nreason = \"why\"\n")
                .unwrap_err();
        assert!(err.contains("snippet"), "{err}");
    }

    #[test]
    fn malformed_family_is_rejected() {
        let err =
            AnalyzeConfig::parse("[a7]\nfamilies = [\"detected quarantined\"]\n").unwrap_err();
        assert!(err.contains("lhs = rhs1 + rhs2"), "{err}");
    }

    #[test]
    fn unknown_key_is_rejected() {
        let err = AnalyzeConfig::parse("[a1]\nbogus = [\"x\"]\n").unwrap_err();
        assert!(err.contains("unknown"), "{err}");
    }

    #[test]
    fn comment_inside_string_survives() {
        let cfg = AnalyzeConfig::parse(
            "[[allow]]\nrule = \"A2\"\nfile = \"a.rs\"\nsnippet = \"y\"\nreason = \"see issue #5\"\n",
        )
        .unwrap();
        assert_eq!(cfg.allows[0].reason, "see issue #5");
    }
}
