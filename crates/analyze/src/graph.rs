//! Workspace-wide symbol table and lexical call graph.
//!
//! [`Workspace`] indexes every function and method definition across all
//! crates (by bare name, by `(impl type, name)`, and per crate), plus
//! every struct's field types, and resolves the call sites extracted by
//! [`crate::dataflow`] to definitions. Resolution is typed where the
//! receiver chain allows it — `self.ftl.flash_mut().power_on()` folds
//! `Ssd → Ftl → FlashArray` through field and return types, crossing
//! crate boundaries — and falls back to conservative unique-name lookup
//! (first within the caller's crate, then workspace-wide) exactly like
//! the v1 analyzer, so typed resolution only ever *adds* edges.
//!
//! Ambiguity never guesses: two methods with the same `(type, name)`
//! key, or two same-named structs disagreeing on a field's type, resolve
//! to nothing. The panic-free cone stays sound because every unresolved
//! call is also a call the rules treat as out of scope *by choice*, with
//! the whole-file scopes covering the rest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::dataflow::{body_facts, BodyFacts, CallSite, Chain, ChainBase, ChainSeg, Recv};
use crate::scan::{FnSpan, SourceFile};

/// Identifies one function: `(file index, fn index within the file)`.
pub type FnId = (usize, usize);

/// One function reached by [`Workspace::reachable`].
#[derive(Debug, Clone)]
pub struct Reached {
    /// The reached function.
    pub id: FnId,
    /// Name of the entry function whose cone contains it.
    pub entry: String,
    /// Immediate caller on the BFS path (`None` for entries themselves).
    pub pred: Option<FnId>,
}

/// The workspace symbol table and per-function dataflow facts.
pub struct Workspace<'a> {
    /// The scanned files, in the order the indexes refer to them.
    pub files: &'a [SourceFile],
    /// Per-file, per-fn dataflow facts (parallel to `files[fi].fns`).
    facts: Vec<Vec<BodyFacts>>,
    /// Non-test definitions by bare name, workspace-wide.
    by_name: BTreeMap<String, Vec<FnId>>,
    /// Non-test definitions by `(crate, name)`.
    by_crate: BTreeMap<(String, String), Vec<FnId>>,
    /// Non-test methods/associated fns by `(impl type, name)`.
    methods: BTreeMap<(String, String), Vec<FnId>>,
    /// Struct field types by `(struct, field)`; `None` when two structs
    /// with the same name disagree.
    fields: BTreeMap<(String, String), Option<String>>,
}

impl<'a> Workspace<'a> {
    /// Indexes the scanned files.
    pub fn build(files: &'a [SourceFile]) -> Workspace<'a> {
        let mut ws = Workspace {
            files,
            facts: Vec::with_capacity(files.len()),
            by_name: BTreeMap::new(),
            by_crate: BTreeMap::new(),
            methods: BTreeMap::new(),
            fields: BTreeMap::new(),
        };
        for (fi, f) in files.iter().enumerate() {
            let mut per_fn = Vec::with_capacity(f.fns.len());
            for (si, span) in f.fns.iter().enumerate() {
                per_fn.push(body_facts(f, span.body));
                if f.in_test(span.decl_tok) {
                    continue;
                }
                let id = (fi, si);
                ws.by_name.entry(span.name.clone()).or_default().push(id);
                ws.by_crate
                    .entry((f.crate_name.clone(), span.name.clone()))
                    .or_default()
                    .push(id);
                if let Some(ty) = &span.impl_type {
                    ws.methods
                        .entry((ty.clone(), span.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
            ws.facts.push(per_fn);
            for s in &f.structs {
                for (field, ty) in &s.fields {
                    ws.fields
                        .entry((s.name.clone(), field.clone()))
                        .and_modify(|e| {
                            if e.as_deref() != Some(ty.as_str()) {
                                *e = None;
                            }
                        })
                        .or_insert_with(|| Some(ty.clone()));
                }
            }
        }
        ws
    }

    /// The [`FnSpan`] for `id`.
    pub fn fn_span(&self, id: FnId) -> &FnSpan {
        &self.files[id.0].fns[id.1]
    }

    /// The dataflow facts for `id`'s body.
    pub fn facts(&self, id: FnId) -> &BodyFacts {
        &self.facts[id.0][id.1]
    }

    fn unique(ids: Option<&Vec<FnId>>) -> Option<FnId> {
        match ids {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    /// The unique method/associated fn `name` on `ty`, if unambiguous.
    pub fn method(&self, ty: &str, name: &str) -> Option<FnId> {
        Self::unique(self.methods.get(&(ty.to_string(), name.to_string())))
    }

    /// The declared type of `field` on struct `ty`, if unambiguous.
    pub fn field_type(&self, ty: &str, field: &str) -> Option<&str> {
        self.fields
            .get(&(ty.to_string(), field.to_string()))
            .and_then(|t| t.as_deref())
    }

    /// All non-test definitions named `name`, workspace-wide.
    pub fn defs_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], |v| v.as_slice())
    }

    /// v1-compatible fallback: the unique definition of `name` in the
    /// caller's crate. Deliberately *not* workspace-wide for method
    /// calls — `map.insert(…)` must not resolve to the one `fn insert`
    /// that happens to exist in some other crate; that false edge would
    /// both poison the reachability cone and mislabel std return types.
    fn resolve_by_name(&self, caller: FnId, name: &str) -> Option<FnId> {
        let crate_name = &self.files[caller.0].crate_name;
        Self::unique(self.by_crate.get(&(crate_name.clone(), name.to_string())))
    }

    /// Workspace-wide fallback for *bare* calls only: a call with no
    /// receiver cannot be a std method, so a workspace-unique free
    /// function of that name is a safe target (cross-crate helpers
    /// imported with `use`).
    fn resolve_bare(&self, caller: FnId, name: &str) -> Option<FnId> {
        self.resolve_by_name(caller, name).or_else(|| {
            let frees: Vec<FnId> = self
                .defs_named(name)
                .iter()
                .copied()
                .filter(|&id| self.fn_span(id).impl_type.is_none())
                .collect();
            Self::unique(Some(&frees))
        })
    }

    /// The nominal type of local `name` in `caller`: an explicit `let
    /// x: T` annotation, or the return type of a `let x = Type::ctor(…)`
    /// constructor.
    fn local_type(&self, caller: FnId, name: &str) -> Option<String> {
        let facts = self.facts(caller);
        if let Some(t) = facts.local_types.get(name) {
            return Some(t.clone());
        }
        let (ty, ctor) = facts.local_ctors.get(name)?;
        self.fn_span(self.method(ty, ctor)?).ret_type.clone()
    }

    /// Folds a receiver chain to the type the final method is called on,
    /// then looks the method up on it.
    fn resolve_chain(&self, caller: FnId, chain: &Chain, method: &str) -> Option<FnId> {
        let mut ty: String = match &chain.base {
            ChainBase::SelfKw => self.fn_span(caller).impl_type.clone()?,
            ChainBase::Local(n) => self.local_type(caller, n)?,
            ChainBase::Path(p) if p == "Self" => self.fn_span(caller).impl_type.clone()?,
            ChainBase::Path(p) => p.clone(),
        };
        for seg in &chain.segs {
            ty = match seg {
                ChainSeg::Field(field) => self.field_type(&ty, field)?.to_string(),
                ChainSeg::Call(m) => self.fn_span(self.method(&ty, m)?).ret_type.clone()?,
            };
        }
        self.method(&ty, method)
    }

    /// Resolves one call site in `caller` to a definition, or `None`
    /// when the target is ambiguous or outside the workspace.
    pub fn resolve(&self, caller: FnId, call: &CallSite) -> Option<FnId> {
        let name = call.name(&self.files[caller.0]);
        match &call.recv {
            Recv::Chain(chain) => self
                .resolve_chain(caller, chain, name)
                .or_else(|| self.resolve_by_name(caller, name)),
            Recv::Bare => self.resolve_bare(caller, name),
            Recv::Opaque => self.resolve_by_name(caller, name),
        }
    }

    /// Like [`Workspace::resolve`], but without the unique-name fallback
    /// for method calls: a `Chain` receiver resolves only through its
    /// types. Rules that act on the callee's *signature* (A6's
    /// `Result`-discard check) use this — a name-matched guess about a
    /// method's return type is worse than no answer.
    pub fn resolve_strict(&self, caller: FnId, call: &CallSite) -> Option<FnId> {
        let name = call.name(&self.files[caller.0]);
        match &call.recv {
            Recv::Chain(chain) => self.resolve_chain(caller, chain, name),
            Recv::Bare => self.resolve_bare(caller, name),
            Recv::Opaque => None,
        }
    }

    /// BFS over the call graph from every non-test definition of the
    /// named entry functions. Returns each reached function once, with
    /// its entry and BFS predecessor (for path reconstruction).
    pub fn reachable(&self, entries: &[String]) -> Vec<Reached> {
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: VecDeque<Reached> = VecDeque::new();
        for entry in entries {
            for &id in self.defs_named(entry) {
                if seen.insert(id) {
                    queue.push_back(Reached {
                        id,
                        entry: entry.clone(),
                        pred: None,
                    });
                }
            }
        }
        let mut out = Vec::new();
        while let Some(node) = queue.pop_front() {
            for call in &self.facts(node.id).calls {
                if let Some(callee) = self.resolve(node.id, call) {
                    if seen.insert(callee) {
                        queue.push_back(Reached {
                            id: callee,
                            entry: node.entry.clone(),
                            pred: Some(node.id),
                        });
                    }
                }
            }
            out.push(node);
        }
        out
    }

    /// Reconstructs the entry → … → `id` call path as function names,
    /// given the output of [`Workspace::reachable`].
    pub fn path_to(&self, reached: &[Reached], id: FnId) -> Vec<String> {
        let by_id: BTreeMap<FnId, &Reached> = reached.iter().map(|r| (r.id, r)).collect();
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            names.push(self.fn_span(c).name.clone());
            cur = by_id.get(&c).and_then(|r| r.pred);
        }
        names.reverse();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn ws_files() -> Vec<SourceFile> {
        vec![
            SourceFile::new(
                "crates/ssd/src/device.rs".into(),
                r#"
pub struct Ssd { ftl: Ftl, cache: ReadCache }
impl Ssd {
    pub fn recover_power_loss(&mut self) -> Result<(), SsdError> {
        self.ftl.flash_mut().power_on();
        self.ftl.rebuild_after_power_loss()?;
        Ok(())
    }
}
"#,
            ),
            SourceFile::new(
                "crates/ftl/src/ftl.rs".into(),
                r#"
pub struct Ftl { flash: FlashArray }
impl Ftl {
    pub fn flash_mut(&mut self) -> &mut FlashArray { &mut self.flash }
    pub fn rebuild_after_power_loss(&mut self) -> Result<(), RecoveryError> {
        let stats = self.flash.scan();
        helper(stats);
        Ok(())
    }
}
fn helper(stats: u64) {}
"#,
            ),
            SourceFile::new(
                "crates/flash/src/array.rs".into(),
                r#"
pub struct FlashArray { planes: u32 }
impl FlashArray {
    pub fn power_on(&mut self) { self.planes = boot_planes(); }
    pub fn scan(&self) -> u64 { 0 }
}
fn boot_planes() -> u32 { 4 }
"#,
            ),
        ]
    }

    #[test]
    fn cross_crate_cone_reaches_flash() {
        let files = ws_files();
        let ws = Workspace::build(&files);
        let reached = ws.reachable(&["recover_power_loss".to_string()]);
        let names: Vec<&str> = reached
            .iter()
            .map(|r| ws.fn_span(r.id).name.as_str())
            .collect();
        // ssd entry → ftl (field hint) → flash (return-type hint),
        // three crates in one cone.
        for expect in [
            "recover_power_loss",
            "flash_mut",
            "rebuild_after_power_loss",
            "power_on",
            "scan",
            "helper",
            "boot_planes",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        // Path reconstruction: power_on is reached through the ssd entry.
        let power_on = reached
            .iter()
            .find(|r| ws.fn_span(r.id).name == "power_on")
            .unwrap();
        let path = ws.path_to(&reached, power_on.id);
        assert_eq!(path.first().map(String::as_str), Some("recover_power_loss"));
    }

    #[test]
    fn ambiguous_methods_are_not_resolved() {
        let files = vec![SourceFile::new(
            "crates/x/src/lib.rs".into(),
            r#"
struct A; struct B;
impl A { fn go(&self) { helper(); } }
impl B { fn go(&self) {} }
fn entry(a: A) { a.go(); }
fn helper() {}
"#,
        )];
        let ws = Workspace::build(&files);
        // `a.go()` has no type hint for `a` (no let binding), and `go`
        // is ambiguous by name — nothing past `entry` is reached.
        let reached = ws.reachable(&["entry".to_string()]);
        assert_eq!(reached.len(), 1);
    }

    #[test]
    fn local_ctor_hints_resolve() {
        let files = vec![SourceFile::new(
            "crates/x/src/lib.rs".into(),
            r#"
pub struct Table { n: u64 }
impl Table {
    pub fn with_capacity(n: u64) -> Table { Table { n } }
    pub fn map_one(&mut self) { reached(); }
}
fn entry() { let mut t = Table::with_capacity(8); t.map_one(); }
fn reached() {}
"#,
        )];
        let ws = Workspace::build(&files);
        let reached = ws.reachable(&["entry".to_string()]);
        let names: Vec<&str> = reached
            .iter()
            .map(|r| ws.fn_span(r.id).name.as_str())
            .collect();
        assert!(names.contains(&"with_capacity"));
        assert!(names.contains(&"map_one"));
        assert!(names.contains(&"reached"));
    }
}
