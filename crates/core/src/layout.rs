//! Logical address-space layout: meta / data / journal zones.
//!
//! Mirrors the paper's case study (§II-B): the LBA space is split into a
//! small metadata region, a data area with a fixed home slot per key, and
//! a journal area. The journal area is double-buffered ("before
//! checkpointing, new journal area and JMT are already built as an
//! alternative"), so journaling continues while a checkpoint drains the
//! retiring zone.

use checkin_ssd::SECTOR_BYTES;

/// Number of alternating journal zones.
pub const JOURNAL_ZONES: u32 = 2;

/// Static layout of the engine's LBA space.
///
/// # Examples
///
/// ```
/// use checkin_core::Layout;
///
/// let l = Layout::new(1_000, 4096, 4096, 1 << 16);
/// let home = l.home_lba(42);
/// assert!(home >= l.data_base() && home < l.journal_base(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    meta_sectors: u64,
    record_count: u64,
    slot_sectors: u64,
    unit_sectors: u64,
    zone_sectors: u64,
}

impl Layout {
    /// Builds a layout for `record_count` keys whose values never exceed
    /// `max_record_bytes`, on a device with `unit_bytes` mapping units and
    /// journal zones of `zone_sectors` sectors each.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(
        record_count: u64,
        max_record_bytes: u32,
        unit_bytes: u32,
        zone_sectors: u64,
    ) -> Self {
        assert!(record_count > 0, "record_count must be positive");
        assert!(max_record_bytes > 0, "max_record_bytes must be positive");
        assert!(unit_bytes >= SECTOR_BYTES, "unit smaller than a sector");
        assert!(zone_sectors > 0, "zone_sectors must be positive");
        let unit_sectors = (unit_bytes / SECTOR_BYTES) as u64;
        // Home slots are unit-aligned so one record's home never straddles
        // a neighbour's unit unnecessarily.
        let raw_slot = max_record_bytes.div_ceil(SECTOR_BYTES) as u64;
        let slot_sectors = raw_slot.div_ceil(unit_sectors) * unit_sectors;
        let zone_sectors = zone_sectors.div_ceil(unit_sectors) * unit_sectors;
        Layout {
            meta_sectors: 64.max(unit_sectors * 2),
            record_count,
            slot_sectors,
            unit_sectors,
            zone_sectors,
        }
    }

    /// First sector of the engine metadata (superblock) region.
    pub fn meta_base(&self) -> u64 {
        0
    }

    /// First sector of the data area.
    pub fn data_base(&self) -> u64 {
        self.meta_sectors
    }

    /// Sectors reserved per record home slot.
    pub fn slot_sectors(&self) -> u64 {
        self.slot_sectors
    }

    /// Home (data-area) LBA of a key.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `key` is outside the loaded range.
    pub fn home_lba(&self, key: u64) -> u64 {
        debug_assert!(key < self.record_count, "key {key} out of range");
        self.data_base() + key * self.slot_sectors
    }

    /// First sector of journal zone `zone`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `zone >= JOURNAL_ZONES`. Like
    /// [`StoreLayout::home_lba`], the bound is an internal invariant
    /// (zones rotate modulo `JOURNAL_ZONES`), so release builds — and in
    /// particular the recovery path — must not panic over it.
    pub fn journal_base(&self, zone: u32) -> u64 {
        debug_assert!(zone < JOURNAL_ZONES, "zone {zone} out of range");
        let journal_start = self.data_base() + self.record_count * self.slot_sectors;
        // Align zones to unit boundaries.
        let aligned = journal_start.div_ceil(self.unit_sectors) * self.unit_sectors;
        aligned + zone as u64 * self.zone_sectors
    }

    /// Sectors per journal zone.
    pub fn zone_sectors(&self) -> u64 {
        self.zone_sectors
    }

    /// Total sectors the layout occupies (for capacity checks).
    pub fn total_sectors(&self) -> u64 {
        self.journal_base(JOURNAL_ZONES - 1) + self.zone_sectors
    }

    /// Sectors per mapping unit.
    pub fn unit_sectors(&self) -> u64 {
        self.unit_sectors
    }

    /// Number of records addressed.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zones_do_not_overlap_data() {
        let l = Layout::new(100, 4096, 4096, 1 << 12);
        let last_home_end = l.home_lba(99) + l.slot_sectors();
        assert!(l.journal_base(0) >= last_home_end);
        assert!(l.journal_base(1) >= l.journal_base(0) + l.zone_sectors());
    }

    #[test]
    fn home_slots_are_unit_aligned() {
        let l = Layout::new(100, 1024, 4096, 1 << 12);
        // 1 KiB records in 4 KiB units: slot rounded to 8 sectors.
        assert_eq!(l.slot_sectors(), 8);
        for key in 0..100 {
            assert_eq!(l.home_lba(key) % l.unit_sectors(), 0);
        }
    }

    #[test]
    fn sector_unit_keeps_slots_compact() {
        let l = Layout::new(100, 1024, 512, 1 << 12);
        assert_eq!(l.slot_sectors(), 2, "1 KiB record = 2 sectors");
    }

    #[test]
    fn journal_bases_unit_aligned() {
        for unit in [512u32, 1024, 2048, 4096] {
            let l = Layout::new(33, 777, unit, 5000);
            for z in 0..JOURNAL_ZONES {
                assert_eq!(l.journal_base(z) % l.unit_sectors(), 0, "unit {unit}");
            }
        }
    }

    #[test]
    fn total_sectors_covers_everything() {
        let l = Layout::new(10, 512, 512, 100);
        assert_eq!(l.total_sectors(), l.journal_base(1) + l.zone_sectors());
    }

    #[test]
    #[should_panic(expected = "zone 2 out of range")]
    fn zone_bound_checked() {
        Layout::new(1, 1, 512, 1).journal_base(2);
    }
}
