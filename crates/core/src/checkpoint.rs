//! Checkpoint execution for the five evaluated strategies.
//!
//! The host side of checkpointing: take the retiring journal zone (JMT
//! snapshot), move every live entry to its data-area home using the
//! strategy's mechanism, persist engine metadata, and trim the retired
//! zone. The strategies differ exactly as §IV-A describes:
//!
//! * **Baseline** — the engine reads each journal log over the host
//!   interface and rewrites it to the data area (two data transfers per
//!   entry, plus flash reads and programs);
//! * **ISC-A** — one vendor CoW command per entry (no data transfer, but
//!   per-command overhead and queue pressure);
//! * **ISC-B** — one batched multi-CoW command for the whole checkpoint;
//! * **ISC-C** — the batched command with FTL **remapping** over the
//!   512 B sub-page unit: sector-padded conventional logs remap, but the
//!   padding doubles journal volume and invalid-page generation;
//! * **Check-In** — remapping plus sector-aligned journaling: full logs
//!   remap, sub-sector values merge into shared units (checkpointed by
//!   buffered copies), large values compress.

use checkin_flash::{OobKind, OpPhase};
use checkin_sim::{CounterSet, SimDuration, SimTime};
use checkin_ssd::{CowEntry, ReadRequest, Ssd, SsdError, WriteContent, WriteRequest, SECTOR_BYTES};

use crate::config::Strategy;
use crate::journal::RetiringZone;
use crate::layout::Layout;
use crate::metrics::{CheckpointPhases, PhaseOps};

/// Engine-metadata pseudo-key used for superblock writes.
pub const SUPERBLOCK_KEY: u64 = u64::MAX - 1;

/// Result of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointOutcome {
    /// When the checkpoint (including metadata and journal trim) finished.
    pub finish: SimTime,
    /// Live entries checkpointed.
    pub entries: u64,
    /// Entries satisfied by remapping.
    pub remapped: u64,
    /// Entries satisfied by in-storage or host copy.
    pub copied: u64,
    /// Deletion tombstones applied (home extents trimmed).
    pub deleted: u64,
    /// Flash page programs attributed to this checkpoint (the paper's
    /// "redundant writes").
    pub flash_programs: u64,
    /// Flash page reads attributed to this checkpoint.
    pub flash_reads: u64,
    /// Logical units (re)written because of this checkpoint — the paper's
    /// "redundant writes" in mapping units. Unlike `flash_programs`, this
    /// counts copies even when the device write buffer defers their page
    /// programs beyond the checkpoint window. Remapped entries cost zero.
    pub redundant_units: u64,
    /// Payload bytes (re)written because of this checkpoint — the
    /// unit-size-independent form of `redundant_units`.
    pub redundant_bytes: u64,
    /// Host-interface bytes moved for this checkpoint (baseline only).
    pub host_bytes: u64,
    /// Entries whose live payload vanished before the checkpoint (e.g.
    /// fully superseded merged fragments): neither remapped nor copied.
    pub skipped: u64,
    /// Per-phase breakdown of this checkpoint (Algorithm 1 stages), with
    /// flash-op attribution per phase. Invariant (checked in debug
    /// builds): the per-phase flash ops sum to `flash_programs` /
    /// `flash_reads`, and the run-phase bucket stays empty.
    pub phases: CheckpointPhases,
}

/// Flash-op delta for one attribution phase between two counter snapshots.
fn phase_delta(now: &CounterSet, before: &CounterSet, phase: OpPhase) -> PhaseOps {
    PhaseOps {
        reads: now.get(phase.read_key()) - before.get(phase.read_key()),
        programs: now.get(phase.program_key()) - before.get(phase.program_key()),
        erases: now.get(phase.erase_key()) - before.get(phase.erase_key()),
    }
}

/// Executes one checkpoint of `zone` with `strategy`, starting at `at`.
///
/// # Errors
///
/// Propagates device failures; the checkpoint is not atomic against
/// device errors (they indicate simulator bugs or genuine out-of-space).
pub fn run_checkpoint(
    ssd: &mut Ssd,
    strategy: Strategy,
    layout: &Layout,
    zone: &RetiringZone,
    checkpoint_seq: u64,
    at: SimTime,
) -> Result<CheckpointOutcome, SsdError> {
    let flash_before = ssd.ftl().flash().counters().clone();
    // Reset the device's accumulated remap/copy stopwatches so this
    // checkpoint's take below reflects only its own work.
    let _ = ssd.take_cp_phase_times();
    let unit_writes_before = ssd.ftl().counters().get("ftl.host_unit_writes");
    let bytes_before = ssd.ftl().counters().get("ftl.host_bytes");
    let remap_before = ssd.counters().get("ssd.remap_entries");
    let copy_before = ssd.counters().get("ssd.copy_entries");
    let skipped_before = ssd.counters().get("ssd.cow_skipped_entries");
    let programs_before = flash_before.get("flash.program");
    let reads_before = flash_before.get("flash.read");
    let host_before =
        ssd.counters().get("ssd.host_read_bytes") + ssd.counters().get("ssd.host_write_bytes");

    // Deletion tombstones: the checkpoint applies them by trimming the
    // key's home extent — identical for every strategy (a trim is a
    // mapping operation, nothing to copy or remap).
    let mut done = at;
    let mut tombstoned = 0u64;
    for (key, e) in &zone.entries {
        if e.tombstone {
            done =
                done.max(ssd.deallocate(layout.home_lba(*key), layout.slot_sectors() as u32, at));
            tombstoned += 1;
        }
    }
    let drain_done = done;

    let mut host_copied = 0u64;
    let mut host_skipped = 0u64;
    let mut host_copy_time = SimDuration::ZERO;
    done = done.max(match strategy.checkpoint_mode() {
        None => {
            // The baseline's read-back-and-rewrite loop is its copy
            // fallback; attribute its flash ops accordingly.
            let prev = ssd
                .ftl_mut()
                .flash_mut()
                .set_op_phase(OpPhase::CheckpointCopy);
            let moved = host_checkpoint(ssd, layout, zone, at);
            ssd.ftl_mut().flash_mut().set_op_phase(prev);
            let (finish, copied, skipped) = moved?;
            host_copied = copied;
            host_skipped = skipped;
            host_copy_time = finish.saturating_duration_since(at);
            finish
        }
        Some(mode) => {
            let entries = build_entries(layout, zone);
            if entries.is_empty() {
                at
            } else if strategy.per_entry_commands() {
                let mut done = at;
                for e in &entries {
                    done = done.max(ssd.cow_single(e, mode, at)?);
                }
                done
            } else {
                ssd.checkpoint(&entries, mode, at)?
            }
        }
    });
    let movement_done = done;
    let cp_times = ssd.take_cp_phase_times();

    // Data movement is complete; everything after this line (metadata,
    // trim) is bookkeeping, not redundant data writes.
    let redundant_units = ssd.ftl().counters().get("ftl.host_unit_writes") - unit_writes_before;
    let redundant_bytes = ssd.ftl().counters().get("ftl.host_bytes") - bytes_before;

    // Engine metadata: the superblock records the checkpoint sequence
    // (parity identifies the newly active journal zone on recovery).
    let meta = WriteRequest {
        lba: layout.meta_base(),
        sectors: layout.unit_sectors() as u32,
        content: WriteContent::Record {
            key: SUPERBLOCK_KEY,
            version: checkpoint_seq,
            bytes: layout.unit_sectors() as u32 * SECTOR_BYTES,
        },
    };
    done = done.max(ssd.write(&meta, OobKind::Meta, done)?);
    let meta_done = done;

    // Deallocate the retired journal logs ("used journal data are flushed
    // because they are no longer needed").
    if zone.used_sectors > 0 {
        let us = layout.unit_sectors();
        let trim_sectors = zone.used_sectors.div_ceil(us) * us;
        done = done.max(ssd.deallocate(zone.base_lba, trim_sectors as u32, done));
    }

    let flash_now = ssd.ftl().flash().counters();
    let phases = CheckpointPhases {
        drain_time: drain_done.saturating_duration_since(at),
        remap: phase_delta(flash_now, &flash_before, OpPhase::CheckpointRemap),
        remap_time: cp_times.remap,
        copy: phase_delta(flash_now, &flash_before, OpPhase::CheckpointCopy),
        copy_time: cp_times.copy + host_copy_time,
        meta: phase_delta(flash_now, &flash_before, OpPhase::Meta),
        meta_time: meta_done.saturating_duration_since(movement_done),
        trim: phase_delta(flash_now, &flash_before, OpPhase::Dealloc),
        trim_time: done.saturating_duration_since(meta_done),
        gc: phase_delta(flash_now, &flash_before, OpPhase::Gc),
        other: phase_delta(flash_now, &flash_before, OpPhase::Run),
    };
    let flash_programs = flash_now.get("flash.program") - programs_before;
    let flash_reads = flash_now.get("flash.read") - reads_before;
    // Reconciliation invariants: the per-phase attribution was counted
    // at the flash array independently of the aggregate counters, so any
    // divergence is an accounting bug, not workload variance.
    debug_assert_eq!(
        phases.flash_programs(),
        flash_programs,
        "per-phase program attribution must sum to the checkpoint total"
    );
    debug_assert_eq!(
        phases.flash_reads(),
        flash_reads,
        "per-phase read attribution must sum to the checkpoint total"
    );
    debug_assert_eq!(
        phases.other.total(),
        0,
        "no run-phase flash ops may occur inside a checkpoint window"
    );

    let remapped = ssd.counters().get("ssd.remap_entries") - remap_before;
    let copied = ssd.counters().get("ssd.copy_entries") - copy_before + host_copied;
    let skipped = ssd.counters().get("ssd.cow_skipped_entries") - skipped_before + host_skipped;
    debug_assert_eq!(
        remapped + copied + skipped + tombstoned,
        zone.entries.len() as u64,
        "every zone entry must be remapped, copied, skipped, or tombstoned"
    );

    Ok(CheckpointOutcome {
        finish: done,
        entries: zone.entries.len() as u64,
        remapped,
        copied,
        deleted: tombstoned,
        flash_programs,
        flash_reads,
        redundant_units,
        redundant_bytes,
        host_bytes: ssd.counters().get("ssd.host_read_bytes")
            + ssd.counters().get("ssd.host_write_bytes")
            - host_before,
        skipped,
        phases,
    })
}

/// Builds device CoW entries from the retiring zone's JMT snapshot.
fn build_entries(layout: &Layout, zone: &RetiringZone) -> Vec<CowEntry> {
    zone.entries
        .iter()
        .filter(|(_, e)| !e.tombstone)
        .map(|(key, e)| CowEntry {
            src_lba: e.journal_lba,
            dst_lba: layout.home_lba(*key),
            sectors: e.sectors,
            // The home holds the record itself (or its compressed form),
            // never the journal header padding.
            dst_sectors: e
                .raw_bytes
                .min(e.stored_bytes)
                .div_ceil(SECTOR_BYTES)
                .max(1),
            key: *key,
            merged: e.merged,
        })
        .collect()
}

/// Baseline: host reads every journal log back and rewrites it home.
/// Reads are issued as a batch (bounded by queue depth), then writes, then
/// metadata — matching Figure 4(a)'s ordering.
///
/// Returns `(finish, copied, skipped)`: entries rewritten home vs entries
/// whose journal payload read back empty (fully superseded).
fn host_checkpoint(
    ssd: &mut Ssd,
    layout: &Layout,
    zone: &RetiringZone,
    at: SimTime,
) -> Result<(SimTime, u64, u64), SsdError> {
    let mut reads_done = at;
    let mut skipped = 0u64;
    let mut staged = Vec::with_capacity(zone.entries.len());
    for (key, e) in &zone.entries {
        if e.tombstone {
            continue;
        }
        let (frags, t) = ssd.read(
            &ReadRequest {
                lba: e.journal_lba,
                sectors: e.sectors,
                key: Some(*key),
            },
            at,
        )?;
        reads_done = reads_done.max(t);
        let bytes: u32 = frags.iter().map(|f| f.bytes).sum();
        let version = frags.iter().map(|f| f.version).max().unwrap_or(e.version);
        if bytes > 0 {
            staged.push((*key, version, bytes));
        } else {
            skipped += 1;
        }
    }
    let copied = staged.len() as u64;
    let mut writes_done = reads_done;
    for (key, version, bytes) in staged {
        let sectors = bytes.div_ceil(SECTOR_BYTES).max(1);
        let t = ssd.write(
            &WriteRequest {
                lba: layout.home_lba(key),
                sectors,
                content: WriteContent::Record {
                    key,
                    version,
                    bytes,
                },
            },
            OobKind::Data,
            reads_done,
        )?;
        writes_done = writes_done.max(t);
    }
    Ok((writes_done, copied, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JournalManager;
    use checkin_flash::{FlashArray, FlashGeometry, FlashTiming};
    use checkin_ftl::{Ftl, FtlConfig};
    use checkin_ssd::SsdTiming;

    fn setup(strategy: Strategy) -> (Ssd, Layout, JournalManager) {
        let unit = strategy.default_unit_bytes();
        let flash = FlashArray::new(FlashGeometry::small(), FlashTiming::mlc());
        let ftl = Ftl::new(
            flash,
            FtlConfig {
                unit_bytes: unit,
                write_points: 2,
                gc_threshold_blocks: 4,
                gc_soft_threshold_blocks: 8,
                ..FtlConfig::default()
            },
        )
        .unwrap();
        let ssd = Ssd::new(ftl, SsdTiming::paper_default());
        let layout = Layout::new(64, 4096, unit, 1 << 12);
        let jm = JournalManager::new(layout, strategy.sector_aligned_journaling(), 0.7);
        (ssd, layout, jm)
    }

    fn journal_some(ssd: &mut Ssd, jm: &mut JournalManager, n: u64) -> SimTime {
        let mut t = SimTime::ZERO;
        for key in 0..n {
            {
                let req = jm.append(key, 2, 480).unwrap();
                t = ssd.write(&req, OobKind::Journal, t).unwrap();
            }
        }
        t
    }

    fn verify_homes(ssd: &mut Ssd, layout: &Layout, n: u64, version: u64, t: SimTime) {
        for key in 0..n {
            let (frags, _) = ssd
                .read(
                    &ReadRequest {
                        lba: layout.home_lba(key),
                        sectors: layout.slot_sectors() as u32,
                        key: Some(key),
                    },
                    t,
                )
                .unwrap();
            assert!(!frags.is_empty(), "key {key} missing at home");
            assert_eq!(
                frags.iter().map(|f| f.version).max().unwrap(),
                version,
                "key {key}"
            );
        }
    }

    #[test]
    fn every_strategy_lands_data_at_home() {
        for strategy in Strategy::all() {
            let (mut ssd, layout, mut jm) = setup(strategy);
            let t = journal_some(&mut ssd, &mut jm, 16);
            let zone = jm.begin_checkpoint();
            let out = run_checkpoint(&mut ssd, strategy, &layout, &zone, 1, t).unwrap();
            assert_eq!(out.entries, 16, "{strategy}");
            verify_homes(&mut ssd, &layout, 16, 2, out.finish);
            ssd.ftl().check_invariants().unwrap();
        }
    }

    #[test]
    fn checkin_journals_less_than_iscc() {
        // With conventional journaling each commit pads to a full sector,
        // so a stream of sub-sector and compressible values costs ISC-C
        // more journal sectors than Check-In's size classes + merging +
        // compression. Fewer journal sectors -> fewer page programs.
        let sizes = [100u32, 200, 300, 480, 900, 2000, 4000, 150];
        let mut journal_sectors = Vec::new();
        let mut stored_bytes = Vec::new();
        for strategy in [Strategy::IscC, Strategy::CheckIn] {
            let (mut ssd, layout, mut jm) = setup(strategy);
            let mut t = SimTime::ZERO;
            for (i, &bytes) in sizes.iter().cycle().take(64).enumerate() {
                {
                    let req = jm.append(i as u64 % 32, 2, bytes).unwrap();
                    t = ssd.write(&req, OobKind::Journal, t).unwrap();
                }
            }
            journal_sectors.push(jm.zone_used_sectors());
            stored_bytes.push(jm.jmt().stored_bytes());
            let zone = jm.begin_checkpoint();
            let out = run_checkpoint(&mut ssd, strategy, &layout, &zone, 1, t).unwrap();
            assert!(out.remapped > 0, "{strategy} should remap");
            let _ = layout;
        }
        assert!(
            journal_sectors[1] < journal_sectors[0],
            "Check-In sectors {} !< ISC-C sectors {}",
            journal_sectors[1],
            journal_sectors[0]
        );
        assert!(stored_bytes[1] < stored_bytes[0]);
    }

    #[test]
    fn checkin_merged_partials_copy_but_iscc_small_logs_remap() {
        // Sub-sector values: ISC-C pads them to whole sectors (remappable);
        // Check-In merges them (space-efficient, checkpoint copies).
        let (mut ssd_c, layout_c, mut jm_c) = setup(Strategy::IscC);
        let mut t = SimTime::ZERO;
        for key in 0..10u64 {
            {
                let req = jm_c.append(key, 2, 150).unwrap();
                t = ssd_c.write(&req, OobKind::Journal, t).unwrap();
            }
        }
        let used_iscc = jm_c.zone_used_sectors();
        let zone = jm_c.begin_checkpoint();
        let out_c = run_checkpoint(&mut ssd_c, Strategy::IscC, &layout_c, &zone, 1, t).unwrap();
        assert_eq!(out_c.remapped, 10);

        let (mut ssd_ci, layout_ci, mut jm_ci) = setup(Strategy::CheckIn);
        let mut t = SimTime::ZERO;
        for key in 0..10u64 {
            {
                let req = jm_ci.append(key, 2, 150).unwrap();
                t = ssd_ci.write(&req, OobKind::Journal, t).unwrap();
            }
        }
        let used_ci = jm_ci.zone_used_sectors();
        let zone = jm_ci.begin_checkpoint();
        let out_ci =
            run_checkpoint(&mut ssd_ci, Strategy::CheckIn, &layout_ci, &zone, 1, t).unwrap();
        assert_eq!(out_ci.copied, 10, "merged partials take the copy path");
        // 256-byte classes merge two per sector: half the journal space.
        assert!(used_ci <= used_iscc / 2 + 1, "{used_ci} vs {used_iscc}");
    }

    #[test]
    fn baseline_moves_bytes_over_host_interface() {
        let (mut ssd, layout, mut jm) = setup(Strategy::Baseline);
        let t = journal_some(&mut ssd, &mut jm, 8);
        let zone = jm.begin_checkpoint();
        let out = run_checkpoint(&mut ssd, Strategy::Baseline, &layout, &zone, 1, t).unwrap();
        assert!(
            out.host_bytes > 8 * 480,
            "host transfer: {}",
            out.host_bytes
        );
        assert_eq!(out.remapped, 0);
    }

    #[test]
    fn in_storage_strategies_move_no_host_data() {
        for strategy in [
            Strategy::IscA,
            Strategy::IscB,
            Strategy::IscC,
            Strategy::CheckIn,
        ] {
            let (mut ssd, layout, mut jm) = setup(strategy);
            let t = journal_some(&mut ssd, &mut jm, 8);
            let zone = jm.begin_checkpoint();
            let out = run_checkpoint(&mut ssd, strategy, &layout, &zone, 1, t).unwrap();
            // Only the metadata write moves host bytes.
            assert!(
                out.host_bytes <= 8 * SECTOR_BYTES as u64,
                "{strategy}: {}",
                out.host_bytes
            );
        }
    }

    #[test]
    fn isca_issues_one_command_per_entry() {
        let (mut ssd, layout, mut jm) = setup(Strategy::IscA);
        let t = journal_some(&mut ssd, &mut jm, 12);
        let zone = jm.begin_checkpoint();
        run_checkpoint(&mut ssd, Strategy::IscA, &layout, &zone, 1, t).unwrap();
        assert_eq!(ssd.counters().get("ssd.cmd_cow"), 12);
        assert_eq!(ssd.counters().get("ssd.cmd_checkpoint"), 0);
    }

    #[test]
    fn iscb_issues_one_batched_command() {
        let (mut ssd, layout, mut jm) = setup(Strategy::IscB);
        let t = journal_some(&mut ssd, &mut jm, 12);
        let zone = jm.begin_checkpoint();
        run_checkpoint(&mut ssd, Strategy::IscB, &layout, &zone, 1, t).unwrap();
        assert_eq!(ssd.counters().get("ssd.cmd_cow"), 0);
        assert_eq!(ssd.counters().get("ssd.cmd_checkpoint"), 1);
    }

    #[test]
    fn empty_zone_checkpoint_is_cheap() {
        for strategy in Strategy::all() {
            let (mut ssd, layout, mut jm) = setup(strategy);
            let zone = jm.begin_checkpoint();
            let out = run_checkpoint(&mut ssd, strategy, &layout, &zone, 1, SimTime::ZERO).unwrap();
            assert_eq!(out.entries, 0);
            assert_eq!(out.remapped + out.copied, 0);
        }
    }

    #[test]
    fn journal_trimmed_after_checkpoint() {
        let (mut ssd, layout, mut jm) = setup(Strategy::CheckIn);
        let t = journal_some(&mut ssd, &mut jm, 8);
        let first_journal_lba = layout.journal_base(0);
        let zone = jm.begin_checkpoint();
        let out = run_checkpoint(&mut ssd, Strategy::CheckIn, &layout, &zone, 1, t).unwrap();
        // Journal LBA no longer readable; home still is.
        let (frags, _) = ssd
            .read(
                &ReadRequest {
                    lba: first_journal_lba,
                    sectors: 1,
                    key: None,
                },
                out.finish,
            )
            .unwrap();
        assert!(frags.is_empty(), "journal should be trimmed");
        verify_homes(&mut ssd, &layout, 8, 2, out.finish);
    }

    #[test]
    fn merged_partials_checkpoint_correctly() {
        let (mut ssd, layout, mut jm) = setup(Strategy::CheckIn);
        let mut t = SimTime::ZERO;
        // Small values -> PARTIAL -> merged sectors.
        for key in 0..10u64 {
            {
                let req = jm.append(key, 3, 100).unwrap();
                t = ssd.write(&req, OobKind::Journal, t).unwrap();
            }
        }
        let zone = jm.begin_checkpoint();
        let out = run_checkpoint(&mut ssd, Strategy::CheckIn, &layout, &zone, 1, t).unwrap();
        // Merged entries cannot remap.
        assert_eq!(out.remapped, 0);
        assert_eq!(out.copied, 10);
        verify_homes(&mut ssd, &layout, 10, 3, out.finish);
    }
}
