//! System configuration: the five evaluated strategies and the Table I
//! machine model.

use checkin_flash::{FlashGeometry, FlashTiming};
use checkin_ftl::{FtlConfig, MediaRetryPolicy, VictimPolicy};
use checkin_sim::SimDuration;
use checkin_ssd::{CheckpointMode, SsdTiming};
use checkin_workload::WorkloadSpec;

/// The five configurations the paper evaluates (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Checkpointing by the storage engine: read journal logs back to the
    /// host and rewrite them to the data area.
    Baseline,
    /// In-storage checkpointing, one CoW command per journal entry.
    IscA,
    /// In-storage checkpointing, one batched multi-CoW command.
    IscB,
    /// In-storage checkpointing with FTL remapping (no sector-aligned
    /// journaling, conventional 4 KiB mapping unit).
    IscC,
    /// The full proposal: remapping plus sector-aligned journaling on a
    /// sector (512 B) mapping unit.
    CheckIn,
}

impl Strategy {
    /// All strategies in the paper's presentation order.
    pub fn all() -> [Strategy; 5] {
        [
            Strategy::Baseline,
            Strategy::IscA,
            Strategy::IscB,
            Strategy::IscC,
            Strategy::CheckIn,
        ]
    }

    /// Label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Baseline => "Baseline",
            Strategy::IscA => "ISC-A",
            Strategy::IscB => "ISC-B",
            Strategy::IscC => "ISC-C",
            Strategy::CheckIn => "Check-In",
        }
    }

    /// Device-side checkpoint mode, or `None` when the host drives the
    /// checkpoint itself (baseline).
    pub fn checkpoint_mode(self) -> Option<CheckpointMode> {
        match self {
            Strategy::Baseline => None,
            Strategy::IscA | Strategy::IscB => Some(CheckpointMode::Copy),
            Strategy::IscC | Strategy::CheckIn => Some(CheckpointMode::Remap),
        }
    }

    /// True when entries are sent one command each (ISC-A) rather than as
    /// one batched checkpoint command.
    pub fn per_entry_commands(self) -> bool {
        matches!(self, Strategy::IscA)
    }

    /// True when the engine reformats journal logs to the mapping unit
    /// (Algorithm 2).
    pub fn sector_aligned_journaling(self) -> bool {
        matches!(self, Strategy::CheckIn)
    }

    /// Mapping unit the paper pairs with this strategy: the remapping
    /// schemes (ISC-C, Check-In) use the sub-page 512 B unit; the copy
    /// schemes keep a conventional 4 KiB page mapping.
    pub fn default_unit_bytes(self) -> u32 {
        match self {
            Strategy::IscC | Strategy::CheckIn => 512,
            _ => 4096,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full-system configuration (DBMS + host + SSD), mirroring Table I.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which checkpointing scheme runs.
    pub strategy: Strategy,
    /// Workload specification (mix, skew, record count, sizes, seed).
    pub workload: WorkloadSpec,
    /// Concurrent client threads (the paper sweeps 4..128).
    pub threads: u32,
    /// Total queries to execute after loading.
    pub total_queries: u64,
    /// Periodic checkpoint trigger.
    pub checkpoint_interval: SimDuration,
    /// Checkpoint also triggers when this many journal *sectors*
    /// accumulate (the paper's "200 journal files / 2 GB" condition,
    /// scaled down with the query counts).
    pub journal_trigger_sectors: u64,
    /// Lock query processing while a checkpoint runs (the paper does this
    /// to measure checkpoint time in Fig. 10).
    pub lock_queries_during_checkpoint: bool,
    /// Queries admitted per client event-queue hop. At 1 (the default)
    /// every operation is its own event and runs are byte-identical to
    /// the historical one-op-per-event loop; larger values amortize
    /// event-queue churn by executing up to this many back-to-back
    /// operations from the popped client. Batches never straddle a
    /// checkpoint boundary (periodic tick, size trigger, or lock
    /// window), so checkpoint timing is unaffected.
    pub admission_batch: u32,
    /// Host CPU cores processing queries.
    pub host_cores: u32,
    /// Host CPU time per query (engine work excluding I/O).
    pub host_cpu_per_op: SimDuration,
    /// Compression ratio applied to >512 B values under sector-aligned
    /// journaling (Algorithm 2 line 4). 0.7 models text-like payloads.
    pub compression_ratio: f64,
    /// Mapping unit override; `None` uses the strategy default.
    pub unit_bytes: Option<u32>,
    /// Device map-cache capacity in entries; smaller mapping units mean
    /// more entries and lower hit rates (Fig. 13a's effect). `None` =
    /// whole table in DRAM.
    pub map_cache_entries: Option<u64>,
    /// Flash array shape.
    pub geometry: FlashGeometry,
    /// NAND timing.
    pub flash_timing: FlashTiming,
    /// Device front-end timing.
    pub ssd_timing: SsdTiming,
    /// GC thresholds (unit size is filled in from the strategy).
    pub gc_threshold_blocks: u32,
    /// Soft (background) GC threshold.
    pub gc_soft_threshold_blocks: u32,
    /// GC victim-selection policy. The default (windowed-greedy over the
    /// 8 oldest closed blocks) is the winner of the `gclab` policy sweep
    /// (see EXPERIMENTS.md): best or tied-best WAF in every swept
    /// workload and the lowest p99.9. Perfsuite gates the switch against
    /// a greedy-forced run of the same full-run workload.
    pub gc_policy: VictimPolicy,
    /// Route journal / data / metadata+GC write streams to distinct
    /// write points (hot/cold separation on the ISCE's page classes).
    pub stream_separation: bool,
    /// Blocks withheld from usable headroom as software
    /// over-provisioning (0 = thresholds only).
    pub overprovision_blocks: u32,
    /// Max background-GC rounds after each checkpoint.
    pub background_gc_rounds: u32,
    /// Device write-buffer capacity in mapping units (power-protected
    /// DRAM; units page out oldest-first past this watermark).
    pub write_buffer_units: u32,
    /// Ablation: disable Algorithm 2's partial-log merging (partials pad
    /// to full units instead). Only meaningful for Check-In.
    pub ablate_partial_merging: bool,
    /// Ablation: disable Algorithm 2's compression of values larger than
    /// the mapping unit. Only meaningful for Check-In.
    pub ablate_compression: bool,
    /// Verify per-unit checksums on every device read path and quarantine
    /// failures (on by default). Harnesses turn this off to prove their
    /// verifiers detect the resulting silent corruption.
    pub verify_checksums: bool,
    /// Pages the background scrubber verifies in each post-checkpoint
    /// idle window (0 disables scrubbing).
    pub scrub_pages_per_idle: u32,
}

impl SystemConfig {
    /// Paper-like defaults for one strategy. Query counts are scaled for
    /// simulation speed; benches override what they sweep.
    pub fn for_strategy(strategy: Strategy) -> Self {
        SystemConfig {
            strategy,
            workload: WorkloadSpec::paper_default(),
            threads: 32,
            total_queries: 40_000,
            checkpoint_interval: SimDuration::from_millis(250),
            journal_trigger_sectors: 32_768,
            lock_queries_during_checkpoint: false,
            admission_batch: 1,
            host_cores: 32,
            host_cpu_per_op: SimDuration::from_micros(250),
            compression_ratio: 0.7,
            unit_bytes: None,
            map_cache_entries: Some(32_768),
            geometry: FlashGeometry::paper_default(),
            flash_timing: FlashTiming::mlc(),
            ssd_timing: SsdTiming::paper_default(),
            gc_threshold_blocks: 8,
            gc_soft_threshold_blocks: 48,
            gc_policy: VictimPolicy::WINDOWED_DEFAULT,
            stream_separation: false,
            overprovision_blocks: 0,
            background_gc_rounds: 16,
            write_buffer_units: 128,
            ablate_partial_merging: false,
            ablate_compression: false,
            verify_checksums: true,
            scrub_pages_per_idle: 16,
        }
    }

    /// The mapping unit in effect (override or strategy default).
    pub fn effective_unit_bytes(&self) -> u32 {
        self.unit_bytes
            .unwrap_or(self.strategy.default_unit_bytes())
    }

    /// FTL configuration derived from this system configuration.
    pub fn ftl_config(&self) -> FtlConfig {
        FtlConfig {
            unit_bytes: self.effective_unit_bytes(),
            gc_threshold_blocks: self.gc_threshold_blocks,
            gc_soft_threshold_blocks: self.gc_soft_threshold_blocks,
            victim_policy: self.gc_policy,
            stream_separation: self.stream_separation,
            overprovision_blocks: self.overprovision_blocks,
            write_points: self.geometry.total_dies() as u32,
            map_cache_entries: self.map_cache_entries,
            write_buffer_units: self.write_buffer_units,
            wear_leveling_threshold: Some(64),
            retry_read: MediaRetryPolicy::default(),
            retry_program: MediaRetryPolicy::default(),
            retry_erase: MediaRetryPolicy::default(),
            verify_checksums: self.verify_checksums,
        }
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        self.workload
            .mix
            .validate()
            .map_err(|s| format!("operation mix sums to {s}%, expected 100"))?;
        if self.threads == 0 {
            return Err("threads must be positive".into());
        }
        if self.host_cores == 0 {
            return Err("host_cores must be positive".into());
        }
        if self.admission_batch == 0 {
            return Err("admission_batch must be positive".into());
        }
        if !(0.0 < self.compression_ratio && self.compression_ratio <= 1.0) {
            return Err("compression_ratio must be in (0, 1]".into());
        }
        self.ftl_config()
            .validate(self.geometry.page_bytes, self.geometry.total_blocks())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_properties_match_paper() {
        assert_eq!(Strategy::Baseline.checkpoint_mode(), None);
        assert_eq!(Strategy::IscA.checkpoint_mode(), Some(CheckpointMode::Copy));
        assert_eq!(Strategy::IscB.checkpoint_mode(), Some(CheckpointMode::Copy));
        assert_eq!(
            Strategy::IscC.checkpoint_mode(),
            Some(CheckpointMode::Remap)
        );
        assert_eq!(
            Strategy::CheckIn.checkpoint_mode(),
            Some(CheckpointMode::Remap)
        );
        assert!(Strategy::IscA.per_entry_commands());
        assert!(!Strategy::IscB.per_entry_commands());
        assert!(Strategy::CheckIn.sector_aligned_journaling());
        assert!(!Strategy::IscC.sector_aligned_journaling());
        assert_eq!(Strategy::CheckIn.default_unit_bytes(), 512);
        assert_eq!(Strategy::IscC.default_unit_bytes(), 512);
        assert_eq!(Strategy::IscB.default_unit_bytes(), 4096);
    }

    #[test]
    fn all_lists_five_in_order() {
        let all = Strategy::all();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].label(), "Baseline");
        assert_eq!(all[4].label(), "Check-In");
    }

    #[test]
    fn defaults_validate_for_every_strategy() {
        for s in Strategy::all() {
            SystemConfig::for_strategy(s).validate().unwrap();
        }
    }

    #[test]
    fn effective_unit_honours_override() {
        let mut c = SystemConfig::for_strategy(Strategy::CheckIn);
        assert_eq!(c.effective_unit_bytes(), 512);
        c.unit_bytes = Some(2048);
        assert_eq!(c.effective_unit_bytes(), 2048);
    }

    #[test]
    fn validate_rejects_bad_fields() {
        let mut c = SystemConfig::for_strategy(Strategy::Baseline);
        c.threads = 0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::for_strategy(Strategy::Baseline);
        c.compression_ratio = 0.0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::for_strategy(Strategy::Baseline);
        c.unit_bytes = Some(3000);
        assert!(c.validate().is_err());
    }

    #[test]
    fn display_uses_label() {
        assert_eq!(Strategy::CheckIn.to_string(), "Check-In");
    }
}
