//! Full-system closed-loop simulation: client threads driving the engine
//! and SSD, with periodic and size-triggered checkpointing.
//!
//! The event loop processes client completions in simulated-time order;
//! device contention (dies, channels, link, firmware CPU) is carried by
//! the resource timelines inside [`checkin_ssd::Ssd`]. A checkpoint issues
//! its device operations as a burst at trigger time, so queries submitted
//! while it drains queue behind it — the interference the paper measures
//! in Figures 3(c) and 9.

use checkin_sim::{
    EventQueue, LatencyRecorder, ResourcePool, SimDuration, SimRng, SimTime, Tracer,
};
use checkin_ssd::Ssd;
use checkin_workload::{OpGenerator, Operation};

use crate::checkpoint::CheckpointOutcome;
use crate::config::SystemConfig;
use crate::engine::{EngineError, KvEngine};
use crate::layout::Layout;
use crate::metrics::{CheckpointPhases, FlashStats, LatencyStats, RunReport, TimelinePoint};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Client(u32),
    CheckpointTick,
}

/// Accumulates checkpoint outcomes across every trigger path (periodic
/// tick, journal-size trigger, and forced journal-full checkpoints inside
/// an update retry), so no checkpoint's work escapes the report.
#[derive(Debug)]
struct CpAccum {
    count: u64,
    entries: u64,
    remapped: u64,
    copied: u64,
    programs: u64,
    reads: u64,
    redundant_units: u64,
    redundant_bytes: u64,
    durations: LatencyRecorder,
    phases: CheckpointPhases,
}

impl CpAccum {
    fn new() -> Self {
        CpAccum {
            count: 0,
            entries: 0,
            remapped: 0,
            copied: 0,
            programs: 0,
            reads: 0,
            redundant_units: 0,
            redundant_bytes: 0,
            durations: LatencyRecorder::new(),
            phases: CheckpointPhases::default(),
        }
    }

    fn absorb(&mut self, out: &CheckpointOutcome, started: SimTime) {
        self.count += 1;
        self.entries += out.entries;
        self.remapped += out.remapped;
        self.copied += out.copied;
        self.programs += out.flash_programs;
        self.reads += out.flash_reads;
        self.redundant_units += out.redundant_units;
        self.redundant_bytes += out.redundant_bytes;
        self.durations.record(out.finish.duration_since(started));
        self.phases.accumulate(&out.phases);
    }
}

/// `num / den`, or NaN when `den` is zero — a run with no writes has no
/// meaningful amplification, and fabricating a denominator would report
/// a finite but false ratio.
fn ratio_or_nan(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        f64::NAN
    }
}

/// The assembled system: engine + device + clients.
///
/// # Examples
///
/// ```
/// use checkin_core::{KvSystem, SystemConfig, Strategy};
///
/// let mut config = SystemConfig::for_strategy(Strategy::CheckIn);
/// config.total_queries = 2_000;
/// config.workload.record_count = 500;
/// config.threads = 8;
/// let report = KvSystem::new(config)?.run()?;
/// assert_eq!(report.ops, 2_000);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct KvSystem {
    config: SystemConfig,
    ssd: Ssd,
    engine: KvEngine,
    generators: Vec<OpGenerator>,
}

impl KvSystem {
    /// Builds the system: flash array, FTL, SSD, engine and per-thread
    /// operation generators.
    ///
    /// # Errors
    ///
    /// Returns a description when the configuration is inconsistent or
    /// the layout does not fit the device.
    pub fn new(config: SystemConfig) -> Result<Self, String> {
        config.validate()?;
        let zone_sectors = (config.journal_trigger_sectors * 2).max(1024);
        // Home slots must fit the largest journal-log footprint so that a
        // remapped log (value + commit header, sector padded) never
        // overflows into a neighbour's slot.
        let layout = Layout::new(
            config.workload.record_count,
            config.workload.sizes.max_bytes() + crate::journal::LOG_HEADER_BYTES,
            config.effective_unit_bytes(),
            zone_sectors,
        );
        let layout_bytes = layout.total_sectors() * checkin_ssd::SECTOR_BYTES as u64;
        let capacity = config.geometry.capacity_bytes();
        if layout_bytes * 10 > capacity * 9 {
            return Err(format!(
                "layout needs {layout_bytes} B but device holds {capacity} B \
                 (>90% would leave no GC headroom); shrink record_count or grow geometry"
            ));
        }
        let flash = checkin_flash::FlashArray::new(config.geometry, config.flash_timing);
        let ftl = checkin_ftl::Ftl::new(flash, config.ftl_config())?;
        let ssd = Ssd::new(ftl, config.ssd_timing);
        let mut options = if config.strategy.sector_aligned_journaling() {
            crate::journal::JournalOptions::check_in(config.compression_ratio)
        } else {
            crate::journal::JournalOptions::conventional()
        };
        if config.ablate_partial_merging {
            options.merge_partials = false;
        }
        if config.ablate_compression {
            options.compression_ratio = 1.0;
        }
        let engine = KvEngine::with_journal_options(config.strategy, layout, options);

        let mut seed_rng = SimRng::seed_from(config.workload.seed);
        let generators = (0..config.threads)
            .map(|_| {
                let mut spec = config.workload.clone();
                spec.seed = seed_rng.next_u64();
                spec.generator()
            })
            .collect();
        Ok(KvSystem {
            config,
            ssd,
            engine,
            generators,
        })
    }

    /// The device (stats, invariants).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// The engine (versions, JMT).
    pub fn engine(&self) -> &KvEngine {
        &self.engine
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Simultaneous mutable access to engine and device, for tests and
    /// examples that drive verification reads through the real stack
    /// after a run.
    pub fn verify_parts(&mut self) -> (&mut KvEngine, &mut Ssd) {
        (&mut self.engine, &mut self.ssd)
    }

    /// Installs a trace sink across every layer of the stack: engine,
    /// journal manager, SSD command queue, ISCE, FTL, and flash array
    /// all emit into the same ring. Pass [`Tracer::disabled`] (the
    /// default) for zero-overhead operation.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer.clone());
        self.ssd.set_tracer(tracer);
    }

    /// Loads all records, runs the configured number of queries, and
    /// reports.
    ///
    /// # Errors
    ///
    /// Propagates engine/device failures.
    pub fn run(&mut self) -> Result<RunReport, EngineError> {
        // ---- Load phase (not measured) -------------------------------
        let records: Vec<(u64, u32)> = (0..self.config.workload.record_count)
            .map(|k| (k, self.generators[0].load_size(k)))
            .collect();
        let load_done = self.engine.load(&mut self.ssd, &records, SimTime::ZERO)?;

        // Snapshots for run-phase attribution.
        let flash0 = self.ssd.ftl().flash().counters().clone();
        let ftl0 = self.ssd.ftl().counters().clone();
        let ssd0 = self.ssd.counters().clone();
        let engine0 = self.engine.counters().clone();

        // ---- Run phase ------------------------------------------------
        // Closed loop: at most one in-flight event per client plus the
        // checkpoint tick, so the queue never regrows.
        let mut events: EventQueue<Event> =
            EventQueue::with_capacity(self.config.threads as usize + 1);
        let mut host = ResourcePool::new("host-core", self.config.host_cores as usize);
        let start = load_done + SimDuration::from_micros(10);
        // Fixed per-thread quotas: each thread executes the same operation
        // stream regardless of how strategies interleave in time, so runs
        // with the same seed reach identical logical state under every
        // strategy (YCSB's thread model).
        let base_quota = self.config.total_queries / self.config.threads as u64;
        let extra = (self.config.total_queries % self.config.threads as u64) as u32;
        let mut quota: Vec<u64> = (0..self.config.threads)
            .map(|i| base_quota + u64::from(i < extra))
            .collect();
        for i in 0..self.config.threads {
            if quota[i as usize] > 0 {
                events.schedule(start, Event::Client(i));
            }
        }
        // Time of the pending periodic tick: admission batches must not
        // execute operations past it, or the tick would fire later than
        // it would under one-op-per-event admission.
        let mut next_tick = start + self.config.checkpoint_interval;
        events.schedule(next_tick, Event::CheckpointTick);

        let mut completed = 0u64;
        let mut last_finish = start;
        let mut lat_all = LatencyRecorder::new();
        let mut lat_read = LatencyRecorder::new();
        let mut lat_write = LatencyRecorder::new();
        let mut lat_read_cp = LatencyRecorder::new();
        let mut lat_write_cp = LatencyRecorder::new();
        let mut cp_active_until = SimTime::ZERO;
        let mut cp = CpAccum::new();
        // Worst-latency-over-time buckets (20 ms wide).
        let bucket_width = SimDuration::from_millis(20);
        let mut timeline: Vec<TimelinePoint> = Vec::new();

        while completed < self.config.total_queries {
            let Some((now, event)) = events.pop() else {
                break;
            };
            match event {
                Event::CheckpointTick => {
                    if now >= cp_active_until && !self.engine.journal().jmt().is_empty() {
                        let out = self.engine.checkpoint(&mut self.ssd, now)?;
                        cp_active_until = out.finish;
                        cp.absorb(&out, now);
                        let (_, gc_done) = self
                            .ssd
                            .background_gc(out.finish, self.config.background_gc_rounds)
                            .map_err(EngineError::Ssd)?;
                        last_finish = last_finish.max(gc_done);
                        // GC has priority for the idle window; the scrubber
                        // patrols whatever slack remains after it.
                        let (_, scrub_done) = self
                            .ssd
                            .background_scrub(gc_done, self.config.scrub_pages_per_idle)
                            .map_err(EngineError::Ssd)?;
                        last_finish = last_finish.max(scrub_done);
                    }
                    next_tick = now + self.config.checkpoint_interval;
                    events.schedule(next_tick, Event::CheckpointTick);
                }
                Event::Client(thread) => {
                    if quota[thread as usize] == 0 {
                        continue;
                    }
                    if self.config.lock_queries_during_checkpoint && now < cp_active_until {
                        events.schedule(cp_active_until, Event::Client(thread));
                        continue;
                    }
                    // Admit up to `admission_batch` operations from this
                    // client under a single queue event. The whole burst is
                    // *submitted* at `now` — the client model changes from
                    // queue-depth-1 to queue-depth-k — and the next event
                    // fires when the slowest op of the burst completes.
                    // Every op therefore starts strictly before the pending
                    // periodic tick (the tick would have popped first), and
                    // a size-triggered checkpoint closes the batch below,
                    // so no batch straddles a checkpoint boundary. All
                    // resource reservations happen at `now`, in pop order,
                    // keeping device contention causally ordered exactly
                    // like one-op-per-event admission.
                    debug_assert!(now < next_tick || self.config.admission_batch == 1);
                    let mut batch_end = now;
                    for _ in 0..self.config.admission_batch {
                        let during_cp = now < cp_active_until;
                        let op = self.generators[thread as usize].next_op();
                        let cpu = host.schedule(now, self.config.host_cpu_per_op).1;
                        let finish = self.execute_op(op, cpu.finish, &mut cp)?;
                        let latency = finish.duration_since(now);
                        lat_all.record(latency);
                        match op {
                            Operation::Read { .. } => {
                                lat_read.record(latency);
                                if during_cp {
                                    lat_read_cp.record(latency);
                                }
                            }
                            _ => {
                                lat_write.record(latency);
                                if during_cp {
                                    lat_write_cp.record(latency);
                                }
                            }
                        }
                        completed += 1;
                        quota[thread as usize] -= 1;
                        last_finish = last_finish.max(finish);

                        let bucket = (finish.duration_since(start).as_nanos()
                            / bucket_width.as_nanos().max(1))
                            as usize;
                        if timeline.len() <= bucket {
                            timeline.resize(
                                bucket + 1,
                                TimelinePoint {
                                    at: SimDuration::ZERO,
                                    worst: SimDuration::ZERO,
                                    count: 0,
                                },
                            );
                        }
                        let point = &mut timeline[bucket];
                        point.worst = point.worst.max(latency);
                        point.count += 1;
                        batch_end = batch_end.max(finish);

                        // Size-based checkpoint trigger. A fired trigger
                        // closes the batch so no operation in this batch
                        // straddles the checkpoint (and, in lock mode, so
                        // no further op is admitted inside the window).
                        if op.is_write()
                            && finish >= cp_active_until
                            && self.engine.journal().zone_used_sectors()
                                >= self.config.journal_trigger_sectors
                        {
                            let out = self.engine.checkpoint(&mut self.ssd, finish)?;
                            cp_active_until = out.finish;
                            cp.absorb(&out, finish);
                            let (_, gc_done) = self
                                .ssd
                                .background_gc(out.finish, self.config.background_gc_rounds)
                                .map_err(EngineError::Ssd)?;
                            last_finish = last_finish.max(gc_done);
                            let (_, scrub_done) = self
                                .ssd
                                .background_scrub(gc_done, self.config.scrub_pages_per_idle)
                                .map_err(EngineError::Ssd)?;
                            last_finish = last_finish.max(scrub_done);
                            break;
                        }
                        if quota[thread as usize] == 0 {
                            break;
                        }
                    }
                    if quota[thread as usize] > 0 {
                        events.schedule(batch_end, Event::Client(thread));
                    }
                }
            }
        }

        // ---- Report ---------------------------------------------------
        let elapsed = last_finish.duration_since(start);
        // Extend the timeline through the bucket containing the last
        // completion (including post-checkpoint GC): a stall at the end
        // of the run must appear as trailing zero-count buckets, not as
        // a series that simply stops early.
        if completed > 0 {
            let final_bucket = (elapsed.as_nanos() / bucket_width.as_nanos().max(1)) as usize;
            if timeline.len() <= final_bucket {
                timeline.resize(
                    final_bucket + 1,
                    TimelinePoint {
                        at: SimDuration::ZERO,
                        worst: SimDuration::ZERO,
                        count: 0,
                    },
                );
            }
        }
        let flash1 = self.ssd.ftl().flash().counters().clone();
        let ftl1 = self.ssd.ftl().counters().clone();
        let ssd1 = self.ssd.counters().clone();
        let engine1 = self.engine.counters().clone();
        let fdelta = flash1.delta_since(&flash0);
        let tdelta = ftl1.delta_since(&ftl0);
        let sdelta = ssd1.delta_since(&ssd0);
        let edelta = engine1.delta_since(&engine0);

        let page_bytes = self.config.geometry.page_bytes as u64;
        let write_query_bytes = edelta.get("engine.update_bytes");
        let host_io_bytes = sdelta.get("ssd.host_read_bytes") + sdelta.get("ssd.host_write_bytes");
        let flash = FlashStats {
            reads: fdelta.get("flash.read"),
            programs: fdelta.get("flash.program"),
            erases: fdelta.get("flash.erase"),
            gc_invocations: tdelta.get("ftl.gc_invocations"),
            gc_units_moved: tdelta.get("ftl.gc_units_moved"),
            invalid_units: tdelta.get("ftl.invalid_units"),
            transient_faults: fdelta.get("flash.transient_faults"),
            media_retries: tdelta.get("ftl.media_retries"),
            grown_bad_blocks: fdelta.get("flash.grown_bad_blocks"),
            blocks_retired: tdelta.get("ftl.blocks_retired"),
            retry_exhausted_read: tdelta.get("ftl.retry_exhausted_read"),
            retry_exhausted_program: tdelta.get("ftl.retry_exhausted_program"),
            retry_exhausted_erase: tdelta.get("ftl.retry_exhausted_erase"),
            integrity_detected: tdelta.get("ftl.integrity_detected"),
            integrity_corrected: tdelta.get("ftl.integrity_corrected"),
            integrity_quarantined: tdelta.get("ftl.integrity_quarantined"),
            integrity_unrecoverable: tdelta.get("ftl.integrity_unrecoverable"),
            scrub_pages: tdelta.get("ftl.scrub_pages"),
        };
        let raw = edelta.get("engine.journal_raw_bytes");
        let stored = edelta.get("engine.journal_stored_bytes");
        // Include the still-open zone so short runs without a checkpoint
        // still report overhead.
        let (raw, stored) = (
            raw + self.engine.journal().jmt().raw_bytes(),
            stored + self.engine.journal().jmt().stored_bytes(),
        );
        let throughput = if elapsed.as_secs_f64() > 0.0 {
            completed as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };

        Ok(RunReport {
            strategy: self.config.strategy,
            threads: self.config.threads,
            ops: completed,
            elapsed,
            throughput,
            latency: LatencyStats::from_recorder(&lat_all),
            latency_read: LatencyStats::from_recorder(&lat_read),
            latency_write: LatencyStats::from_recorder(&lat_write),
            latency_read_during_cp: LatencyStats::from_recorder(&lat_read_cp),
            latency_write_during_cp: LatencyStats::from_recorder(&lat_write_cp),
            checkpoints: cp.count,
            checkpoint_entries: cp.entries,
            checkpoint_mean: cp.durations.mean(),
            checkpoint_max: cp.durations.max(),
            remapped_entries: cp.remapped,
            copied_entries: cp.copied,
            checkpoint_flash_programs: cp.programs,
            checkpoint_flash_reads: cp.reads,
            redundant_write_units: cp.redundant_units,
            redundant_write_bytes: cp.redundant_bytes,
            checkpoint_phases: cp.phases,
            flash,
            write_query_bytes,
            host_io_bytes,
            io_amplification: ratio_or_nan(host_io_bytes as f64, write_query_bytes as f64),
            flash_amplification: ratio_or_nan(
                (flash.total_ops() * page_bytes) as f64,
                write_query_bytes as f64,
            ),
            waf: ratio_or_nan(
                (flash.programs * page_bytes) as f64,
                sdelta.get("ssd.host_write_bytes") as f64,
            ),
            journal_space_overhead: if raw == 0 {
                1.0
            } else {
                stored as f64 / raw as f64
            },
            superseded_logs: edelta.get("engine.superseded_logs")
                + self.engine.journal().jmt().superseded(),
            lifetime_score: if flash.erases == 0 {
                f64::INFINITY
            } else {
                completed as f64 / flash.erases as f64
            },
            timeline: timeline
                .into_iter()
                .enumerate()
                .map(|(i, mut p)| {
                    p.at = bucket_width * i as u64;
                    p
                })
                .collect(),
        })
    }

    fn execute_op(
        &mut self,
        op: Operation,
        at: SimTime,
        cp: &mut CpAccum,
    ) -> Result<SimTime, EngineError> {
        match op {
            Operation::Read { key } => Ok(self.engine.get(&mut self.ssd, key, at)?.finish),
            Operation::Update { key, bytes } => self.update_with_retry(key, bytes, at, cp),
            Operation::ReadModifyWrite { key, bytes } => {
                let read = self.engine.get(&mut self.ssd, key, at)?;
                self.update_with_retry(key, bytes, read.finish, cp)
            }
        }
    }

    /// Update, forcing a checkpoint when the journal zone fills. The
    /// forced checkpoint's outcome is absorbed into `cp` like any other
    /// trigger path — previously its work vanished from the report.
    fn update_with_retry(
        &mut self,
        key: u64,
        bytes: u32,
        at: SimTime,
        cp: &mut CpAccum,
    ) -> Result<SimTime, EngineError> {
        match self.engine.update(&mut self.ssd, key, bytes, at) {
            Ok(t) => Ok(t),
            Err(EngineError::JournalFull) => {
                let out = self.engine.checkpoint(&mut self.ssd, at)?;
                cp.absorb(&out, at);
                self.engine.update(&mut self.ssd, key, bytes, out.finish)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use checkin_flash::FlashGeometry;

    fn quick_config(strategy: Strategy) -> SystemConfig {
        let mut c = SystemConfig::for_strategy(strategy);
        c.total_queries = 3_000;
        c.threads = 8;
        c.workload.record_count = 400;
        c.journal_trigger_sectors = 1_024;
        c.geometry = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 64,
            page_bytes: 4096,
        };
        c.gc_threshold_blocks = 4;
        c.gc_soft_threshold_blocks = 16;
        c
    }

    #[test]
    fn runs_to_completion_for_every_strategy() {
        for strategy in Strategy::all() {
            let mut system = KvSystem::new(quick_config(strategy)).unwrap();
            let report = system.run().unwrap();
            assert_eq!(report.ops, 3_000, "{strategy}");
            assert!(report.throughput > 0.0);
            assert!(report.checkpoints > 0, "{strategy} should checkpoint");
            system.ssd().ftl().check_invariants().unwrap();
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let r1 = KvSystem::new(quick_config(Strategy::CheckIn))
            .unwrap()
            .run()
            .unwrap();
        let r2 = KvSystem::new(quick_config(Strategy::CheckIn))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.latency.p999, r2.latency.p999);
        assert_eq!(r1.checkpoints, r2.checkpoints);
        assert_eq!(r1.flash.programs, r2.flash.programs);
    }

    #[test]
    fn checkin_reduces_checkpoint_programs_vs_baseline() {
        let base = KvSystem::new(quick_config(Strategy::Baseline))
            .unwrap()
            .run()
            .unwrap();
        let ci = KvSystem::new(quick_config(Strategy::CheckIn))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            ci.redundant_write_units < base.redundant_write_units,
            "Check-In {} vs baseline {}",
            ci.redundant_write_units,
            base.redundant_write_units
        );
        assert!(ci.remapped_entries > 0);
        assert_eq!(base.remapped_entries, 0);
    }

    #[test]
    fn lock_mode_also_completes() {
        let mut c = quick_config(Strategy::IscB);
        c.lock_queries_during_checkpoint = true;
        let report = KvSystem::new(c).unwrap().run().unwrap();
        assert_eq!(report.ops, 3_000);
        assert!(report.checkpoint_mean > SimDuration::ZERO);
    }

    #[test]
    fn batched_admission_conserves_ops_and_is_deterministic() {
        let mut c = quick_config(Strategy::CheckIn);
        c.admission_batch = 8;
        let r1 = KvSystem::new(c.clone()).unwrap().run().unwrap();
        let r2 = KvSystem::new(c).unwrap().run().unwrap();
        assert_eq!(r1.ops, 3_000);
        assert!(r1.checkpoints > 0);
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.latency.p999, r2.latency.p999);
        assert_eq!(r1.checkpoints, r2.checkpoints);
        assert_eq!(r1.flash.programs, r2.flash.programs);
    }

    /// Quotas are fixed per thread and generators are seeded per thread,
    /// so every admission batch size executes the same per-thread op
    /// streams — only their interleaving in time changes. The final
    /// logical state (per-key version = number of updates applied) must
    /// therefore be identical, and no operation may be dropped or run
    /// twice.
    #[test]
    fn final_state_independent_of_admission_batch() {
        let mut reports = Vec::new();
        let mut versions: Vec<Vec<u64>> = Vec::new();
        for batch in [1u32, 7, 64] {
            let mut c = quick_config(Strategy::CheckIn);
            c.admission_batch = batch;
            let mut system = KvSystem::new(c).unwrap();
            let report = system.run().unwrap();
            system.ssd().ftl().check_invariants().unwrap();
            let keys = system.engine().loaded_keys() as u64;
            let mut t = SimTime::MAX - SimDuration::from_secs(1_000_000);
            versions.push(
                (0..keys)
                    .map(|key| {
                        let r = system.engine.get(&mut system.ssd, key, t).unwrap();
                        t = r.finish;
                        r.version
                    })
                    .collect(),
            );
            reports.push(report);
        }
        for r in &reports {
            assert_eq!(r.ops, 3_000);
        }
        assert_eq!(versions[0], versions[1]);
        assert_eq!(versions[0], versions[2]);
    }

    #[test]
    fn lock_mode_completes_with_batching() {
        let mut c = quick_config(Strategy::IscB);
        c.lock_queries_during_checkpoint = true;
        c.admission_batch = 16;
        let report = KvSystem::new(c).unwrap().run().unwrap();
        assert_eq!(report.ops, 3_000);
        assert!(report.checkpoints > 0);
    }

    #[test]
    fn zero_admission_batch_rejected() {
        let mut c = quick_config(Strategy::CheckIn);
        c.admission_batch = 0;
        assert!(KvSystem::new(c).is_err());
    }

    #[test]
    fn oversized_layout_rejected() {
        let mut c = quick_config(Strategy::Baseline);
        c.workload.record_count = 10_000_000;
        assert!(KvSystem::new(c).is_err());
    }

    #[test]
    fn engine_state_consistent_after_run() {
        let mut system = KvSystem::new(quick_config(Strategy::CheckIn)).unwrap();
        system.run().unwrap();
        // Every key readable at its engine-committed version (the engine
        // debug-asserts version agreement inside get()).
        let mut t = SimTime::MAX - SimDuration::from_secs(1_000_000);
        let keys = system.engine().loaded_keys() as u64;
        for key in 0..keys {
            let r = system.engine.get(&mut system.ssd, key, t).unwrap();
            t = r.finish;
            assert!(r.version >= 1);
        }
    }
}
