//! Parallel execution of independent simulation runs.
//!
//! A [`KvSystem`] is self-contained — its randomness comes from the
//! seeded [`checkin_sim::SimRng`] inside its generators and nothing it
//! touches is shared — so a sweep over N configurations is trivially
//! parallel: each run produces the same [`RunReport`] no matter which OS
//! thread executes it or in what order. This module fans a batch of
//! configurations across scoped worker threads and returns the reports in
//! input order, so `sweep`/`compare` output is byte-identical to a serial
//! run (a property the test suite asserts).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::config::SystemConfig;
use crate::metrics::RunReport;
use crate::system::KvSystem;

/// Worker count that saturates this host for simulation sweeps: one per
/// available core (the runs are CPU-bound), at least 1.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builds and runs every configuration, fanning the runs across at most
/// `jobs` OS threads, and returns the reports **in input order**.
///
/// Failures (invalid configuration or engine error) are reported as
/// strings in the corresponding slot; one bad configuration does not
/// poison the rest of the batch. `jobs <= 1` runs serially on the calling
/// thread — the results are identical either way.
pub fn run_configs(configs: &[SystemConfig], jobs: usize) -> Vec<Result<RunReport, String>> {
    let jobs = jobs.max(1).min(configs.len());
    if jobs <= 1 {
        return configs.iter().map(run_one).collect();
    }

    // Work-stealing over an atomic cursor: long runs (high thread counts,
    // GC pressure) do not convoy short ones behind a static partition.
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<RunReport, String>>> = Vec::new();
    slots.resize_with(configs.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= configs.len() {
                            return produced;
                        }
                        produced.push((i, run_one(&configs[i])));
                    }
                })
            })
            .collect();
        for worker in workers {
            let produced = worker.join().expect("sweep worker panicked");
            for (i, report) in produced {
                slots[i] = Some(report);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every configuration was claimed by a worker"))
        .collect()
}

fn run_one(config: &SystemConfig) -> Result<RunReport, String> {
    let mut system = KvSystem::new(config.clone())?;
    system.run().map_err(|e| format!("run failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Strategy;
    use checkin_flash::FlashGeometry;

    fn small_config(strategy: Strategy, queries: u64) -> SystemConfig {
        let mut c = SystemConfig::for_strategy(strategy);
        c.total_queries = queries;
        c.threads = 8;
        c.workload.record_count = 400;
        c.journal_trigger_sectors = 1_024;
        c.geometry = FlashGeometry {
            channels: 2,
            dies_per_channel: 2,
            planes_per_die: 1,
            blocks_per_plane: 64,
            pages_per_block: 64,
            page_bytes: 4096,
        };
        c.gc_threshold_blocks = 4;
        c.gc_soft_threshold_blocks = 16;
        c
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        // A strategy sweep plus a repeated config: identical inputs must
        // produce identical reports, and ordering must be preserved.
        let mut configs: Vec<SystemConfig> = Strategy::all()
            .into_iter()
            .map(|s| small_config(s, 1_500))
            .collect();
        configs.push(small_config(Strategy::CheckIn, 1_500));

        let serial = run_configs(&configs, 1);
        let parallel = run_configs(&configs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(parallel.iter()).enumerate() {
            let s = s.as_ref().expect("serial run succeeds");
            let p = p.as_ref().expect("parallel run succeeds");
            assert_eq!(s, p, "config {i} diverged between serial and parallel");
        }
        // The repeated config reproduces the original run exactly.
        assert_eq!(parallel[4].as_ref().unwrap(), parallel[5].as_ref().unwrap());
    }

    #[test]
    fn bad_config_reports_error_without_poisoning_batch() {
        let good = small_config(Strategy::Baseline, 800);
        let mut bad = small_config(Strategy::Baseline, 800);
        bad.workload.record_count = 10_000_000; // layout cannot fit
        let results = run_configs(&[good, bad], 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
    }

    #[test]
    fn jobs_clamped_to_workload() {
        let configs = vec![small_config(Strategy::IscB, 500)];
        let results = run_configs(&configs, 64);
        assert_eq!(results.len(), 1);
        assert!(results[0].is_ok());
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
